// JournalFs: a block-based journaling filesystem, the reproduction's
// Reiserfs stand-in (paper §3.4 compiles Reiserfs with KGCC).
//
// The entire on-disk state -- inode table, block bitmap, data blocks, and
// the journal -- lives in arrays allocated and *accessed* through a
// pointer Policy. With RawPolicy the accesses are plain pointers (the
// "vanilla GCC" build); with the BCC policy every dereference and every
// pointer arithmetic step consults the bounds-checking runtime (the
// "KGCC" build), reproducing the instrumentation cost structure: cheap for
// CPU-bound workloads, brutal for metadata-heavy ones like PostMark.
//
// Layout (all sizes in 4 KiB blocks):
//   inode table  : kMaxInodes DiskInode records
//   block bitmap : one byte per data block
//   data blocks  : file contents + directory blocks (64-byte dirents)
//   journal      : circular log; every metadata update appends a record
//                  containing a copy of the touched block
//
// Files use 12 direct block pointers plus one single-indirect block,
// giving a max file size of 12*4K + 1024*4K = 4.2 MB, plenty for the
// PostMark and compile workloads.
#pragma once

#include <algorithm>
#include <cstring>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "base/errno.hpp"
#include "fault/kfail.hpp"
#include "fs/filesystem.hpp"
#include "blockdev/buffer_cache.hpp"
#include "fs/memfs.hpp"  // FsCosts
#include "store/store.hpp"

namespace usk::fs {

/// Policy used by un-instrumented builds: plain pointers, plain new[].
struct RawPtrPolicy {
  template <typename T>
  using ptr = T*;

  template <typename T>
  static T* alloc_array(std::size_t n) {
    return new T[n]();
  }
  template <typename T>
  static void free_array(T* p, std::size_t /*n*/) {
    delete[] p;
  }
  /// Reinterpret a byte region as `n` elements of T (used for the
  /// single-indirect block-pointer table).
  template <typename T>
  static T* cast_bytes(std::uint8_t* p, std::size_t /*n*/) {
    return reinterpret_cast<T*>(p);
  }
  static constexpr const char* kName = "raw";
};

struct JournalFsStats {
  std::uint64_t journal_records = 0;
  std::uint64_t journal_commits = 0;
  std::uint64_t blocks_allocated = 0;
  std::uint64_t blocks_freed = 0;
  std::uint64_t bitmap_scan_steps = 0;
  std::uint64_t commit_markers = 0;  ///< txn commit records (crash-sim mode)
  std::uint64_t torn_records = 0;    ///< kfail disk.torn injections absorbed
  std::uint64_t store_commits = 0;   ///< group-commit units paid (store mode)
  std::uint64_t store_home_writes = 0; ///< post-commit home blocks dirtied
};

template <class Policy = RawPtrPolicy>
class JournalFs final : public FileSystem {
 public:
  static constexpr std::size_t kBlockSize = 4096;
  static constexpr std::size_t kDirect = 12;
  static constexpr std::size_t kPtrsPerBlock = kBlockSize / sizeof(std::uint32_t);
  static constexpr std::size_t kDirentSize = 64;
  static constexpr std::size_t kDirentsPerBlock = kBlockSize / kDirentSize;
  static constexpr std::size_t kMaxNameLen = 57;

  template <typename T>
  using Ptr = typename Policy::template ptr<T>;

  struct DiskInode {
    std::uint8_t used;
    std::uint8_t type;  // FileType
    std::uint16_t nlink;
    std::uint32_t mode;
    std::uint64_t size;
    std::uint32_t direct[kDirect];
    std::uint32_t indirect;
    std::uint64_t atime, mtime, ctime;
  };

  struct Dirent {
    std::uint32_t ino;
    std::uint8_t used;
    std::uint8_t namelen;
    char name[kMaxNameLen + 1];
  };
  static_assert(sizeof(Dirent) <= kDirentSize);

  /// What a journal record redoes at recovery.
  enum class JRecKind : std::uint8_t {
    kBlock = 0,   ///< post-image of data block `target`
    kInode = 1,   ///< post-image of inode `target`
    kBitmap = 2,  ///< bitmap delta: block `target` -> payload[0]
    kCommit = 3,  ///< transaction commit marker
  };

  struct JournalRecord {
    std::uint64_t seq;
    std::uint64_t checksum;  ///< FNV-1a over header + payload[0..len)
    std::uint32_t target;
    std::uint32_t len;  ///< valid payload bytes
    std::uint8_t kind;
    std::uint8_t payload[kBlockSize];
  };

  JournalFs(std::size_t max_inodes, std::size_t data_blocks,
            std::size_t journal_slots, std::size_t commit_interval = 64)
      : max_inodes_(max_inodes),
        data_blocks_(data_blocks),
        journal_slots_(journal_slots),
        commit_interval_(commit_interval) {
    inodes_ = Policy::template alloc_array<DiskInode>(max_inodes_);
    bitmap_ = Policy::template alloc_array<std::uint8_t>(data_blocks_);
    data_ = Policy::template alloc_array<std::uint8_t>(data_blocks_ *
                                                       kBlockSize);
    journal_ = Policy::template alloc_array<JournalRecord>(journal_slots_);

    // Format: inode 0 is the root directory.
    DiskInode root{};
    root.used = 1;
    root.type = static_cast<std::uint8_t>(FileType::kDirectory);
    root.nlink = 2;
    root.mode = 0755;
    inodes_[0] = root;
  }

  ~JournalFs() override {
    Policy::template free_array<DiskInode>(inodes_, max_inodes_);
    Policy::template free_array<std::uint8_t>(bitmap_, data_blocks_);
    Policy::template free_array<std::uint8_t>(data_, data_blocks_ * kBlockSize);
    Policy::template free_array<JournalRecord>(journal_, journal_slots_);
  }

  JournalFs(const JournalFs&) = delete;
  JournalFs& operator=(const JournalFs&) = delete;

  [[nodiscard]] InodeNum root() const override { return 1; }
  [[nodiscard]] const char* fstype() const override { return "journalfs"; }

  /// Charge hook: work units per operation (same contract as MemFs).
  void set_cost_hook(std::function<void(std::uint64_t)> hook) {
    charge_ = std::move(hook);
  }
  void set_costs(const FsCosts& c) { costs_ = c; }
  /// Extra units per journal record (the commit path's write cost).
  void set_journal_cost(std::uint64_t units) { journal_cost_ = units; }

  /// Attach a buffer cache over a simulated disk. The filesystem's block
  /// numbers map directly to LBAs in a data region; the journal occupies
  /// its own contiguous strip, so journal appends are SEQUENTIAL disk
  /// writes while checkpointing data blocks seeks -- the journaling
  /// trade-off, physically modelled.
  void set_io_model(blockdev::BufferCache* cache) { io_ = cache; }

  Result<InodeNum> lookup(InodeNum dir, std::string_view name) override {
    charge(costs_.lookup);
    DiskInode* d = dir_inode(dir);
    if (d == nullptr) return Errno::kENOTDIR;
    Dirent de;
    if (!find_dirent(*d, name, &de, nullptr, nullptr)) return Errno::kENOENT;
    return static_cast<InodeNum>(de.ino);
  }

  Result<InodeNum> create(InodeNum dir, std::string_view name, FileType type,
                          std::uint32_t mode) override {
    charge(costs_.create);
    TxnScope txn(*this);
    if (name.empty() || name.size() > kMaxNameLen) return Errno::kENAMETOOLONG;
    DiskInode* d = dir_inode(dir);
    if (d == nullptr) return Errno::kENOTDIR;
    if (find_dirent(*d, name, nullptr, nullptr, nullptr)) {
      return Errno::kEEXIST;
    }
    // Allocate an inode slot.
    std::size_t idx = 0;
    for (; idx < max_inodes_; ++idx) {
      if (!inodes_[idx].used) break;
    }
    if (idx == max_inodes_) return Errno::kENOSPC;

    DiskInode node{};
    node.used = 1;
    node.type = static_cast<std::uint8_t>(type);
    node.nlink = type == FileType::kDirectory ? 2 : 1;
    node.mode = mode;
    node.atime = node.mtime = node.ctime = ++clock_;
    inodes_[idx] = node;

    Errno e = add_dirent(*d, name, static_cast<std::uint32_t>(idx + 1));
    if (e != Errno::kOk) {
      inodes_[idx].used = 0;
      return e;
    }
    if (type == FileType::kDirectory) ++d->nlink;
    d->mtime = ++clock_;
    journal_inode(dir);
    journal_inode(idx + 1);
    return static_cast<InodeNum>(idx + 1);
  }

  Result<void> unlink(InodeNum dir, std::string_view name) override {
    charge(costs_.remove);
    TxnScope txn(*this);
    return remove_entry(dir, name, /*want_dir=*/false);
  }

  Result<void> link(InodeNum dir, std::string_view name, InodeNum target) override {
    charge(costs_.create);
    TxnScope txn(*this);
    if (name.empty() || name.size() > kMaxNameLen) return Errno::kENAMETOOLONG;
    DiskInode* d = dir_inode(dir);
    if (d == nullptr) return Errno::kENOTDIR;
    DiskInode* t = inode(target);
    if (t == nullptr) return Errno::kENOENT;
    if (file_type(*t) == FileType::kDirectory) return Errno::kEPERM;
    if (find_dirent(*d, name, nullptr, nullptr, nullptr)) {
      return Errno::kEEXIST;
    }
    Errno e = add_dirent(*d, name, static_cast<std::uint32_t>(target));
    if (e != Errno::kOk) return e;
    ++t->nlink;
    t->ctime = ++clock_;
    d->mtime = ++clock_;
    journal_inode(dir);
    journal_inode(target);
    return Errno::kOk;
  }

  Result<void> chmod(InodeNum ino, std::uint32_t mode) override {
    charge(costs_.getattr);
    TxnScope txn(*this);
    DiskInode* n = inode(ino);
    if (n == nullptr) return Errno::kENOENT;
    n->mode = mode;
    n->ctime = ++clock_;
    journal_inode(ino);
    return Errno::kOk;
  }

  Result<void> rmdir(InodeNum dir, std::string_view name) override {
    charge(costs_.remove);
    TxnScope txn(*this);
    return remove_entry(dir, name, /*want_dir=*/true);
  }

  Result<void> rename(InodeNum src_dir, std::string_view src_name, InodeNum dst_dir,
               std::string_view dst_name) override {
    charge(costs_.rename);
    TxnScope txn(*this);
    if (dst_name.size() > kMaxNameLen) return Errno::kENAMETOOLONG;
    DiskInode* sd = dir_inode(src_dir);
    DiskInode* dd = dir_inode(dst_dir);
    if (sd == nullptr || dd == nullptr) return Errno::kENOTDIR;
    Dirent de;
    std::uint32_t blk = 0;
    std::size_t slot = 0;
    if (!find_dirent(*sd, src_name, &de, &blk, &slot)) return Errno::kENOENT;

    // Drop a pre-existing destination (regular files / empty dirs only).
    Dirent old;
    if (find_dirent(*dd, dst_name, &old, nullptr, nullptr)) {
      // POSIX: renaming onto the same inode is a successful no-op.
      if (old.ino == de.ino) return Errno::kOk;
      Errno e = remove_entry(dst_dir, dst_name,
                             inode_type(old.ino) == FileType::kDirectory);
      if (e != Errno::kOk) return e;
    }
    // Remove the source slot, then add under the new name.
    erase_dirent_slot(blk, slot);
    sd->mtime = ++clock_;
    Errno e = add_dirent(*dd, dst_name, de.ino);
    if (e != Errno::kOk) return e;
    if (inode_type(de.ino) == FileType::kDirectory && src_dir != dst_dir) {
      --sd->nlink;
      ++dd->nlink;
    }
    dd->mtime = ++clock_;
    journal_inode(src_dir);
    journal_inode(dst_dir);
    return Errno::kOk;
  }

  Result<std::size_t> read(InodeNum ino, std::uint64_t offset,
                           std::span<std::byte> out) override {
    charge(costs_.data_per_kib * (out.size() + 1023) / 1024 + 8);
    DiskInode* n = inode(ino);
    if (n == nullptr) return Errno::kENOENT;
    if (file_type(*n) == FileType::kDirectory) return Errno::kEISDIR;
    if (offset >= n->size) return std::size_t{0};
    std::size_t len =
        std::min<std::size_t>(out.size(), n->size - offset);
    std::size_t done = 0;
    while (done < len) {
      std::uint64_t pos = offset + done;
      std::uint32_t blk = block_of(*n, pos / kBlockSize, /*alloc=*/false);
      std::size_t boff = pos % kBlockSize;
      std::size_t chunk = std::min(len - done, kBlockSize - boff);
      if (blk == 0) {
        std::memset(out.data() + done, 0, chunk);  // hole
      } else {
        if (Result<void> io = io_touch_data(blk, /*write=*/false); !io.ok()) {
          // Partial read before the media error still counts (POSIX).
          return done > 0 ? Result<std::size_t>(done)
                          : Result<std::size_t>(io.error());
        }
        Ptr<std::uint8_t> src = data_ + (blk - 1) * kBlockSize + boff;
        auto* dst = reinterpret_cast<std::uint8_t*>(out.data() + done);
        for (std::size_t i = 0; i < chunk; ++i) dst[i] = src[i];
      }
      done += chunk;
    }
    n->atime = ++clock_;
    return len;
  }

  Result<std::size_t> write(InodeNum ino, std::uint64_t offset,
                            std::span<const std::byte> in) override {
    charge(costs_.data_per_kib * (in.size() + 1023) / 1024 + 10);
    TxnScope txn(*this);
    DiskInode* n = inode(ino);
    if (n == nullptr) return Errno::kENOENT;
    if (file_type(*n) == FileType::kDirectory) return Errno::kEISDIR;
    std::size_t max_file = (kDirect + kPtrsPerBlock) * kBlockSize;
    if (offset + in.size() > max_file) return Errno::kEFBIG;
    std::size_t done = 0;
    while (done < in.size()) {
      std::uint64_t pos = offset + done;
      std::uint32_t blk = block_of(*n, pos / kBlockSize, /*alloc=*/true);
      if (blk == 0) return done > 0 ? Result<std::size_t>(done)
                                    : Result<std::size_t>(Errno::kENOSPC);
      std::size_t boff = pos % kBlockSize;
      std::size_t chunk = std::min(in.size() - done, kBlockSize - boff);
      if (Result<void> io = io_touch_data(blk, /*write=*/true); !io.ok()) {
        return done > 0 ? Result<std::size_t>(done)
                        : Result<std::size_t>(io.error());
      }
      Ptr<std::uint8_t> dst = data_ + (blk - 1) * kBlockSize + boff;
      const auto* src = reinterpret_cast<const std::uint8_t*>(in.data() + done);
      for (std::size_t i = 0; i < chunk; ++i) dst[i] = src[i];
      journal_block(blk);
      done += chunk;
    }
    n->size = std::max<std::uint64_t>(n->size, offset + in.size());
    n->mtime = ++clock_;
    journal_inode(ino);
    return in.size();
  }

  Result<void> truncate(InodeNum ino, std::uint64_t size) override {
    charge(costs_.truncate);
    TxnScope txn(*this);
    DiskInode* n = inode(ino);
    if (n == nullptr) return Errno::kENOENT;
    if (file_type(*n) == FileType::kDirectory) return Errno::kEISDIR;
    if (size < n->size) {
      // Free whole blocks past the new end.
      std::size_t keep = (size + kBlockSize - 1) / kBlockSize;
      free_blocks_from(*n, keep);
    }
    n->size = size;
    n->mtime = ++clock_;
    journal_inode(ino);
    return Errno::kOk;
  }

  Result<void> getattr(InodeNum ino, StatBuf* st) override {
    charge(costs_.getattr);
    DiskInode* n = inode(ino);
    if (n == nullptr) return Errno::kENOENT;
    st->ino = ino;
    st->type = file_type(*n);
    st->mode = n->mode;
    st->nlink = n->nlink;
    st->size = n->size;
    st->blocks = (n->size + 511) / 512;
    st->atime = n->atime;
    st->mtime = n->mtime;
    st->ctime = n->ctime;
    return Errno::kOk;
  }

  Result<std::vector<DirEntry>> readdir(InodeNum dir) override {
    charge(costs_.readdir_base);
    DiskInode* d = dir_inode(dir);
    if (d == nullptr) return Errno::kENOTDIR;
    std::vector<DirEntry> out;
    std::size_t nblocks = (d->size + kBlockSize - 1) / kBlockSize;
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::uint32_t blk = block_of(*d, b, false);
      if (blk == 0) continue;
      for (std::size_t s = 0; s < kDirentsPerBlock; ++s) {
        Dirent de = load_dirent(blk, s);
        if (de.used == 0) continue;
        out.push_back(DirEntry{std::string(de.name, de.namelen),
                               static_cast<InodeNum>(de.ino),
                               inode_type(de.ino)});
      }
    }
    d->atime = ++clock_;
    std::sort(out.begin(), out.end(),
              [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
    return out;
  }

  Result<void> sync() override { return commit_journal(); }

  /// fsync(2)/fdatasync(2): in store mode, commit the running transaction
  /// batch to the group-commit journal (ext3-style -- the journal is
  /// shared, so this makes every pending metadata update durable, not
  /// just `ino`'s). Without a store this degrades to sync(). Both
  /// flavours hit the same commit path: this filesystem journals all
  /// metadata, so there is nothing for datasync to skip.
  Result<void> fsync(InodeNum ino, bool datasync) override {
    (void)ino;
    (void)datasync;
    if (store_ != nullptr) return store_commit();
    return sync();
  }

  // --- persistent store attachment (PR-8) -------------------------------------
  /// Attach the persistent storage tier: `cache` becomes the page cache
  /// over the store's backing image (the store wires itself in as the
  /// cache's data plane), every transaction's redo records flow into the
  /// store's group-commit journal, and post-images are written to their
  /// home locations in the image AFTER the commit unit is durable (redo
  /// journaling: background writeback can never push uncommitted state).
  ///
  /// Data-region layout (cache LBA == store data-region block):
  ///   [0, IT)            inode table (DiskInode array, packed)
  ///   [IT, IT+BM)        block bitmap (one byte per fs block)
  ///   [IT+BM, IT+BM+D)   fs data blocks (fs block b at IT+BM+b-1)
  ///
  /// A fresh image is formatted from the in-memory state (root inode) and
  /// checkpointed; an existing image is restored: checkpointed state
  /// loaded from the data region, then the journal's committed prefix
  /// replayed on top (store.recover), then re-checkpointed.
  Result<void> attach_store(store::Store* s, blockdev::BufferCache* cache) {
    if (s == nullptr || cache == nullptr) return Errno::kEINVAL;
    if (s->data_blocks() < total_home_blocks()) return Errno::kEINVAL;
    store_ = s;
    io_ = cache;
    s->attach_cache(cache);
    if (!crash_sim_) enable_crash_sim();
    // Fresh vs existing image: the root inode's home bytes decide.
    std::vector<std::uint8_t> blk(kBlockSize);
    USK_TRY(io_->read_data(0, blk.data()));
    DiskInode root_home{};
    std::memcpy(&root_home, blk.data(), sizeof(DiskInode));
    if (root_home.used != 0) return restore_from_store();
    return format_store();
  }

  [[nodiscard]] bool store_attached() const { return store_ != nullptr; }
  /// Recovery report of the last attach_store() over an existing image.
  [[nodiscard]] const store::Store::RecoveryReport& last_recovery() const {
    return last_recovery_;
  }

  [[nodiscard]] const JournalFsStats& jstats() const { return jstats_; }

  // --- crash consistency -----------------------------------------------------
  /// Turn on crash simulation. From here on:
  ///   * every mutating operation is one transaction, closed by a
  ///     checksummed commit-marker record in the journal;
  ///   * bitmap deltas and every touched inode are journaled, so a
  ///     transaction's records fully redo it;
  ///   * checkpoints (which reclaim the journal and advance the "stable"
  ///     on-platter image) happen only at transaction boundaries;
  ///   * kfail's disk.torn site can tear any journal record as it is
  ///     written -- the corruption is invisible until recovery.
  void enable_crash_sim() {
    crash_sim_ = true;
    (void)commit_journal();  // checkpoint: current state becomes stable
  }
  [[nodiscard]] bool crash_sim_enabled() const { return crash_sim_; }

  struct CrashReport {
    std::size_t records_scanned = 0;
    std::size_t txns_applied = 0;    ///< complete, checksum-clean txns redone
    std::size_t txns_discarded = 0;  ///< torn or uncommitted tail txns
    bool found_torn = false;         ///< a record failed checksum validation
  };

  /// Simulated power loss + journal recovery. Live memory is discarded:
  /// the filesystem reverts to the stable image of the last checkpoint,
  /// then the journal is replayed in sequence order. A transaction is
  /// redone only if every one of its records is checksum-clean and a
  /// valid commit marker terminates it; the first torn record ends the
  /// usable log (everything after it is discarded), exactly the contract
  /// of a physical redo journal. The recovered state becomes the new
  /// stable image. Requires enable_crash_sim().
  CrashReport simulate_crash() {
    CrashReport rep;
    if (!crash_sim_ || !stable_valid_) return rep;
    // The journal strip survives the crash; copy it out before reverting.
    std::size_t nrec = std::min(journal_head_, journal_slots_);
    std::vector<JournalRecord> log(nrec);
    for (std::size_t i = 0; i < nrec; ++i) log[i] = journal_[i];
    restore_stable();

    std::size_t txn_start = 0;  // index of first record of the open txn
    std::size_t stop = nrec;
    for (std::size_t i = 0; i < nrec; ++i) {
      ++rep.records_scanned;
      if (!record_valid(log[i])) {
        rep.found_torn = true;
        stop = i;
        break;
      }
      if (static_cast<JRecKind>(log[i].kind) == JRecKind::kCommit) {
        for (std::size_t r = txn_start; r < i; ++r) apply_record(log[r]);
        ++rep.txns_applied;
        txn_start = i + 1;
      }
    }
    // Count what the crash cost: commit markers at/after the stop point
    // plus a trailing marker-less fragment.
    bool open_txn = txn_start < stop;
    for (std::size_t i = stop; i < nrec; ++i) {
      if (static_cast<JRecKind>(log[i].kind) == JRecKind::kCommit) {
        ++rep.txns_discarded;
        open_txn = false;
      } else {
        open_txn = true;
      }
    }
    if (open_txn) ++rep.txns_discarded;

    journal_head_ = 0;
    txn_dirty_ = false;
    commit_pending_ = false;
    snapshot_stable();  // recovered state is the new on-platter truth
    return rep;
  }

  // --- fsck ------------------------------------------------------------------
  /// Offline consistency check, like e2fsck in read-only mode: validates
  /// block ownership (no sharing, no out-of-range pointers), bitmap
  /// consistency in both directions (used-but-unreferenced = leaked,
  /// referenced-but-free = corruption), directory-entry sanity, link
  /// counts, and the root inode.
  struct FsckReport {
    bool clean = true;
    std::vector<std::string> problems;

    void problem(std::string p) {
      clean = false;
      problems.push_back(std::move(p));
    }
  };

  FsckReport fsck() {
    FsckReport rep;
    // 0 = free, otherwise owning inode number (or ~0 for multi-owner).
    std::vector<std::uint64_t> owner(data_blocks_ + 1, 0);

    DiskInode* root_inode = inode(root());
    if (root_inode == nullptr ||
        file_type(*root_inode) != FileType::kDirectory) {
      rep.problem("root inode missing or not a directory");
      return rep;
    }

    auto claim = [&](std::uint32_t blk, InodeNum ino, FsckReport* r) {
      if (blk == 0) return;
      if (blk > data_blocks_) {
        r->problem("inode " + std::to_string(ino) +
                   " references out-of-range block " + std::to_string(blk));
        return;
      }
      if (bitmap_[blk - 1] == 0) {
        r->problem("inode " + std::to_string(ino) + " references free block " +
                   std::to_string(blk));
      }
      if (owner[blk] != 0 && owner[blk] != ino) {
        r->problem("block " + std::to_string(blk) + " shared by inodes " +
                   std::to_string(owner[blk]) + " and " + std::to_string(ino));
      }
      owner[blk] = ino;
    };

    // Pass 1: walk every used inode's block pointers.
    std::vector<std::uint32_t> link_count(max_inodes_ + 1, 0);
    for (std::size_t idx = 0; idx < max_inodes_; ++idx) {
      if (!inodes_[idx].used) continue;
      DiskInode n = inodes_[idx];
      InodeNum ino = idx + 1;
      for (std::size_t d = 0; d < kDirect; ++d) claim(n.direct[d], ino, &rep);
      if (n.indirect != 0) {
        claim(n.indirect, ino, &rep);
        if (n.indirect <= data_blocks_) {
          Ptr<std::uint32_t> table = reinterpret_cast_policy(n.indirect);
          for (std::size_t i = 0; i < kPtrsPerBlock; ++i) {
            claim(table[i], ino, &rep);
          }
        }
      }
    }

    // Pass 2: directory entries reference used inodes; count links.
    for (std::size_t idx = 0; idx < max_inodes_; ++idx) {
      if (!inodes_[idx].used) continue;
      if (file_type(inodes_[idx]) != FileType::kDirectory) continue;
      DiskInode dir = inodes_[idx];
      std::size_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
      for (std::size_t b = 0; b < nblocks; ++b) {
        std::uint32_t blk = block_of(dir, b, false);
        if (blk == 0 || blk > data_blocks_) continue;
        for (std::size_t slot = 0; slot < kDirentsPerBlock; ++slot) {
          Dirent de = load_dirent(blk, slot);
          if (!de.used) continue;
          if (de.namelen > kMaxNameLen) {
            rep.problem("directory " + std::to_string(idx + 1) +
                        " has dirent with bad name length");
            continue;
          }
          if (de.ino == 0 || de.ino > max_inodes_ ||
              !inodes_[de.ino - 1].used) {
            rep.problem("directory " + std::to_string(idx + 1) +
                        " entry '" + std::string(de.name, de.namelen) +
                        "' points to unused inode " + std::to_string(de.ino));
            continue;
          }
          ++link_count[de.ino];
        }
      }
    }

    // Pass 3: nlink agreement (files: dirent count; dirs: 2 + child dirs,
    // approximated here as >= 2 since "."/".." are implicit).
    for (std::size_t idx = 0; idx < max_inodes_; ++idx) {
      if (!inodes_[idx].used) continue;
      InodeNum ino = idx + 1;
      if (file_type(inodes_[idx]) == FileType::kDirectory) {
        if (ino != root() && link_count[ino] == 0) {
          rep.problem("directory inode " + std::to_string(ino) +
                      " is orphaned (no dirent references it)");
        }
      } else {
        if (inodes_[idx].nlink != link_count[ino]) {
          rep.problem("inode " + std::to_string(ino) + " has nlink " +
                      std::to_string(inodes_[idx].nlink) + " but " +
                      std::to_string(link_count[ino]) + " references");
        }
        if (link_count[ino] == 0) {
          rep.problem("file inode " + std::to_string(ino) + " is orphaned");
        }
      }
    }

    // Pass 4: bitmap blocks nobody owns are leaked.
    for (std::size_t b = 1; b <= data_blocks_; ++b) {
      if (bitmap_[b - 1] != 0 && owner[b] == 0) {
        rep.problem("block " + std::to_string(b) +
                    " is marked used but unreferenced (leaked)");
      }
    }
    return rep;
  }

  // --- debugfs-style raw access (corruption injection, forensics) -----------
  [[nodiscard]] DiskInode debug_inode(InodeNum ino) { return inodes_[ino - 1]; }
  void debug_set_inode(InodeNum ino, const DiskInode& n) {
    inodes_[ino - 1] = n;
  }
  void debug_set_bitmap(std::uint32_t blk, bool used) {
    bitmap_[blk - 1] = used ? 1 : 0;
  }

 private:
  void charge(std::uint64_t units) {
    if (charge_) charge_(units);
  }

  // --- disk mapping ---------------------------------------------------------
  // LBA layout: [0, journal_slots_) journal strip, then data blocks.
  // In store mode the journal lives in the image, not the LBA space, so
  // data blocks map to their REAL home locations in the store's data
  // region (behind the inode table and bitmap).
  Result<void> io_touch_data(std::uint32_t blk, bool write) {
    if (io_ == nullptr || blk == 0) return {};
    blockdev::Lba lba = store_ != nullptr
                            ? static_cast<blockdev::Lba>(fsdata_base() +
                                                         (blk - 1))
                            : static_cast<blockdev::Lba>(journal_slots_ +
                                                         (blk - 1));
    if (write) return io_->write(lba % io_->disk().size());
    return io_->read(lba % io_->disk().size());
  }
  void io_touch_journal(std::size_t slot) {
    // Store mode: journal appends go through the store's group-commit
    // journal (real image writes); the LBA-strip pricing would double-
    // charge them.
    if (io_ == nullptr || store_ != nullptr) return;
    // Journal-strip write errors are absorbed: in this model the journal
    // only prices the sequential append; a lost record shows up at
    // recovery as a torn/short log, which replay already tolerates.
    (void)io_->write(static_cast<blockdev::Lba>(slot) % io_->disk().size());
  }

  // --- inode helpers ---------------------------------------------------------
  DiskInode* inode(InodeNum ino) {
    if (ino == 0 || ino > max_inodes_) return nullptr;
    DiskInode* n = &inodes_[ino - 1];
    return n->used ? n : nullptr;
  }
  DiskInode* dir_inode(InodeNum ino) {
    DiskInode* n = inode(ino);
    if (n == nullptr || file_type(*n) != FileType::kDirectory) return nullptr;
    return n;
  }
  static FileType file_type(const DiskInode& n) {
    return static_cast<FileType>(n.type);
  }
  FileType inode_type(std::uint32_t ino) {
    DiskInode* n = inode(ino);
    return n != nullptr ? file_type(*n) : FileType::kRegular;
  }

  // --- block allocation --------------------------------------------------------
  /// Data block numbers are 1-based; 0 means "no block".
  std::uint32_t alloc_block() {
    for (std::size_t i = 0; i < data_blocks_; ++i) {
      ++jstats_.bitmap_scan_steps;
      std::size_t probe = (bitmap_cursor_ + i) % data_blocks_;
      if (bitmap_[probe] == 0) {
        bitmap_[probe] = 1;
        bitmap_cursor_ = probe + 1;
        ++jstats_.blocks_allocated;
        journal_bitmap(static_cast<std::uint32_t>(probe + 1), 1);
        // Zero the block through the policy pointer.
        Ptr<std::uint8_t> p = data_ + probe * kBlockSize;
        for (std::size_t b = 0; b < kBlockSize; ++b) p[b] = 0;
        return static_cast<std::uint32_t>(probe + 1);
      }
    }
    return 0;
  }

  void free_block(std::uint32_t blk) {
    if (blk == 0) return;
    bitmap_[blk - 1] = 0;
    ++jstats_.blocks_freed;
    journal_bitmap(blk, 0);
  }

  /// Block number backing logical block index `li` of `n` (0 = hole).
  std::uint32_t block_of(DiskInode& n, std::size_t li, bool alloc) {
    if (li < kDirect) {
      if (n.direct[li] == 0 && alloc) n.direct[li] = alloc_block();
      return n.direct[li];
    }
    li -= kDirect;
    if (li >= kPtrsPerBlock) return 0;
    if (n.indirect == 0) {
      if (!alloc) return 0;
      n.indirect = alloc_block();
      if (n.indirect == 0) return 0;
    }
    Ptr<std::uint32_t> table = reinterpret_cast_policy(n.indirect);
    std::uint32_t blk = table[li];
    if (blk == 0 && alloc) {
      blk = alloc_block();
      // Re-derive: alloc_block may not invalidate, but be explicit.
      Ptr<std::uint32_t> t2 = reinterpret_cast_policy(n.indirect);
      t2[li] = blk;
      journal_block(n.indirect);
    }
    return blk;
  }

  /// View an allocated data block as an array of u32 block pointers. The
  /// raw policy reinterprets in place; this helper keeps the cast local.
  Ptr<std::uint32_t> reinterpret_cast_policy(std::uint32_t blk) {
    return Policy::template cast_bytes<std::uint32_t>(
        data_ + (blk - 1) * kBlockSize, kPtrsPerBlock);
  }

  void free_blocks_from(DiskInode& n, std::size_t keep) {
    for (std::size_t i = keep; i < kDirect; ++i) {
      free_block(n.direct[i]);
      n.direct[i] = 0;
    }
    if (n.indirect != 0) {
      Ptr<std::uint32_t> table = reinterpret_cast_policy(n.indirect);
      std::size_t start = keep > kDirect ? keep - kDirect : 0;
      bool any_left = false;
      for (std::size_t i = 0; i < kPtrsPerBlock; ++i) {
        if (i >= start) {
          free_block(table[i]);
          table[i] = 0;
        } else if (table[i] != 0) {
          any_left = true;
        }
      }
      if (!any_left) {
        free_block(n.indirect);
        n.indirect = 0;
      } else if (crash_sim_) {
        // The surviving indirect block was modified in place; journal its
        // post-image or replay resurrects the freed pointers.
        journal_block(n.indirect);
      }
    }
  }

  // --- dirent helpers -------------------------------------------------------------
  Dirent load_dirent(std::uint32_t blk, std::size_t slot) {
    Dirent de{};
    Ptr<std::uint8_t> p = data_ + (blk - 1) * kBlockSize + slot * kDirentSize;
    auto* out = reinterpret_cast<std::uint8_t*>(&de);
    for (std::size_t i = 0; i < sizeof(Dirent); ++i) out[i] = p[i];
    return de;
  }

  void store_dirent(std::uint32_t blk, std::size_t slot, const Dirent& de) {
    Ptr<std::uint8_t> p = data_ + (blk - 1) * kBlockSize + slot * kDirentSize;
    const auto* in = reinterpret_cast<const std::uint8_t*>(&de);
    for (std::size_t i = 0; i < sizeof(Dirent); ++i) p[i] = in[i];
    journal_block(blk);
  }

  void erase_dirent_slot(std::uint32_t blk, std::size_t slot) {
    Dirent de = load_dirent(blk, slot);
    de.used = 0;
    store_dirent(blk, slot, de);
  }

  bool find_dirent(DiskInode& dir, std::string_view name, Dirent* out,
                   std::uint32_t* out_blk, std::size_t* out_slot) {
    std::size_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::uint32_t blk = block_of(dir, b, false);
      if (blk == 0) continue;
      for (std::size_t s = 0; s < kDirentsPerBlock; ++s) {
        Dirent de = load_dirent(blk, s);
        if (de.used && de.namelen == name.size() &&
            std::memcmp(de.name, name.data(), de.namelen) == 0) {
          if (out != nullptr) *out = de;
          if (out_blk != nullptr) *out_blk = blk;
          if (out_slot != nullptr) *out_slot = s;
          return true;
        }
      }
    }
    return false;
  }

  Errno add_dirent(DiskInode& dir, std::string_view name, std::uint32_t ino) {
    Dirent de{};
    de.ino = ino;
    de.used = 1;
    de.namelen = static_cast<std::uint8_t>(name.size());
    std::memcpy(de.name, name.data(), name.size());

    std::size_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::uint32_t blk = block_of(dir, b, false);
      if (blk == 0) continue;
      for (std::size_t s = 0; s < kDirentsPerBlock; ++s) {
        Dirent cur = load_dirent(blk, s);
        if (!cur.used) {
          store_dirent(blk, s, de);
          return Errno::kOk;
        }
      }
    }
    // Grow the directory by one block.
    std::uint32_t blk = block_of(dir, nblocks, true);
    if (blk == 0) return Errno::kENOSPC;
    dir.size = (nblocks + 1) * kBlockSize;
    store_dirent(blk, 0, de);
    return Errno::kOk;
  }

  Errno remove_entry(InodeNum dir, std::string_view name, bool want_dir) {
    DiskInode* d = dir_inode(dir);
    if (d == nullptr) return Errno::kENOTDIR;
    Dirent de;
    std::uint32_t blk = 0;
    std::size_t slot = 0;
    if (!find_dirent(*d, name, &de, &blk, &slot)) return Errno::kENOENT;
    DiskInode* victim = inode(de.ino);
    if (victim == nullptr) return Errno::kEIO;
    bool is_dir = file_type(*victim) == FileType::kDirectory;
    if (want_dir && !is_dir) return Errno::kENOTDIR;
    if (!want_dir && is_dir) return Errno::kEISDIR;
    if (is_dir) {
      // Must be empty.
      std::size_t nblocks = (victim->size + kBlockSize - 1) / kBlockSize;
      for (std::size_t b = 0; b < nblocks; ++b) {
        std::uint32_t vb = block_of(*victim, b, false);
        if (vb == 0) continue;
        for (std::size_t s = 0; s < kDirentsPerBlock; ++s) {
          if (load_dirent(vb, s).used) return Errno::kENOTEMPTY;
        }
      }
    }
    erase_dirent_slot(blk, slot);
    if (is_dir || --victim->nlink == 0) {
      free_blocks_from(*victim, 0);
      victim->used = 0;
      if (is_dir) --d->nlink;
    }
    d->mtime = ++clock_;
    journal_inode(dir);
    // Crash-sim: the victim's new state (nlink drop or deallocation) must
    // replay, or recovery resurrects it half-dead.
    if (crash_sim_) journal_inode(de.ino);
    return Errno::kOk;
  }

  // --- journaling ------------------------------------------------------------------
  /// One transaction per mutating public operation. Depth-counted so
  /// nested mutations (rename -> remove_entry) stay one transaction; the
  /// commit marker is appended when the outermost scope exits.
  struct TxnScope {
    JournalFs& fs;
    explicit TxnScope(JournalFs& f) : fs(f) { ++fs.txn_depth_; }
    ~TxnScope() {
      if (--fs.txn_depth_ == 0 && fs.crash_sim_) fs.end_txn();
    }
  };

  /// Keep this many free journal slots when deciding to checkpoint, so a
  /// transaction never wraps the circular log over its own records.
  static constexpr std::size_t kJournalMargin = 16;

  JournalRecord& next_record(JRecKind kind, std::uint32_t target,
                             std::uint32_t len) {
    JournalRecord& rec = journal_[journal_head_ % journal_slots_];
    rec.seq = ++journal_seq_;
    rec.kind = static_cast<std::uint8_t>(kind);
    rec.target = target;
    rec.len = len;
    return rec;
  }

  /// Finish an append: checksum it, let kfail's disk.torn site tear it
  /// (silently -- the damage only shows at recovery), touch the journal
  /// strip on the io model, and advance the head.
  void seal_record(JournalRecord& rec) {
    if (crash_sim_) {
      rec.checksum = record_checksum(rec);
      if (auto f = USK_FAIL_POINT(fault::Site::kDiskTorn);
          f.fail || f.transient) {
        // Torn write: the tail of the record never hit the platter.
        for (std::size_t i = rec.len / 2; i < rec.len; ++i) rec.payload[i] = 0;
        rec.checksum ^= 0x5bd1e9955bd1e995ull;
        ++jstats_.torn_records;
      }
    }
    io_touch_journal(journal_head_ % journal_slots_);
    ++journal_head_;
  }

  /// Append a copy of data block `blk` to the journal (byte loop through
  /// policy pointers: this is the KGCC hot path).
  void journal_block(std::uint32_t blk) {
    JournalRecord& rec = next_record(JRecKind::kBlock, blk, kBlockSize);
    Ptr<std::uint8_t> src = data_ + (blk - 1) * kBlockSize;
    for (std::size_t i = 0; i < kBlockSize; ++i) rec.payload[i] = src[i];
    // The store gets the CLEAN post-image (before kfail's disk.torn can
    // mutate the in-memory record): media tears are the store's own
    // fault sites' job.
    store_append(rec);
    seal_record(rec);
    ++jstats_.journal_records;
    txn_dirty_ = true;
    charge(journal_cost_);
    if (journal_seq_ % commit_interval_ == 0) {
      // Crash-sim defers the checkpoint to the transaction boundary so the
      // stable image never contains half a transaction.
      if (crash_sim_) {
        commit_pending_ = true;
      } else {
        (void)commit_journal();
      }
    }
  }

  /// Journal an inode update (the inode table region).
  void journal_inode(InodeNum ino) {
    JournalRecord& rec = next_record(JRecKind::kInode, static_cast<std::uint32_t>(ino),
                                     static_cast<std::uint32_t>(sizeof(DiskInode)));
    const DiskInode& n = inodes_[ino - 1];
    const auto* src = reinterpret_cast<const std::uint8_t*>(&n);
    for (std::size_t i = 0; i < sizeof(DiskInode); ++i) rec.payload[i] = src[i];
    store_append(rec);
    seal_record(rec);
    ++jstats_.journal_records;
    txn_dirty_ = true;
  }

  /// Journal a bitmap delta (crash-sim only: block allocation state must
  /// replay or recovered inodes would point into "free" blocks).
  void journal_bitmap(std::uint32_t blk, std::uint8_t used) {
    if (!crash_sim_) return;
    JournalRecord& rec = next_record(JRecKind::kBitmap, blk, 1);
    rec.payload[0] = used;
    store_append(rec);
    seal_record(rec);
    txn_dirty_ = true;
  }

  /// Outermost mutation scope exit (crash-sim): append the commit marker
  /// and run any deferred checkpoint.
  void end_txn() {
    if (!txn_dirty_) return;
    JournalRecord& rec = next_record(JRecKind::kCommit, 0, 0);
    seal_record(rec);
    ++jstats_.commit_markers;
    txn_dirty_ = false;
    if (commit_pending_ || journal_head_ + kJournalMargin >= journal_slots_) {
      commit_pending_ = false;
      (void)commit_journal();
    }
  }

  Result<void> commit_journal() {
    // Checkpoint: flush dirty cached blocks to their home locations (the
    // scattered writes the journal deferred), then reset the head. A
    // writeback error leaves the cache dirty and is surfaced to sync();
    // the journal is reclaimed regardless (retry re-dirties nothing).
    Result<void> r{};
    if (store_ != nullptr) {
      // Store mode: commit the accumulated transaction batch to the
      // group-commit journal. The store checkpoints itself on region
      // pressure; the image -- not an in-memory snapshot -- is the
      // stable truth, so snapshot_stable() is skipped below.
      r = store_commit();
    } else if (io_ != nullptr) {
      r = io_->flush();
    }
    ++jstats_.journal_commits;
    journal_head_ = 0;
    txn_dirty_ = false;
    if (crash_sim_ && store_ == nullptr) snapshot_stable();
    return r;
  }

  // --- persistent store internals (PR-8) --------------------------------------
  // Home-location layout in the store's data region (see attach_store).
  [[nodiscard]] std::size_t inode_table_blocks() const {
    return (max_inodes_ * sizeof(DiskInode) + kBlockSize - 1) / kBlockSize;
  }
  [[nodiscard]] std::size_t bitmap_table_blocks() const {
    return (data_blocks_ + kBlockSize - 1) / kBlockSize;
  }
  [[nodiscard]] std::size_t fsdata_base() const {
    return inode_table_blocks() + bitmap_table_blocks();
  }
  [[nodiscard]] std::size_t total_home_blocks() const {
    return fsdata_base() + data_blocks_;
  }

  /// Feed a (clean) redo record into the running store transaction and
  /// note which home blocks its post-image dirties. The batch commits at
  /// sync()/fsync()/commit-interval boundaries, never per record.
  void store_append(const JournalRecord& rec) {
    if (store_ == nullptr) return;
    store_txn_.append(rec.kind, rec.target, rec.payload, rec.len);
    mark_home(static_cast<JRecKind>(rec.kind), rec.target);
  }

  void mark_home(JRecKind kind, std::uint32_t target) {
    switch (kind) {
      case JRecKind::kBlock:
        pending_home_.insert(fsdata_base() + (target - 1));
        break;
      case JRecKind::kInode: {
        // sizeof(DiskInode) does not divide the block size: an inode can
        // straddle a block boundary, dirtying two home blocks.
        const std::size_t first = (target - 1) * sizeof(DiskInode);
        pending_home_.insert(first / kBlockSize);
        pending_home_.insert((first + sizeof(DiskInode) - 1) / kBlockSize);
        break;
      }
      case JRecKind::kBitmap:
        pending_home_.insert(inode_table_blocks() + (target - 1) / kBlockSize);
        break;
      case JRecKind::kCommit:
        break;
    }
  }

  /// Commit the accumulated batch to the store's group-commit journal,
  /// then (inside the store's checkpoint exclusion) apply the home-
  /// location post-images to the page cache. Redo ordering: home blocks
  /// are dirtied only AFTER the commit unit is durable, so background
  /// writeback can never push uncommitted state into the image.
  Result<void> store_commit() {
    if (store_ == nullptr) return {};
    if (store_txn_.empty()) {
      // Nothing journaled since the last commit; retry any home writes a
      // previous commit failed to apply.
      return flush_home_writes();
    }
    Result<std::uint64_t> r = store_->commit_txn(
        std::move(store_txn_), [this] { return flush_home_writes(); });
    store_txn_ = store::JTxn{};
    if (!r.ok()) return r.error();
    ++jstats_.store_commits;
    return {};
  }

  /// Write every pending home block's CURRENT content (the live arrays
  /// equal the post-commit state: everything in the batch just committed
  /// together) into the page cache. A failed write keeps the remaining
  /// blocks pending for the next commit; the journal still holds their
  /// records until a later checkpoint succeeds.
  Result<void> flush_home_writes() {
    if (pending_home_.empty()) return {};
    std::vector<std::uint8_t> buf(kBlockSize);
    for (auto it = pending_home_.begin(); it != pending_home_.end();) {
      rebuild_home_block(*it, buf.data());
      if (Result<void> w =
              io_->write_data(static_cast<blockdev::Lba>(*it), buf.data());
          !w.ok()) {
        return w;
      }
      ++jstats_.store_home_writes;
      it = pending_home_.erase(it);
    }
    return {};
  }

  /// Reconstruct the authoritative content of home block `lba` from the
  /// live arrays (byte-wise through the policy pointers: inodes straddle
  /// block boundaries, so whole blocks are rebuilt, not records copied).
  void rebuild_home_block(std::size_t lba, std::uint8_t* out) {
    std::memset(out, 0, kBlockSize);
    if (lba < inode_table_blocks()) {
      const std::size_t lo = lba * kBlockSize;
      const std::size_t hi = lo + kBlockSize;
      const std::size_t table_bytes = max_inodes_ * sizeof(DiskInode);
      for (std::size_t k = lo / sizeof(DiskInode);
           k < max_inodes_ && k * sizeof(DiskInode) < hi; ++k) {
        const DiskInode tmp = inodes_[k];
        const auto* src = reinterpret_cast<const std::uint8_t*>(&tmp);
        const std::size_t base = k * sizeof(DiskInode);
        for (std::size_t i = 0; i < sizeof(DiskInode); ++i) {
          const std::size_t off = base + i;
          if (off >= lo && off < hi && off < table_bytes) {
            out[off - lo] = src[i];
          }
        }
      }
      return;
    }
    if (lba < fsdata_base()) {
      const std::size_t lo = (lba - inode_table_blocks()) * kBlockSize;
      if (lo >= data_blocks_) return;
      const std::size_t n = std::min(kBlockSize, data_blocks_ - lo);
      for (std::size_t i = 0; i < n; ++i) out[i] = bitmap_[lo + i];
      return;
    }
    const std::size_t blk = lba - fsdata_base();  // 0-based fs data block
    Ptr<std::uint8_t> src = data_ + blk * kBlockSize;
    for (std::size_t i = 0; i < kBlockSize; ++i) out[i] = src[i];
  }

  /// Replay one recovered journal record into the live arrays (the store
  /// flavour of apply_record; targets re-validated since the record comes
  /// off the medium).
  void apply_store_record(const store::JRecord& r) {
    switch (static_cast<JRecKind>(r.kind)) {
      case JRecKind::kBlock: {
        if (r.target == 0 || r.target > data_blocks_) return;
        Ptr<std::uint8_t> dst = data_ + (r.target - 1) * kBlockSize;
        const std::size_t n =
            std::min<std::size_t>(r.payload.size(), kBlockSize);
        for (std::size_t i = 0; i < n; ++i) dst[i] = r.payload[i];
        break;
      }
      case JRecKind::kInode: {
        if (r.target == 0 || r.target > max_inodes_) return;
        if (r.payload.size() < sizeof(DiskInode)) return;
        DiskInode n;
        std::memcpy(&n, r.payload.data(), sizeof(DiskInode));
        inodes_[r.target - 1] = n;
        break;
      }
      case JRecKind::kBitmap:
        if (r.target == 0 || r.target > data_blocks_) return;
        if (!r.payload.empty()) bitmap_[r.target - 1] = r.payload[0];
        break;
      default:
        break;
    }
  }

  /// Fresh image: persist the formatted state (only the root inode's home
  /// block is nonzero; the image file itself starts zeroed) and
  /// checkpoint it stable.
  Result<void> format_store() {
    pending_home_.insert(0);  // root inode lives at data-region byte 0
    USK_TRY(flush_home_writes());
    return store_->checkpoint();
  }

  /// Existing image: load the checkpointed state from the data region,
  /// replay the journal's committed prefix on top, write the replayed
  /// post-images home, and re-checkpoint -- the recovered state becomes
  /// the new stable image.
  Result<void> restore_from_store() {
    std::vector<std::uint8_t> blk(kBlockSize);
    const std::size_t it_blocks = inode_table_blocks();
    std::vector<std::uint8_t> table(it_blocks * kBlockSize);
    for (std::size_t b = 0; b < it_blocks; ++b) {
      USK_TRY(io_->read_data(static_cast<blockdev::Lba>(b), blk.data()));
      std::memcpy(table.data() + b * kBlockSize, blk.data(), kBlockSize);
    }
    for (std::size_t k = 0; k < max_inodes_; ++k) {
      DiskInode n;
      std::memcpy(&n, table.data() + k * sizeof(DiskInode), sizeof(DiskInode));
      inodes_[k] = n;
    }
    for (std::size_t b = 0; b < bitmap_table_blocks(); ++b) {
      USK_TRY(io_->read_data(static_cast<blockdev::Lba>(it_blocks + b),
                             blk.data()));
      const std::size_t lo = b * kBlockSize;
      const std::size_t n = std::min(kBlockSize, data_blocks_ - lo);
      for (std::size_t i = 0; i < n; ++i) bitmap_[lo + i] = blk[i];
    }
    for (std::size_t b = 0; b < data_blocks_; ++b) {
      USK_TRY(io_->read_data(static_cast<blockdev::Lba>(fsdata_base() + b),
                             blk.data()));
      Ptr<std::uint8_t> dst = data_ + b * kBlockSize;
      for (std::size_t i = 0; i < kBlockSize; ++i) dst[i] = blk[i];
    }
    last_recovery_ =
        store_->recover([this](const store::JRecord& r, std::uint64_t) {
          apply_store_record(r);
          mark_home(static_cast<JRecKind>(r.kind), r.target);
        });
    journal_head_ = 0;
    txn_dirty_ = false;
    commit_pending_ = false;
    USK_TRY(flush_home_writes());
    return store_->checkpoint();
  }

  // --- crash-sim internals ---------------------------------------------------
  static std::uint64_t record_checksum(const JournalRecord& rec) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (b * 8)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    mix(rec.seq);
    mix(rec.target);
    mix(rec.len);
    mix(rec.kind);
    for (std::size_t i = 0; i < rec.len && i < kBlockSize; ++i) {
      h ^= rec.payload[i];
      h *= 1099511628211ull;
    }
    return h;
  }

  bool record_valid(const JournalRecord& rec) const {
    if (rec.kind > static_cast<std::uint8_t>(JRecKind::kCommit)) return false;
    if (rec.len > kBlockSize) return false;
    switch (static_cast<JRecKind>(rec.kind)) {
      case JRecKind::kBlock:
      case JRecKind::kBitmap:
        if (rec.target == 0 || rec.target > data_blocks_) return false;
        break;
      case JRecKind::kInode:
        if (rec.target == 0 || rec.target > max_inodes_) return false;
        break;
      case JRecKind::kCommit:
        break;
    }
    return rec.checksum == record_checksum(rec);
  }

  void apply_record(const JournalRecord& rec) {
    switch (static_cast<JRecKind>(rec.kind)) {
      case JRecKind::kBlock: {
        Ptr<std::uint8_t> dst = data_ + (rec.target - 1) * kBlockSize;
        for (std::size_t i = 0; i < kBlockSize; ++i) dst[i] = rec.payload[i];
        break;
      }
      case JRecKind::kInode: {
        DiskInode n;
        std::memcpy(&n, rec.payload, sizeof(DiskInode));
        inodes_[rec.target - 1] = n;
        break;
      }
      case JRecKind::kBitmap:
        bitmap_[rec.target - 1] = rec.payload[0];
        break;
      case JRecKind::kCommit:
        break;
    }
  }

  /// Copy the live arrays into the stable ("on-platter") image.
  void snapshot_stable() {
    stable_inodes_.resize(max_inodes_);
    for (std::size_t i = 0; i < max_inodes_; ++i) stable_inodes_[i] = inodes_[i];
    stable_bitmap_.resize(data_blocks_);
    for (std::size_t i = 0; i < data_blocks_; ++i) stable_bitmap_[i] = bitmap_[i];
    stable_data_.resize(data_blocks_ * kBlockSize);
    for (std::size_t i = 0; i < data_blocks_ * kBlockSize; ++i) {
      stable_data_[i] = data_[i];
    }
    stable_valid_ = true;
  }

  void restore_stable() {
    for (std::size_t i = 0; i < max_inodes_; ++i) inodes_[i] = stable_inodes_[i];
    for (std::size_t i = 0; i < data_blocks_; ++i) bitmap_[i] = stable_bitmap_[i];
    for (std::size_t i = 0; i < data_blocks_ * kBlockSize; ++i) {
      data_[i] = stable_data_[i];
    }
  }

  std::size_t max_inodes_;
  std::size_t data_blocks_;
  std::size_t journal_slots_;
  std::size_t commit_interval_;
  Ptr<DiskInode> inodes_{};
  Ptr<std::uint8_t> bitmap_{};
  Ptr<std::uint8_t> data_{};
  Ptr<JournalRecord> journal_{};
  std::size_t bitmap_cursor_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t journal_seq_ = 0;
  std::size_t journal_head_ = 0;
  // --- crash-sim state ---
  bool crash_sim_ = false;
  bool txn_dirty_ = false;      ///< records appended since last marker
  bool commit_pending_ = false; ///< checkpoint deferred to txn boundary
  int txn_depth_ = 0;
  bool stable_valid_ = false;
  std::vector<DiskInode> stable_inodes_;
  std::vector<std::uint8_t> stable_bitmap_;
  std::vector<std::uint8_t> stable_data_;
  JournalFsStats jstats_;
  FsCosts costs_;
  std::uint64_t journal_cost_ = 40;
  std::function<void(std::uint64_t)> charge_;
  blockdev::BufferCache* io_ = nullptr;
  // --- persistent store state (PR-8) ---
  store::Store* store_ = nullptr;
  store::JTxn store_txn_{};          ///< redo batch since the last commit
  std::set<std::size_t> pending_home_;  ///< home LBAs the batch dirties
  store::Store::RecoveryReport last_recovery_{};
};

}  // namespace usk::fs
