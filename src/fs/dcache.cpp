#include "fs/dcache.hpp"

namespace usk::fs {

InodeNum Dcache::lookup(InodeNum parent, std::string_view name,
                        std::uint32_t fs_id) {
  USK_SPIN_GUARD(lock_);
  ++stats_.lookups;
  auto it = map_.find(Key{fs_id, parent, std::string(name)});
  if (it == map_.end()) return kInvalidInode;
  ++stats_.hits;
  touch(it->first, it->second);
  return it->second.child;
}

void Dcache::insert(InodeNum parent, std::string_view name, InodeNum child,
                    std::uint32_t fs_id) {
  USK_SPIN_GUARD(lock_);
  ++stats_.inserts;
  Key key{fs_id, parent, std::string(name)};
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.child = child;
    touch(it->first, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    // Evict least-recently used.
    const Key& victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  map_.emplace(std::move(key), Entry{child, lru_.begin()});
}

void Dcache::invalidate(InodeNum parent, std::string_view name,
                        std::uint32_t fs_id) {
  USK_SPIN_GUARD(lock_);
  ++stats_.invalidations;
  auto it = map_.find(Key{fs_id, parent, std::string(name)});
  if (it == map_.end()) return;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void Dcache::invalidate_dir(InodeNum parent, std::uint32_t fs_id) {
  USK_SPIN_GUARD(lock_);
  ++stats_.invalidations;
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.parent == parent && it->first.fs_id == fs_id) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void Dcache::clear() {
  USK_SPIN_GUARD(lock_);
  map_.clear();
  lru_.clear();
}

void Dcache::touch(const Key& k, Entry& e) {
  lru_.erase(e.lru_it);
  lru_.push_front(k);
  e.lru_it = lru_.begin();
}

}  // namespace usk::fs
