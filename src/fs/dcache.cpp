#include "fs/dcache.hpp"

#include "trace/tracepoint.hpp"

namespace usk::fs {

InodeNum Dcache::lookup(InodeNum parent, std::string_view name,
                        std::uint32_t fs_id) {
  USK_TRACE_LATENCY("dcache", "lookup");
  Key key{fs_id, parent, std::string(name)};
  std::size_t si = shard_of(key);
  Shard& s = shards_[si];
  InodeNum found = kInvalidInode;
  {
    USK_SPIN_GUARD(locks_.at(si));
    if (hold_work_ != 0) work_.alu(hold_work_);  // chain walk under the lock
    ++s.stats.lookups;
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      ++s.stats.hits;
      touch(s, it->first, it->second);
      found = it->second.child;
    }
  }
  // Emit outside the shard lock so enabled tracing never stretches the
  // paper's instrumented critical section.
  if (found != kInvalidInode) {
    USK_TRACEPOINT("dcache", "hit", parent, found);
  } else {
    USK_TRACEPOINT("dcache", "miss", parent);
  }
  return found;
}

void Dcache::insert(InodeNum parent, std::string_view name, InodeNum child,
                    std::uint32_t fs_id) {
  Key key{fs_id, parent, std::string(name)};
  std::size_t si = shard_of(key);
  Shard& s = shards_[si];
  USK_SPIN_GUARD(locks_.at(si));
  if (hold_work_ != 0) work_.alu(hold_work_);
  ++s.stats.inserts;
  auto it = s.map.find(key);
  if (it != s.map.end()) {
    it->second.child = child;
    touch(s, it->first, it->second);
    return;
  }
  if (s.map.size() >= per_shard_capacity_) {
    // Evict this shard's least-recently used.
    const Key& victim = s.lru.back();
    s.map.erase(victim);
    s.lru.pop_back();
    ++s.stats.evictions;
  }
  s.lru.push_front(key);
  s.map.emplace(std::move(key), Entry{child, s.lru.begin()});
}

void Dcache::invalidate(InodeNum parent, std::string_view name,
                        std::uint32_t fs_id) {
  Key key{fs_id, parent, std::string(name)};
  std::size_t si = shard_of(key);
  Shard& s = shards_[si];
  USK_SPIN_GUARD(locks_.at(si));
  if (hold_work_ != 0) work_.alu(hold_work_);
  ++s.stats.invalidations;
  auto it = s.map.find(key);
  if (it == s.map.end()) return;
  s.lru.erase(it->second.lru_it);
  s.map.erase(it);
}

void Dcache::invalidate_dir(InodeNum parent, std::uint32_t fs_id) {
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& s = shards_[si];
    USK_SPIN_GUARD(locks_.at(si));
    if (si == 0) ++s.stats.invalidations;
    for (auto it = s.map.begin(); it != s.map.end();) {
      if (it->first.parent == parent && it->first.fs_id == fs_id) {
        s.lru.erase(it->second.lru_it);
        it = s.map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Dcache::clear() {
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& s = shards_[si];
    USK_SPIN_GUARD(locks_.at(si));
    s.map.clear();
    s.lru.clear();
  }
}

DcacheStats Dcache::stats() const {
  DcacheStats sum;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const Shard& s = shards_[si];
    USK_SPIN_GUARD(locks_.at(si));
    sum.lookups += s.stats.lookups;
    sum.hits += s.stats.hits;
    sum.inserts += s.stats.inserts;
    sum.invalidations += s.stats.invalidations;
    sum.evictions += s.stats.evictions;
  }
  return sum;
}

std::size_t Dcache::size() const {
  std::size_t n = 0;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    USK_SPIN_GUARD(locks_.at(si));
    n += shards_[si].map.size();
  }
  return n;
}

std::size_t Dcache::shard_size(std::size_t shard) const {
  USK_SPIN_GUARD(locks_.at(shard));
  return shards_[shard].map.size();
}

void Dcache::touch(Shard& s, const Key& k, Entry& e) {
  s.lru.erase(e.lru_it);
  s.lru.push_front(k);
  e.lru_it = s.lru.begin();
}

}  // namespace usk::fs
