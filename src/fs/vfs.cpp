#include "fs/vfs.hpp"

#include <algorithm>

#include "trace/tracepoint.hpp"

namespace usk::fs {

// --- FdTable -------------------------------------------------------------------

Result<int> FdTable::install(const OpenFile& f) {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (!files_[i].has_value()) {
      files_[i] = f;
      return static_cast<int>(i);
    }
  }
  if (files_.size() >= max_fds_) return Errno::kEMFILE;
  files_.push_back(f);
  return static_cast<int>(files_.size() - 1);
}

OpenFile* FdTable::get(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= files_.size()) return nullptr;
  return files_[fd].has_value() ? &*files_[fd] : nullptr;
}

Result<void> FdTable::release(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= files_.size() ||
      !files_[fd].has_value()) {
    return Errno::kEBADF;
  }
  files_[fd].reset();
  return Errno::kOk;
}

std::size_t FdTable::open_count() const {
  return static_cast<std::size_t>(std::count_if(
      files_.begin(), files_.end(),
      [](const auto& f) { return f.has_value(); }));
}

// --- path walking -----------------------------------------------------------------

namespace {
/// Split "/a/b/c" into components; empty components are skipped.
std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t start = i;
    while (i < path.size() && path[i] != '/') ++i;
    if (i > start) parts.push_back(path.substr(start, i - start));
  }
  return parts;
}

/// The filesystem a file handle belongs to.
FileSystem& file_fs(FileSystem& root, const OpenFile& f) {
  return f.fsp != nullptr ? *f.fsp : root;
}
}  // namespace

Result<Vfs::Loc> Vfs::step(const Loc& dir, std::string_view name) {
  ++vstats_.path_components;
  InodeNum child = dcache_.lookup(dir.ino, name, dir.fs_id);
  if (child == kInvalidInode) {
    Result<InodeNum> r = dir.fs->lookup(dir.ino, name);
    if (!r) return r.error();
    child = r.value();
    dcache_.insert(dir.ino, name, child, dir.fs_id);
  }
  Loc next{dir.fs, child, dir.fs_id};
  // Mount-point redirect: a covered directory resolves to the root of the
  // filesystem mounted on it.
  auto it = mounts_.find({next.fs_id, next.ino});
  if (it != mounts_.end()) {
    ++vstats_.mount_crossings;
    next = Loc{it->second.fs, it->second.fs->root(), it->second.fs_id};
  }
  return next;
}

Result<Vfs::Loc> Vfs::resolve_loc(std::string_view path) {
  if (path.empty()) return Errno::kEINVAL;
  Loc cur = root_loc();
  for (std::string_view part : split_path(path)) {
    if (part == ".") continue;
    Result<Loc> next = step(cur, part);
    if (!next) return next;
    cur = next.value();
  }
  return cur;
}

Result<InodeNum> Vfs::resolve(std::string_view path) {
  Result<Loc> loc = resolve_loc(path);
  if (!loc) return loc.error();
  return loc.value().ino;
}

Result<std::pair<Vfs::Loc, std::string>> Vfs::resolve_parent(
    std::string_view path) {
  auto parts = split_path(path);
  if (parts.empty()) return Errno::kEINVAL;
  Loc cur = root_loc();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == ".") continue;
    Result<Loc> next = step(cur, parts[i]);
    if (!next) return next.error();
    cur = next.value();
  }
  return std::make_pair(cur, std::string(parts.back()));
}

// --- mounts --------------------------------------------------------------------------

Result<void> Vfs::mount(std::string_view dir_path, FileSystem& fs) {
  Result<Loc> at = resolve_loc(dir_path);
  if (!at) return at.error();
  StatBuf st;
  Errno e = at.value().fs->getattr(at.value().ino, &st);
  if (e != Errno::kOk) return e;
  if (st.type != FileType::kDirectory) return Errno::kENOTDIR;
  if (at.value().fs == &fs) return Errno::kEINVAL;  // self-mount
  // resolve_loc follows mounts, so mounting on an already-covered point
  // (or on "/") resolves to some filesystem's root: one layer per point.
  if (at.value().ino == at.value().fs->root()) return Errno::kEBUSY;
  auto key = std::make_pair(at.value().fs_id, at.value().ino);
  if (mounts_.contains(key)) return Errno::kEBUSY;
  mounts_[key] = MountEntry{&fs, next_fs_id_++};
  return Errno::kOk;
}

Result<void> Vfs::unmount(std::string_view dir_path) {
  // Resolve the parent and step WITHOUT the final mount redirect: find the
  // covered directory by matching the mounted root instead.
  Result<Loc> at = resolve_loc(dir_path);
  if (!at) return at.error();
  for (auto it = mounts_.begin(); it != mounts_.end(); ++it) {
    if (it->second.fs_id == at.value().fs_id) {
      mounts_.erase(it);
      return Errno::kOk;
    }
  }
  return Errno::kEINVAL;
}

// --- file operations ------------------------------------------------------------------

Result<int> Vfs::open(FdTable& fds, std::string_view path, int flags,
                      std::uint32_t mode) {
  USK_TRACE_LATENCY("vfs", "open");
  USK_TRACEPOINT("vfs", "open", path.size(),
                 static_cast<std::uint64_t>(flags));
  ++vstats_.opens;
  Result<Loc> loc = resolve_loc(path);
  if (!loc) {
    if ((flags & kOCreat) == 0 || loc.error() != Errno::kENOENT) {
      return loc.error();
    }
    auto parent = resolve_parent(path);
    if (!parent) return parent.error();
    const Loc& dir = parent.value().first;
    Result<InodeNum> created = dir.fs->create(
        dir.ino, parent.value().second, FileType::kRegular, mode);
    if (!created) return created.error();
    dcache_.insert(dir.ino, parent.value().second, created.value(),
                   dir.fs_id);
    loc = Loc{dir.fs, created.value(), dir.fs_id};
  } else if ((flags & kOTrunc) != 0) {
    Errno e = loc.value().fs->truncate(loc.value().ino, 0);
    if (e != Errno::kOk) return e;
  }

  StatBuf st;
  Errno e = loc.value().fs->getattr(loc.value().ino, &st);
  if (e != Errno::kOk) return e;
  if (st.type == FileType::kDirectory && (flags & kAccessMode) != kORdOnly) {
    return Errno::kEISDIR;
  }
  if (st.type == FileType::kRegular) {
    // Let the filesystem see the open: synthetic filesystems (ProcFs)
    // render their content here.
    Errno oe = loc.value().fs->open_file(loc.value().ino);
    if (oe != Errno::kOk) return oe;
  }

  OpenFile f;
  f.ino = loc.value().ino;
  f.flags = flags;
  f.pos = 0;
  f.fsp = loc.value().fs == &fs_ ? nullptr : loc.value().fs;
  f.fs_id = loc.value().fs_id;
  return fds.install(f);
}

Result<void> Vfs::close(FdTable& fds, int fd) {
  ++vstats_.closes;
  OpenFile* f = fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  FileSystem& ffs = file_fs(fs_, *f);
  InodeNum ino = f->ino;
  Errno e = fds.release(fd);
  if (e == Errno::kOk) ffs.release_file(ino);
  return e;
}

Result<int> Vfs::dup(FdTable& fds, int fd) {
  OpenFile* f = fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  OpenFile copy = *f;
  Result<int> nfd = fds.install(copy);
  if (nfd) file_fs(fs_, copy).dup_file(copy.ino);
  return nfd;
}

Result<std::size_t> Vfs::read(FdTable& fds, int fd, std::span<std::byte> out) {
  USK_TRACE_LATENCY("vfs", "read");
  USK_TRACEPOINT("vfs", "read", static_cast<std::uint64_t>(fd), out.size());
  ++vstats_.reads;
  OpenFile* f = fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  if ((f->flags & kAccessMode) == kOWrOnly) return Errno::kEBADF;
  Result<std::size_t> r = file_fs(fs_, *f).read(f->ino, f->pos, out);
  if (r) f->pos += r.value();
  return r;
}

Result<std::size_t> Vfs::write(FdTable& fds, int fd,
                               std::span<const std::byte> in) {
  USK_TRACE_LATENCY("vfs", "write");
  USK_TRACEPOINT("vfs", "write", static_cast<std::uint64_t>(fd), in.size());
  ++vstats_.writes;
  OpenFile* f = fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  if ((f->flags & kAccessMode) == kORdOnly) return Errno::kEBADF;
  FileSystem& ffs = file_fs(fs_, *f);
  if ((f->flags & kOAppend) != 0) {
    StatBuf st;
    Errno e = ffs.getattr(f->ino, &st);
    if (e != Errno::kOk) return e;
    f->pos = st.size;
  }
  Result<std::size_t> r = ffs.write(f->ino, f->pos, in);
  if (r) f->pos += r.value();
  return r;
}

Result<std::uint64_t> Vfs::lseek(FdTable& fds, int fd, std::int64_t off,
                                 int whence) {
  OpenFile* f = fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  std::int64_t base = 0;
  switch (whence) {
    case kSeekSet:
      base = 0;
      break;
    case kSeekCur:
      base = static_cast<std::int64_t>(f->pos);
      break;
    case kSeekEnd: {
      StatBuf st;
      Errno e = file_fs(fs_, *f).getattr(f->ino, &st);
      if (e != Errno::kOk) return e;
      base = static_cast<std::int64_t>(st.size);
      break;
    }
    default:
      return Errno::kEINVAL;
  }
  std::int64_t target = base + off;
  if (target < 0) return Errno::kEINVAL;
  f->pos = static_cast<std::uint64_t>(target);
  return f->pos;
}

Result<void> Vfs::fstat(FdTable& fds, int fd, StatBuf* st) {
  ++vstats_.stats_;
  OpenFile* f = fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  return file_fs(fs_, *f).getattr(f->ino, st);
}

Result<void> Vfs::fsync(FdTable& fds, int fd, bool datasync) {
  USK_TRACEPOINT("vfs", "fsync", static_cast<std::uint64_t>(fd), datasync);
  // EBADF-before-work: fd validity is decided before the filesystem is
  // asked to do anything (same ordering contract as read/write).
  OpenFile* f = fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  return file_fs(fs_, *f).fsync(f->ino, datasync);
}

Result<void> Vfs::stat(std::string_view path, StatBuf* st) {
  USK_TRACE_LATENCY("vfs", "stat");
  USK_TRACEPOINT("vfs", "stat", path.size());
  ++vstats_.stats_;
  Result<Loc> loc = resolve_loc(path);
  if (!loc) return loc.error();
  return loc.value().fs->getattr(loc.value().ino, st);
}

Result<std::vector<DirEntry>> Vfs::readdir_fd(FdTable& fds, int fd) {
  OpenFile* f = fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  return file_fs(fs_, *f).readdir(f->ino);
}

Result<std::vector<DirEntry>> Vfs::readdir_window(FdTable& fds, int fd,
                                                  std::size_t start,
                                                  std::size_t max_entries) {
  OpenFile* f = fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  return file_fs(fs_, *f).readdir_window(f->ino, start, max_entries);
}

Result<std::vector<DirEntry>> Vfs::readdir_window_at(
    const Loc& dir, std::size_t start, std::size_t max_entries) {
  return dir.fs->readdir_window(dir.ino, start, max_entries);
}

Result<void> Vfs::getattr_at(const Loc& loc, StatBuf* st) {
  return loc.fs->getattr(loc.ino, st);
}

// --- namespace operations ----------------------------------------------------------------

Result<void> Vfs::mkdir(std::string_view path, std::uint32_t mode) {
  auto parent = resolve_parent(path);
  if (!parent) return parent.error();
  const Loc& dir = parent.value().first;
  Result<InodeNum> r = dir.fs->create(dir.ino, parent.value().second,
                                      FileType::kDirectory, mode);
  if (!r) return r.error();
  dcache_.insert(dir.ino, parent.value().second, r.value(), dir.fs_id);
  return Errno::kOk;
}

Result<void> Vfs::rmdir(std::string_view path) {
  auto parent = resolve_parent(path);
  if (!parent) return parent.error();
  const Loc& dir = parent.value().first;
  Result<Loc> victim = step(dir, parent.value().second);
  if (victim && mounts_.contains({victim.value().fs_id,
                                  victim.value().ino})) {
    return Errno::kEBUSY;  // mounted directories cannot be removed
  }
  // A mount point itself is also busy (victim resolved INTO the mount).
  if (victim && victim.value().fs != dir.fs) return Errno::kEBUSY;
  Errno e = dir.fs->rmdir(dir.ino, parent.value().second);
  if (e == Errno::kOk) {
    dcache_.invalidate(dir.ino, parent.value().second, dir.fs_id);
    if (victim) {
      dcache_.invalidate_dir(victim.value().ino, victim.value().fs_id);
    }
  }
  return e;
}

Result<void> Vfs::unlink(std::string_view path) {
  auto parent = resolve_parent(path);
  if (!parent) return parent.error();
  const Loc& dir = parent.value().first;
  Errno e = dir.fs->unlink(dir.ino, parent.value().second);
  if (e == Errno::kOk) {
    dcache_.invalidate(dir.ino, parent.value().second, dir.fs_id);
  }
  return e;
}

Result<void> Vfs::link(std::string_view from, std::string_view to) {
  Result<Loc> target = resolve_loc(from);
  if (!target) return target.error();
  auto parent = resolve_parent(to);
  if (!parent) return parent.error();
  const Loc& dir = parent.value().first;
  if (dir.fs != target.value().fs) return Errno::kEXDEV;
  Errno e = dir.fs->link(dir.ino, parent.value().second, target.value().ino);
  if (e == Errno::kOk) {
    dcache_.insert(dir.ino, parent.value().second, target.value().ino,
                   dir.fs_id);
  }
  return e;
}

Result<void> Vfs::chmod(std::string_view path, std::uint32_t mode) {
  Result<Loc> loc = resolve_loc(path);
  if (!loc) return loc.error();
  return loc.value().fs->chmod(loc.value().ino, mode);
}

Result<void> Vfs::rename(std::string_view from, std::string_view to) {
  auto src = resolve_parent(from);
  if (!src) return src.error();
  auto dst = resolve_parent(to);
  if (!dst) return dst.error();
  if (src.value().first.fs != dst.value().first.fs) return Errno::kEXDEV;
  Errno e = src.value().first.fs->rename(
      src.value().first.ino, src.value().second, dst.value().first.ino,
      dst.value().second);
  if (e == Errno::kOk) {
    dcache_.invalidate(src.value().first.ino, src.value().second,
                       src.value().first.fs_id);
    dcache_.invalidate(dst.value().first.ino, dst.value().second,
                       dst.value().first.fs_id);
  }
  return e;
}

Result<void> Vfs::truncate(std::string_view path, std::uint64_t size) {
  Result<Loc> loc = resolve_loc(path);
  if (!loc) return loc.error();
  return loc.value().fs->truncate(loc.value().ino, size);
}

}  // namespace usk::fs
