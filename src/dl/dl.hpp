// kdl: end-to-end request deadlines, cooperative cancellation, and
// admission control under overload.
//
// The paper's crossing elimination makes the kernel-resident serving
// path cheap; kdl makes it *safe to saturate*. Three pieces:
//
//  1. Deadline propagation. A request picks up a dl::DeadlineScope at
//     ingress (webserver accept, ring chain submission, Cosy compound
//     entry). The scope rides the same thread-local mechanism as kspan
//     (trace::SpanScope): synchronous kernel work on the serving thread
//     sees it for free, with zero per-request allocation. The syscall
//     gateway (uk::Kernel::Scope) and every WaitQueue park consult it;
//     an expired request fails fast with ETIMEDOUT instead of consuming
//     kernel units it can no longer convert into goodput.
//
//  2. Cooperative cancellation. Scheduler::cancel(task) reuses PR 9's
//     kill/parked_on seq_cst handshake but leaves the task schedulable:
//     the flag unwinds the request through the same error paths a hard
//     failure would take (ring chain cancel cascade + fd rollback, Cosy
//     between-op abort, socket/epoll ECANCELED), so every resource the
//     request held is released by code that already existed and is
//     already tested. The DeadlineScope destructor clears the flag once
//     the unwind reaches ingress.
//
//  3. Admission control. dl::Admission bounds inflight requests and
//     sheds at ingress when the *estimated* queue delay -- inflight x a
//     percentile of the served-latency log2 histogram (the same
//     eBPF-style histogram ktrace uses) -- already exceeds the arriving
//     request's deadline budget. Clients hold per-tenant RetryBudgets
//     (exponential backoff, deterministic jitter); an exhausted budget
//     is the ksup hook that trips the tenant's breaker.
//
// Disarmed discipline (matches kspan/kfail/ksup): with kdl disabled,
// the gateway check is ONE relaxed atomic load and a predicted branch;
// DeadlineScope construction never touches the clock. bench_overload
// measures this against a null syscall (acceptance: <= 1%).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/errno.hpp"
#include "fault/kfail.hpp"
#include "sched/task.hpp"
#include "trace/histogram.hpp"

namespace usk::dl {

using Clock = std::chrono::steady_clock;

namespace detail {
/// Process-wide arming flag. Relaxed loads on every consult; exactness
/// during the enable/disable transition is not required (same contract
/// as trace::detail::g_span_enabled).
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// One relaxed load: the only cost kdl adds to a disarmed kernel.
inline bool dl_enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Process-wide kdl accounting, reported via /proc/dl and kmetrics.
struct DlStats {
  // Request lifecycle (DeadlineScope attach/retire).
  std::atomic<std::uint64_t> attached{0};
  std::atomic<std::uint64_t> completed{0};  ///< retired unexpired+uncanceled
  std::atomic<std::uint64_t> retired_expired{0};
  std::atomic<std::uint64_t> retired_canceled{0};
  std::atomic<std::int64_t> active{0};  ///< live DeadlineScopes

  // Fail-fast exits, by site.
  std::atomic<std::uint64_t> gateway_expired{0};   ///< Scope gate ETIMEDOUT
  std::atomic<std::uint64_t> gateway_canceled{0};  ///< Scope gate ECANCELED
  std::atomic<std::uint64_t> park_expired{0};      ///< timed park ETIMEDOUT
  std::atomic<std::uint64_t> park_canceled{0};     ///< park ECANCELED
  std::atomic<std::uint64_t> ring_aborts{0};  ///< chain cancel-on-deadline
  std::atomic<std::uint64_t> cosy_aborts{0};  ///< between-op compound abort

  // Admission.
  std::atomic<std::uint64_t> admits{0};
  std::atomic<std::uint64_t> sheds{0};

  // Client-side backpressure (sum over tenants).
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> budget_exhausted{0};

  // Fault injection observed by kdl.
  std::atomic<std::uint64_t> clock_skew_injected{0};
  std::atomic<std::uint64_t> spurious_wakes{0};
};

class RetryBudget;

/// Singleton owner of kdl state: the arming flag, global stats, the
/// served-latency histogram feeding admission estimates, and the tenant
/// registry behind /proc/dl/tenants.
class Kdl {
 public:
  static Kdl& instance();

  void set_enabled(bool on) { detail::g_enabled.store(on); }
  [[nodiscard]] bool enabled() const { return dl_enabled(); }

  DlStats& stats() { return stats_; }
  [[nodiscard]] const DlStats& stats() const { return stats_; }

  /// Wall latency of retired admitted requests (ns). Admission reads a
  /// percentile of this to estimate queue delay at ingress.
  trace::Histogram& service_hist() { return service_hist_; }

  /// Zero stats and the service histogram (tests, /proc reset write).
  void reset();

  // Tenant registry (RetryBudget self-registers for /proc rendering).
  void register_tenant(RetryBudget* t);
  void unregister_tenant(RetryBudget* t);

  /// /proc/dl/stats and /proc/dl/tenants bodies.
  [[nodiscard]] std::string format_stats() const;
  [[nodiscard]] std::string format_tenants() const;

 private:
  Kdl();
  DlStats stats_;
  trace::Histogram service_hist_;
  mutable std::mutex tenants_mu_;
  std::vector<RetryBudget*> tenants_;
};

/// RAII per-request deadline, stacked on a thread-local exactly like
/// trace::SpanScope. Construct at ingress with the request's budget and
/// the serving Task (nullable for non-task contexts); nested scopes
/// shadow the outer one (a sub-operation may run under a tighter
/// deadline). When kdl is disabled at construction the scope is inert:
/// no clock read, no stack push, no destructor work.
class DeadlineScope {
 public:
  DeadlineScope(std::chrono::nanoseconds budget, sched::Task* task = nullptr,
                std::uint32_t tenant = 0);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

  /// Innermost live scope on this thread (nullptr when none / disabled).
  static DeadlineScope* current();

  [[nodiscard]] Clock::time_point deadline() const { return deadline_; }
  [[nodiscard]] sched::Task* task() const { return task_; }
  [[nodiscard]] std::uint32_t tenant() const { return tenant_; }

  /// Nanoseconds until expiry (negative once past). kfail dl.clock_skew
  /// injects here: a hard fire reads a skewed clock that is already past
  /// the deadline.
  [[nodiscard]] std::int64_t remaining_ns() const;
  [[nodiscard]] bool expired() const { return remaining_ns() <= 0; }
  [[nodiscard]] bool canceled() const {
    return task_ != nullptr && task_->cancel_pending();
  }

 private:
  bool armed_;
  DeadlineScope* prev_ = nullptr;
  Clock::time_point start_{};
  Clock::time_point deadline_{};
  sched::Task* task_ = nullptr;
  std::uint32_t tenant_ = 0;
};

/// Raw deadline/cancel evaluation: pending cancel -> ECANCELED, expired
/// deadline -> ETIMEDOUT, else kOk. Cancel outranks expiry (the canceler
/// asked for a deterministic ECANCELED; the request unwinds either way).
/// No counters -- vehicles with their own abort accounting (ring chains,
/// Cosy compounds) call this directly.
Errno check(sched::Task* task);

/// Syscall-gateway wrapper around check(), called by uk::Kernel::Scope
/// only when dl_enabled(); ticks the gateway_expired/gateway_canceled
/// stats.
Errno gate_check(sched::Task* task);

/// Effective park deadline: min(caller-supplied user deadline, the
/// current dl deadline). Returns nullptr when neither applies, `storage`
/// when one does. `*dl_bound` is set when the dl deadline is the binding
/// one, so the caller can tell ETIMEDOUT (dl expiry) from the user
/// timeout's own semantics (e.g. epoll_wait returning 0).
const Clock::time_point* effective_deadline(const Clock::time_point* user,
                                            Clock::time_point* storage,
                                            bool* dl_bound);

/// kfail dl.spurious_wake hook for park loops: when it fires, the caller
/// should treat the park as spuriously woken -- skip the sleep and
/// re-check its wait condition. Wake-safe loops absorb this by
/// construction; the soak proves it.
bool spurious_wake();

/// Bounded, feasibility-checked ingress admission. One instance per
/// serving pool (the workload owns it); counters roll up into Kdl.
struct AdmissionConfig {
  std::size_t max_inflight = 64;  ///< hard inflight bound
  double percentile = 90.0;       ///< service-estimate percentile
  std::uint64_t min_service_ns = 1000;  ///< estimate floor (cold hist)
};

class Admission {
 public:
  explicit Admission(AdmissionConfig cfg = {}) : cfg_(cfg) {}

  /// Admit a request with `remaining_ns` of deadline budget left.
  /// Sheds (returns false) when the inflight bound is hit or the
  /// estimated queue delay -- (inflight + 1) x service estimate --
  /// already exceeds the budget: serving it would only produce a late
  /// response that still costs kernel units.
  bool try_admit(std::int64_t remaining_ns);

  /// Retire an admitted request that took `service_ns` end to end.
  void depart(std::uint64_t service_ns);

  [[nodiscard]] std::size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t service_estimate_ns() const;

 private:
  AdmissionConfig cfg_;
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> est_ns_{0};    ///< cached percentile
  std::atomic<std::uint64_t> departs_{0};   ///< refresh cadence counter
};

/// Client-side per-tenant retry budget: exponential backoff with
/// deterministic (seeded) jitter, a bounded number of consecutive
/// retries, and counters a supervisor hook can act on. The loadgen calls
/// on_reject() for every shed/expired response; `retry == false` means
/// the budget is exhausted -- drop the request and report the tenant
/// (workload wires this to sup::Supervisor::record_violation, tripping
/// the tenant's breaker).
struct RetryBudgetConfig {
  std::uint32_t budget = 3;  ///< max consecutive retries per request
  std::uint64_t base_backoff_ns = 200'000;
  double multiplier = 2.0;
  std::uint64_t max_backoff_ns = 10'000'000;
  std::uint64_t seed = 1;  ///< jitter stream seed (deterministic)
};

class RetryBudget {
 public:
  struct Decision {
    bool retry = false;
    std::uint64_t backoff_ns = 0;
  };

  RetryBudget(std::string name, RetryBudgetConfig cfg = {});
  ~RetryBudget();

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// A request attempt was shed or expired. Spends one budget token:
  /// retry=true with the jittered backoff while tokens remain, else
  /// retry=false (budget exhausted; caller drops and reports).
  Decision on_reject();

  /// A request attempt succeeded: the consecutive-failure streak resets.
  void on_success();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t budget() const { return cfg_.budget; }
  [[nodiscard]] std::uint32_t streak() const {
    return streak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t successes() const {
    return successes_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  RetryBudgetConfig cfg_;
  std::atomic<std::uint32_t> streak_{0};  ///< consecutive rejects
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  std::atomic<std::uint64_t> successes_{0};
  std::atomic<std::uint64_t> draws_{0};  ///< jitter stream position
};

}  // namespace usk::dl
