#include "dl/dl.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace usk::dl {

namespace {

thread_local DeadlineScope* t_current = nullptr;

/// SplitMix64 for retry-budget jitter: a pure function of (seed, draw#)
/// so backoff schedules replay exactly from the tenant seed, like kfail
/// decisions replay from USK_FAIL_SPEC's seed.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

// --- Kdl ---------------------------------------------------------------------

Kdl::Kdl() {
  if (const char* env = std::getenv("USK_DL");
      env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    set_enabled(true);
  }
}

Kdl& Kdl::instance() {
  static Kdl kdl;
  return kdl;
}

void Kdl::reset() {
  DlStats fresh;
  auto copy = [](std::atomic<std::uint64_t>& dst,
                 const std::atomic<std::uint64_t>& src) {
    dst.store(src.load(std::memory_order_relaxed), std::memory_order_relaxed);
  };
  copy(stats_.attached, fresh.attached);
  copy(stats_.completed, fresh.completed);
  copy(stats_.retired_expired, fresh.retired_expired);
  copy(stats_.retired_canceled, fresh.retired_canceled);
  copy(stats_.gateway_expired, fresh.gateway_expired);
  copy(stats_.gateway_canceled, fresh.gateway_canceled);
  copy(stats_.park_expired, fresh.park_expired);
  copy(stats_.park_canceled, fresh.park_canceled);
  copy(stats_.ring_aborts, fresh.ring_aborts);
  copy(stats_.cosy_aborts, fresh.cosy_aborts);
  copy(stats_.admits, fresh.admits);
  copy(stats_.sheds, fresh.sheds);
  copy(stats_.retries, fresh.retries);
  copy(stats_.budget_exhausted, fresh.budget_exhausted);
  copy(stats_.clock_skew_injected, fresh.clock_skew_injected);
  copy(stats_.spurious_wakes, fresh.spurious_wakes);
  stats_.active.store(0, std::memory_order_relaxed);
  service_hist_.reset();
}

void Kdl::register_tenant(RetryBudget* t) {
  std::lock_guard lk(tenants_mu_);
  tenants_.push_back(t);
}

void Kdl::unregister_tenant(RetryBudget* t) {
  std::lock_guard lk(tenants_mu_);
  tenants_.erase(std::remove(tenants_.begin(), tenants_.end(), t),
                 tenants_.end());
}

std::string Kdl::format_stats() const {
  auto ld = [](const std::atomic<std::uint64_t>& a) {
    return static_cast<unsigned long long>(a.load(std::memory_order_relaxed));
  };
  trace::HistogramSnapshot h = service_hist_.snapshot();
  char buf[1024];
  int n = std::snprintf(
      buf, sizeof buf,
      "enabled %d\n"
      "active %lld\n"
      "attached %llu\n"
      "completed %llu\n"
      "retired_expired %llu\n"
      "retired_canceled %llu\n"
      "gateway_expired %llu\n"
      "gateway_canceled %llu\n"
      "park_expired %llu\n"
      "park_canceled %llu\n"
      "ring_aborts %llu\n"
      "cosy_aborts %llu\n"
      "admits %llu\n"
      "sheds %llu\n"
      "retries %llu\n"
      "budget_exhausted %llu\n"
      "clock_skew_injected %llu\n"
      "spurious_wakes %llu\n"
      "service_p50_ns %llu\n"
      "service_p99_ns %llu\n"
      "service_count %llu\n",
      enabled() ? 1 : 0,
      static_cast<long long>(stats_.active.load(std::memory_order_relaxed)),
      ld(stats_.attached), ld(stats_.completed), ld(stats_.retired_expired),
      ld(stats_.retired_canceled), ld(stats_.gateway_expired),
      ld(stats_.gateway_canceled), ld(stats_.park_expired),
      ld(stats_.park_canceled), ld(stats_.ring_aborts), ld(stats_.cosy_aborts),
      ld(stats_.admits), ld(stats_.sheds), ld(stats_.retries),
      ld(stats_.budget_exhausted), ld(stats_.clock_skew_injected),
      ld(stats_.spurious_wakes),
      static_cast<unsigned long long>(h.percentile(50)),
      static_cast<unsigned long long>(h.percentile(99)),
      static_cast<unsigned long long>(h.count));
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

std::string Kdl::format_tenants() const {
  std::string out = "tenant budget streak retries exhausted successes\n";
  std::lock_guard lk(tenants_mu_);
  for (const RetryBudget* t : tenants_) {
    char line[192];
    int n = std::snprintf(
        line, sizeof line, "%-12s %6u %6u %7llu %9llu %9llu\n",
        t->name().c_str(), t->budget(), t->streak(),
        static_cast<unsigned long long>(t->retries()),
        static_cast<unsigned long long>(t->exhausted()),
        static_cast<unsigned long long>(t->successes()));
    if (n > 0) out.append(line, static_cast<std::size_t>(n));
  }
  return out;
}

// --- DeadlineScope -----------------------------------------------------------

DeadlineScope::DeadlineScope(std::chrono::nanoseconds budget,
                             sched::Task* task, std::uint32_t tenant)
    : armed_(dl_enabled()) {
  if (!armed_) return;
  start_ = Clock::now();
  deadline_ = start_ + budget;
  task_ = task;
  tenant_ = tenant;
  prev_ = t_current;
  t_current = this;
  DlStats& st = Kdl::instance().stats();
  st.attached.fetch_add(1, std::memory_order_relaxed);
  st.active.fetch_add(1, std::memory_order_relaxed);
}

DeadlineScope::~DeadlineScope() {
  if (!armed_) return;
  t_current = prev_;
  Kdl& kdl = Kdl::instance();
  DlStats& st = kdl.stats();
  st.active.fetch_sub(1, std::memory_order_relaxed);
  // The unwind is over: a pending cancel must not leak into the serving
  // thread's next request.
  bool was_canceled = false;
  if (task_ != nullptr && task_->cancel_pending()) {
    was_canceled = true;
    task_->set_cancel_pending(false);
  }
  // Retirement accounting only: the service histogram is fed by
  // Admission::depart (admitted requests), so shed or expired scopes --
  // which retire in microseconds -- cannot drag the admission estimate
  // toward zero and make it admit everything.
  Clock::time_point end = Clock::now();
  if (was_canceled) {
    st.retired_canceled.fetch_add(1, std::memory_order_relaxed);
  } else if (end >= deadline_) {
    st.retired_expired.fetch_add(1, std::memory_order_relaxed);
  } else {
    st.completed.fetch_add(1, std::memory_order_relaxed);
  }
}

DeadlineScope* DeadlineScope::current() { return t_current; }

std::int64_t DeadlineScope::remaining_ns() const {
  if (auto f = USK_FAIL_POINT(fault::Site::kDlClockSkew); f.fail) {
    // A skewed clock read lands past the deadline: the request expires
    // spuriously. Callers must unwind leak-free exactly as for a real
    // expiry -- that symmetry is what the soak checks.
    Kdl::instance().stats().clock_skew_injected.fetch_add(
        1, std::memory_order_relaxed);
    return -1;
  } else if (f.transient) {
    // Recovered skew: the sanity re-read costs one extra now().
    (void)Clock::now();
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(deadline_ -
                                                              Clock::now())
      .count();
}

// --- free helpers ------------------------------------------------------------

Errno check(sched::Task* task) {
  if (task != nullptr && task->cancel_pending()) return Errno::kECANCELED;
  if (DeadlineScope* ds = DeadlineScope::current();
      ds != nullptr && ds->expired()) {
    return Errno::kETIMEDOUT;
  }
  return Errno::kOk;
}

Errno gate_check(sched::Task* task) {
  Errno e = check(task);
  if (e == Errno::kECANCELED) {
    Kdl::instance().stats().gateway_canceled.fetch_add(
        1, std::memory_order_relaxed);
  } else if (e == Errno::kETIMEDOUT) {
    Kdl::instance().stats().gateway_expired.fetch_add(
        1, std::memory_order_relaxed);
  }
  return e;
}

const Clock::time_point* effective_deadline(const Clock::time_point* user,
                                            Clock::time_point* storage,
                                            bool* dl_bound) {
  *dl_bound = false;
  if (!dl_enabled()) return user;
  DeadlineScope* ds = DeadlineScope::current();
  if (ds == nullptr) return user;
  if (user == nullptr || ds->deadline() < *user) {
    *storage = ds->deadline();
    *dl_bound = true;
    return storage;
  }
  return user;
}

bool spurious_wake() {
  auto f = USK_FAIL_POINT(fault::Site::kDlSpuriousWake);
  if (f.fail || f.transient) {
    Kdl::instance().stats().spurious_wakes.fetch_add(
        1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

// --- Admission ---------------------------------------------------------------

std::uint64_t Admission::service_estimate_ns() const {
  std::uint64_t est = est_ns_.load(std::memory_order_relaxed);
  return std::max(est, cfg_.min_service_ns);
}

bool Admission::try_admit(std::int64_t remaining_ns) {
  DlStats& st = Kdl::instance().stats();
  std::size_t cur = inflight_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur >= cfg_.max_inflight) break;
    // Feasibility: this request waits behind ~cur peers, then needs one
    // service time itself. If that already exceeds its remaining budget,
    // serving it buys a late answer at full kernel cost -- shed now,
    // while the only thing invested is one accept.
    std::uint64_t est = service_estimate_ns();
    std::uint64_t queue_delay = est * (static_cast<std::uint64_t>(cur) + 1);
    if (remaining_ns <= 0 ||
        queue_delay > static_cast<std::uint64_t>(remaining_ns)) {
      break;
    }
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_relaxed)) {
      st.admits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  st.sheds.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Admission::depart(std::uint64_t service_ns) {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  Kdl::instance().service_hist().record(service_ns);
  // Refresh the cached percentile off the per-request path: snapshotting
  // 44 buckets every departure would put a loop in the serving loop.
  std::uint64_t n = departs_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % 32 == 1) {
    est_ns_.store(
        Kdl::instance().service_hist().snapshot().percentile(cfg_.percentile),
        std::memory_order_relaxed);
  }
}

// --- RetryBudget -------------------------------------------------------------

RetryBudget::RetryBudget(std::string name, RetryBudgetConfig cfg)
    : name_(std::move(name)), cfg_(cfg) {
  Kdl::instance().register_tenant(this);
}

RetryBudget::~RetryBudget() { Kdl::instance().unregister_tenant(this); }

RetryBudget::Decision RetryBudget::on_reject() {
  std::uint32_t streak = streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak > cfg_.budget) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
    Kdl::instance().stats().budget_exhausted.fetch_add(
        1, std::memory_order_relaxed);
    streak_.store(0, std::memory_order_relaxed);  // next request starts fresh
    return {false, 0};
  }
  retries_.fetch_add(1, std::memory_order_relaxed);
  Kdl::instance().stats().retries.fetch_add(1, std::memory_order_relaxed);
  // Exponential backoff with full deterministic jitter: uniform in
  // (cap/2, cap] where cap doubles per consecutive reject. Jitter
  // decorrelates tenants that were rejected in the same shed burst so
  // their retries do not arrive as a synchronized second burst.
  double cap = static_cast<double>(cfg_.base_backoff_ns);
  for (std::uint32_t i = 1; i < streak; ++i) cap *= cfg_.multiplier;
  cap = std::min(cap, static_cast<double>(cfg_.max_backoff_ns));
  std::uint64_t draw = draws_.fetch_add(1, std::memory_order_relaxed);
  double u = static_cast<double>(splitmix64(cfg_.seed ^ draw) >> 11) *
             (1.0 / 9007199254740992.0);
  auto backoff = static_cast<std::uint64_t>(cap * (0.5 + 0.5 * u));
  return {true, backoff};
}

void RetryBudget::on_success() {
  successes_.fetch_add(1, std::memory_order_relaxed);
  streak_.store(0, std::memory_order_relaxed);
}

}  // namespace usk::dl
