// Deterministic busy-work engine.
//
// The simulator charges costs (context switches, disk seeks, interrupt
// delivery) by *executing real work*, never by sleeping, so benchmark deltas
// are genuine CPU measurements. One work unit is a fixed short ALU chain;
// cache_touch work additionally strides through a scratch buffer to model
// the cache/TLB pollution a real kernel entry causes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace usk::base {

class WorkEngine {
 public:
  WorkEngine() {
    for (auto& w : scratch_) w.store(1, std::memory_order_relaxed);
  }

  /// Execute `units` of pure ALU work.
  void alu(std::uint64_t units) {
    std::uint64_t x = seed_;
    for (std::uint64_t i = 0; i < units; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    sink(x);
  }

  /// Execute `units` of cache-touching work (one line per unit). The
  /// scratch increments are relaxed atomics so concurrent syscall
  /// dispatchers (SMP mode) still generate real shared-cache traffic
  /// without a data race.
  void cache_touch(std::uint64_t units) {
    std::uint64_t x = seed_;
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < units; ++i) {
      // Stride by a cache line; the xorshift makes the pattern
      // non-prefetchable, approximating TLB/cache refill costs.
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      acc += scratch_[(x >> 6) % scratch_.size()].fetch_add(
          1, std::memory_order_relaxed);
    }
    sink(acc);
  }

  /// Total units ever executed (for accounting assertions in tests).
  [[nodiscard]] std::uint64_t total_units() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  void sink(std::uint64_t v) {
    // Publish through an atomic so the optimizer cannot delete the loop.
    total_.fetch_add(1 + (v & 1), std::memory_order_relaxed);
  }

  static constexpr std::size_t kScratchWords = 1 << 15;  // 256 KiB of u64
  std::uint64_t seed_ = 0x853C49E6748FEA9Bull;
  std::atomic<std::uint64_t> total_{0};
  alignas(64) std::array<std::atomic<std::uint64_t>, kScratchWords> scratch_{};
};

}  // namespace usk::base
