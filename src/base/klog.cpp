#include "base/klog.hpp"

#include <cstdarg>
#include <cstdio>

namespace usk::base {

void KLog::log(LogLevel level, std::string message) {
  if (level < min_level()) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard lk(mu_);
  ring_.push_back(LogEntry{level, std::move(message), seq_++});
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<LogEntry> KLog::entries() const {
  std::lock_guard lk(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<LogEntry> KLog::entries_at_least(LogLevel level) const {
  std::lock_guard lk(mu_);
  std::vector<LogEntry> out;
  for (const auto& e : ring_) {
    if (e.level >= level) out.push_back(e);
  }
  return out;
}

std::uint64_t KLog::total_logged() const {
  std::lock_guard lk(mu_);
  return seq_;
}

bool KLog::contains(std::string_view needle) const {
  std::lock_guard lk(mu_);
  for (const auto& e : ring_) {
    if (e.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

void KLog::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
}

KLog& klog() {
  static KLog instance;
  return instance;
}

void klogf(LogLevel level, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  klog().log(level, buf);
}

}  // namespace usk::base
