#include "base/klog.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace usk::base {

void KLog::log(LogLevel level, std::string message) {
  if (level < min_level()) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard lk(mu_);
  ring_.push_back(LogEntry{level, std::move(message), seq_++});
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<LogEntry> KLog::entries() const {
  std::lock_guard lk(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<LogEntry> KLog::entries_at_least(LogLevel level) const {
  std::lock_guard lk(mu_);
  std::vector<LogEntry> out;
  for (const auto& e : ring_) {
    if (e.level >= level) out.push_back(e);
  }
  return out;
}

std::uint64_t KLog::total_logged() const {
  std::lock_guard lk(mu_);
  return seq_;
}

bool KLog::contains(std::string_view needle) const {
  std::lock_guard lk(mu_);
  for (const auto& e : ring_) {
    if (e.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

void KLog::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
}

RateLimit& RateLimitRegistry::site(std::string_view name,
                                   std::uint32_t burst,
                                   std::uint64_t interval_ns) {
  std::lock_guard lk(mu_);
  for (auto& [n, rl] : sites_) {
    if (n == name) return *rl;
  }
  sites_.emplace_back(std::string(name),
                      std::make_unique<RateLimit>(burst, interval_ns));
  return *sites_.back().second;
}

std::vector<RateLimitRegistry::SiteReport> RateLimitRegistry::report() const {
  std::vector<SiteReport> out;
  {
    std::lock_guard lk(mu_);
    out.reserve(sites_.size());
    for (const auto& [n, rl] : sites_) {
      out.push_back(SiteReport{n, rl->suppressed()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SiteReport& a, const SiteReport& b) {
              return a.name < b.name;
            });
  return out;
}

RateLimitRegistry& klog_ratelimits() {
  static RateLimitRegistry instance;
  return instance;
}

KLog& klog() {
  static KLog instance;
  return instance;
}

void klogf(LogLevel level, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  klog().log(level, buf);
}

}  // namespace usk::base
