// base::Result<T>: the kernel's std::expected-style error carrier.
//
// Every internal kernel interface (the FileSystem operations table, the
// VFS, the boundary copy routines) returns Result<T> -- either a value or
// an Errno -- instead of sentinel ints. The Linux-style SysRet (negative
// errno packed into a signed word) survives only at the syscall boundary,
// where to_sysret() converts in exactly one place (the syscall gateway).
//
// Result<void> is the replacement for bare `Errno` returns: an operation
// that yields no value but can fail. For migration ergonomics it
// interoperates with Errno in both directions -- constructing from
// Errno::kOk produces success (so `return Errno::kOk;` bodies compile
// unchanged) and it converts back to Errno for legacy `== Errno::kOk`
// comparisons -- while new code uses ok()/error() and USK_TRY.
#pragma once

#include <cstdint>
#include <utility>
#include <variant>

namespace usk {

enum class Errno : std::int32_t;  // defined in base/errno.hpp

namespace base {

/// Result<T>: either a value or an Errno. Modeled after kernel ERR_PTR
/// usage but type-safe. `T` must be cheap to move.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Errno e) : v_(e) {}                 // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] Errno error() const {
    return ok() ? Errno{0} : std::get<Errno>(v_);
  }

  [[nodiscard]] T& value() & { return std::get<T>(v_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(v_)); }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  /// Monadic chain: apply `f` (T -> Result<U>) when ok, else forward the
  /// error. Keeps multi-step resource-acquisition paths linear.
  template <typename F>
  auto and_then(F&& f) const& -> decltype(f(std::declval<const T&>())) {
    if (!ok()) return error();
    return std::forward<F>(f)(std::get<T>(v_));
  }

  /// Map the value through `f` (T -> U), forwarding errors.
  template <typename F>
  auto transform(F&& f) const& -> Result<decltype(f(std::declval<const T&>()))> {
    if (!ok()) return error();
    return std::forward<F>(f)(std::get<T>(v_));
  }

 private:
  std::variant<T, Errno> v_;
};

/// Result<void>: success or an Errno; the typed replacement for bare
/// Errno returns. Errno::kOk converts to success in both directions so
/// the migration is source-compatible at nearly every call site.
template <>
class Result<void> {
 public:
  Result() = default;               ///< success
  Result(Errno e) : e_(e) {}        // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return e_ == Errno{0}; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] Errno error() const { return e_; }
  /// Legacy interop: `Errno e = fs.sync();`, `r == Errno::kOk`.
  operator Errno() const { return e_; }  // NOLINT(google-explicit-constructor)

  /// Chain: run `f` (-> Result<U>) when ok, else forward the error.
  template <typename F>
  auto and_then(F&& f) const -> decltype(f()) {
    if (!ok()) return e_;
    return std::forward<F>(f)();
  }

 private:
  Errno e_{0};
};

}  // namespace base

/// Propagate-on-error: evaluate `expr` (a Result), return its error from
/// the enclosing Result-returning function if it failed.
#define USK_TRY(expr)                            \
  do {                                           \
    if (auto _usk_r = (expr); !_usk_r.ok()) {    \
      return _usk_r.error();                     \
    }                                            \
  } while (0)

}  // namespace usk
