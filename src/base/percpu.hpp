// Per-CPU data for the simulated SMP kernel.
//
// Real kernels index per-CPU state by smp_processor_id(); our "CPUs" are
// host threads. A thread acquires a CPU slot the first time it asks and
// keeps it until it exits, when the slot is recycled, so at most one
// thread writes a given PerCpu slot at any moment. Readers that merge
// slots (stats aggregation, audit-log drains) must therefore run at a
// quiescent point -- after workers joined -- exactly like a real kernel
// summing per-CPU counters. Slots are cache-line aligned so neighbouring
// CPUs never false-share.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <vector>

namespace usk::base {

/// Maximum simultaneously live simulated CPUs. More live threads than
/// this wrap around and share slots; the simulation never runs that wide.
inline constexpr std::size_t kMaxCpus = 64;

namespace detail {

/// Hands out CPU ids and recycles them when threads exit.
class CpuIdPool {
 public:
  static CpuIdPool& instance() {
    static CpuIdPool p;
    return p;
  }

  std::size_t acquire() {
    std::lock_guard lk(mu_);
    if (!free_.empty()) {
      std::size_t id = free_.back();
      free_.pop_back();
      return id;
    }
    return next_++ % kMaxCpus;
  }

  void release(std::size_t id) {
    std::lock_guard lk(mu_);
    free_.push_back(id);
  }

 private:
  std::mutex mu_;
  std::vector<std::size_t> free_;
  std::size_t next_ = 0;
};

struct CpuSlotHolder {
  std::size_t id = CpuIdPool::instance().acquire();
  CpuSlotHolder() = default;
  CpuSlotHolder(const CpuSlotHolder&) = delete;
  CpuSlotHolder& operator=(const CpuSlotHolder&) = delete;
  ~CpuSlotHolder() { CpuIdPool::instance().release(id); }
};

}  // namespace detail

/// The calling thread's CPU number (smp_processor_id analogue).
inline std::size_t current_cpu() {
  thread_local detail::CpuSlotHolder slot;
  return slot.id;
}

/// Fixed array of per-CPU values, one cache line each.
template <class T>
class PerCpu {
 public:
  [[nodiscard]] T& local() { return slot(current_cpu()); }
  [[nodiscard]] T& slot(std::size_t cpu) { return slots_[cpu % kMaxCpus].value; }
  [[nodiscard]] const T& slot(std::size_t cpu) const {
    return slots_[cpu % kMaxCpus].value;
  }
  [[nodiscard]] static constexpr std::size_t size() { return kMaxCpus; }

  /// Visit every slot (merge stats, drain buffers, reset counters).
  template <class Fn>
  void for_each(Fn&& fn) {
    for (auto& s : slots_) fn(s.value);
  }
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_) fn(s.value);
  }

 private:
  struct alignas(64) Slot {
    T value{};
  };
  std::array<Slot, kMaxCpus> slots_{};
};

}  // namespace usk::base
