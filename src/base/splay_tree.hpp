// Bottom-up splay tree keyed by 64-bit addresses.
//
// This is the data structure the BCC/KGCC runtime uses for its object map
// (paper §3.4: "the BCC runtime ... maintains a map of currently allocated
// memory in a splay tree; the tree is consulted before any memory
// operation"). Splaying brings the most recently touched object to the
// root, which is near-optimal under the reference locality typical of
// single-threaded code -- and measurably *worse* under multi-threaded
// interleavings, which bench_splay_mt quantifies.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

namespace usk::base {

struct SplayStats {
  std::uint64_t finds = 0;
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t rotations = 0;
};

template <typename V>
class SplayTree {
 public:
  SplayTree() = default;
  ~SplayTree() { clear(); }

  SplayTree(const SplayTree&) = delete;
  SplayTree& operator=(const SplayTree&) = delete;

  /// Insert or overwrite the value at `key`. Splays the node to the root.
  void insert(std::uint64_t key, V value) {
    ++stats_.inserts;
    Node* n = do_find(key);
    if (n != nullptr && n->key == key) {
      n->value = std::move(value);
      return;
    }
    auto* node = new Node{key, std::move(value), nullptr, nullptr, nullptr};
    if (root_ == nullptr) {
      root_ = node;
    } else {
      // After do_find, root_ is the last node on the search path.
      Node* p = root_;
      if (key < p->key) {
        node->left = p->left;
        if (node->left) node->left->parent = node;
        node->right = p;
        p->left = nullptr;
      } else {
        node->right = p->right;
        if (node->right) node->right->parent = node;
        node->left = p;
        p->right = nullptr;
      }
      p->parent = node;
      root_ = node;
    }
    ++size_;
  }

  /// Exact lookup; splays the found node (or the last touched node).
  V* find(std::uint64_t key) {
    ++stats_.finds;
    Node* n = do_find(key);
    return (n != nullptr && n->key == key) ? &n->value : nullptr;
  }

  /// Greatest entry with key <= `key`, or nullptr. Splays.
  std::pair<std::uint64_t, V*> floor(std::uint64_t key) {
    ++stats_.finds;
    Node* n = do_find(key);
    if (n == nullptr) return {0, nullptr};
    if (n->key <= key) return {n->key, &n->value};
    // Root is the successor; predecessor is the max of its left subtree.
    Node* p = root_->left;
    while (p != nullptr && p->right != nullptr) p = p->right;
    if (p == nullptr) return {0, nullptr};
    splay(p);
    return {p->key, &p->value};
  }

  /// Remove `key`; returns true if it was present.
  bool erase(std::uint64_t key) {
    ++stats_.erases;
    Node* n = do_find(key);
    if (n == nullptr || n->key != key) return false;
    // n is now the root.
    Node* l = n->left;
    Node* r = n->right;
    if (l != nullptr) l->parent = nullptr;
    if (r != nullptr) r->parent = nullptr;
    delete n;
    --size_;
    if (l == nullptr) {
      root_ = r;
    } else {
      // Splay max of left subtree, then attach right subtree.
      Node* m = l;
      while (m->right != nullptr) m = m->right;
      root_ = l;
      splay(m);
      assert(root_ == m && m->right == nullptr);
      m->right = r;
      if (r != nullptr) r->parent = m;
    }
    return true;
  }

  /// In-order traversal.
  void for_each(const std::function<void(std::uint64_t, const V&)>& fn) const {
    walk(root_, fn);
  }

  void clear() {
    destroy(root_);
    root_ = nullptr;
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const SplayStats& stats() const { return stats_; }

  /// Depth of `key`'s node from the root WITHOUT splaying (locality probe).
  [[nodiscard]] int depth_of(std::uint64_t key) const {
    int d = 0;
    for (Node* n = root_; n != nullptr; ++d) {
      if (key == n->key) return d;
      n = key < n->key ? n->left : n->right;
    }
    return -1;
  }

 private:
  struct Node {
    std::uint64_t key;
    V value;
    Node* left;
    Node* right;
    Node* parent;
  };

  void rotate(Node* x) {
    Node* p = x->parent;
    Node* g = p->parent;
    ++stats_.rotations;
    if (p->left == x) {
      p->left = x->right;
      if (x->right) x->right->parent = p;
      x->right = p;
    } else {
      p->right = x->left;
      if (x->left) x->left->parent = p;
      x->left = p;
    }
    p->parent = x;
    x->parent = g;
    if (g != nullptr) {
      (g->left == p ? g->left : g->right) = x;
    } else {
      root_ = x;
    }
  }

  void splay(Node* x) {
    while (x->parent != nullptr) {
      Node* p = x->parent;
      Node* g = p->parent;
      if (g == nullptr) {
        rotate(x);  // zig
      } else if ((g->left == p) == (p->left == x)) {
        rotate(p);  // zig-zig
        rotate(x);
      } else {
        rotate(x);  // zig-zag
        rotate(x);
      }
    }
  }

  /// Search for key; splay the last node on the path; return exact match or
  /// that last node (caller checks key).
  Node* do_find(std::uint64_t key) {
    Node* n = root_;
    Node* last = nullptr;
    while (n != nullptr) {
      last = n;
      if (key == n->key) break;
      n = key < n->key ? n->left : n->right;
    }
    if (last != nullptr) splay(last);
    return last;
  }

  static void walk(const Node* n,
                   const std::function<void(std::uint64_t, const V&)>& fn) {
    if (n == nullptr) return;
    walk(n->left, fn);
    fn(n->key, n->value);
    walk(n->right, fn);
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left);
    destroy(n->right);
    delete n;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  SplayStats stats_;
};

}  // namespace usk::base
