// Lock-free bounded MPMC ring, generalised from the event-monitor ring so
// every kernel-to-user data stream (evmon events, ktrace records) shares
// one verified implementation.
//
// Vyukov-style bounded queue with per-slot sequence numbers. Producers
// never block; when the ring is full the element is dropped and counted,
// which is the only interrupt-safe policy (paper §3.3: "Because the ring
// buffer is lock-free, we can instrument code that is invoked during
// interrupt handlers without fear that the interrupt handler will block").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace usk::base {

template <class T>
class MpmcRing {
 public:
  /// `capacity` must be a power of two.
  explicit MpmcRing(std::size_t capacity = 1 << 14)
      : mask_(capacity - 1), slots_(std::make_unique<Slot[]>(capacity)) {
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Producer side (any context, never blocks). Returns false on full.
  bool push(const T& e) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = e;
          slot.seq.store(pos + 1, std::memory_order_release);
          pushed_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else if (diff < 0) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side. Returns false when empty.
  bool pop(T* out) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      std::int64_t diff = static_cast<std::int64_t>(seq) -
                          static_cast<std::int64_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          *out = slot.value;
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          popped_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Bulk drain (what libkernevents uses to amortize crossings).
  std::size_t pop_bulk(T* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && pop(&out[n])) ++n;
    return n;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  [[nodiscard]] std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const {
    return popped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const {
    return popped_.load(std::memory_order_relaxed) ==
           pushed_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> popped_{0};
};

}  // namespace usk::base
