// Simulated kernel synchronization objects with instrumentation hooks.
//
// Every spinlock acquire/release, refcount inc/dec, and semaphore down/up
// can fire a globally registered hook. The event-monitoring framework
// (src/evmon) registers its dispatcher here; when no hook is registered the
// cost is one relaxed atomic load and a predictable branch, which is what
// lets the paper's instrumentation run at a few percent overhead (§3.3).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

namespace usk::base {

/// Event kinds fired by the sync primitives. Values match what an
/// evmon::EventType encodes.
enum class SyncEvent : int {
  kSpinLock = 1,
  kSpinUnlock = 2,
  kRefInc = 3,
  kRefDec = 4,
  kSemDown = 5,
  kSemUp = 6,
  kIrqDisable = 7,
  kIrqEnable = 8,
};

/// Hook signature: the affected kernel object, the event, and the source
/// location that triggered it (paper §3.3: each event records a void*, an
/// event-type integer, and file/line).
using SyncHookFn = void (*)(void* ctx, void* object, SyncEvent ev,
                            const char* file, int line);

/// Global hook registry. A single hook keeps the disabled-path cost at one
/// relaxed load; evmon's dispatcher fans out to many callbacks itself.
class SyncHooks {
 public:
  static void set(SyncHookFn fn, void* ctx) {
    instance().ctx_.store(ctx, std::memory_order_relaxed);
    instance().fn_.store(fn, std::memory_order_release);
  }

  static void reset() { set(nullptr, nullptr); }

  static bool enabled() {
    return instance().fn_.load(std::memory_order_relaxed) != nullptr;
  }

  static void fire(void* object, SyncEvent ev, const char* file, int line) {
    SyncHookFn fn = instance().fn_.load(std::memory_order_acquire);
    if (fn != nullptr) {
      fn(instance().ctx_.load(std::memory_order_relaxed), object, ev, file,
         line);
    }
  }

 private:
  static SyncHooks& instance() {
    static SyncHooks h;
    return h;
  }
  std::atomic<SyncHookFn> fn_{nullptr};
  std::atomic<void*> ctx_{nullptr};
};

/// Spinlock analogous to Linux's spinlock_t (e.g., the dcache_lock the
/// paper instruments). Named so monitors can report which lock misbehaved.
class SpinLock {
 public:
  explicit SpinLock(std::string name = "lock") : name_(std::move(name)) {}

  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock(const char* file = "?", int line = 0) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      contended_.fetch_add(1, std::memory_order_relaxed);
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kSpinLock, file, line);
  }

  void unlock(const char* file = "?", int line = 0) {
    SyncHooks::fire(this, SyncEvent::kSpinUnlock, file, line);
    flag_.clear(std::memory_order_release);
  }

  [[nodiscard]] bool try_lock(const char* file = "?", int line = 0) {
    if (flag_.test_and_set(std::memory_order_acquire)) return false;
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kSpinLock, file, line);
    return true;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t contended_spins() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::string name_;
};

/// RAII guard recording the acquire site.
class SpinGuard {
 public:
  SpinGuard(SpinLock& l, const char* file = "?", int line = 0)
      : l_(l), file_(file), line_(line) {
    l_.lock(file_, line_);
  }
  ~SpinGuard() { l_.unlock(file_, line_); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& l_;
  const char* file_;
  int line_;
};

#define USK_SPIN_GUARD(l) ::usk::base::SpinGuard guard_##__LINE__((l), __FILE__, __LINE__)
#define USK_LOCK(l) (l).lock(__FILE__, __LINE__)
#define USK_UNLOCK(l) (l).unlock(__FILE__, __LINE__)

/// Reference counter analogous to kref. The paper's monitors verify that
/// increments and decrements are symmetric (§3).
class RefCount {
 public:
  explicit RefCount(std::int64_t initial = 1) : count_(initial) {}

  void inc(const char* file = "?", int line = 0) {
    count_.fetch_add(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kRefInc, file, line);
  }

  /// Returns true when the count hit zero (object should be freed).
  bool dec(const char* file = "?", int line = 0) {
    std::int64_t v = count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    SyncHooks::fire(this, SyncEvent::kRefDec, file, line);
    return v == 0;
  }

  [[nodiscard]] std::int64_t value() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_;
};

#define USK_REF_INC(r) (r).inc(__FILE__, __LINE__)
#define USK_REF_DEC(r) (r).dec(__FILE__, __LINE__)

/// Counting semaphore with the same hook protocol.
class Semaphore {
 public:
  explicit Semaphore(int initial = 1) : count_(initial) {}

  void down(const char* file = "?", int line = 0) {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return count_ > 0; });
    --count_;
    SyncHooks::fire(this, SyncEvent::kSemDown, file, line);
  }

  void up(const char* file = "?", int line = 0) {
    {
      std::lock_guard lk(mu_);
      ++count_;
    }
    SyncHooks::fire(this, SyncEvent::kSemUp, file, line);
    cv_.notify_one();
  }

  [[nodiscard]] int value() const {
    std::lock_guard lk(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// Simulated IRQ state for the "interrupts disabled are later re-enabled"
/// invariant the paper lists.
class IrqState {
 public:
  void disable(const char* file = "?", int line = 0) {
    depth_.fetch_add(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kIrqDisable, file, line);
  }
  void enable(const char* file = "?", int line = 0) {
    depth_.fetch_sub(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kIrqEnable, file, line);
  }
  [[nodiscard]] int depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> depth_{0};
};

}  // namespace usk::base
