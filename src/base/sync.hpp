// Simulated kernel synchronization objects with instrumentation hooks.
//
// Every spinlock acquire/release, refcount inc/dec, and semaphore down/up
// can fire a globally registered hook. The event-monitoring framework
// (src/evmon) registers its dispatcher here; when no hook is registered the
// cost is one relaxed atomic load and a predictable branch, which is what
// lets the paper's instrumentation run at a few percent overhead (§3.3).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

namespace usk::base {

/// Event kinds fired by the sync primitives. Values match what an
/// evmon::EventType encodes.
enum class SyncEvent : int {
  kSpinLock = 1,
  kSpinUnlock = 2,
  kRefInc = 3,
  kRefDec = 4,
  kSemDown = 5,
  kSemUp = 6,
  kIrqDisable = 7,
  kIrqEnable = 8,
};

/// Hook signature: the affected kernel object, the event, and the source
/// location that triggered it (paper §3.3: each event records a void*, an
/// event-type integer, and file/line).
using SyncHookFn = void (*)(void* ctx, void* object, SyncEvent ev,
                            const char* file, int line);

/// Global hook registry. A single hook keeps the disabled-path cost at one
/// relaxed load; evmon's dispatcher fans out to many callbacks itself.
class SyncHooks {
 public:
  static void set(SyncHookFn fn, void* ctx) {
    instance().ctx_.store(ctx, std::memory_order_relaxed);
    instance().fn_.store(fn, std::memory_order_release);
  }

  static void reset() { set(nullptr, nullptr); }

  static bool enabled() {
    return instance().fn_.load(std::memory_order_relaxed) != nullptr;
  }

  static void fire(void* object, SyncEvent ev, const char* file, int line) {
    SyncHookFn fn = instance().fn_.load(std::memory_order_acquire);
    if (fn != nullptr) {
      fn(instance().ctx_.load(std::memory_order_relaxed), object, ev, file,
         line);
    }
  }

 private:
  static SyncHooks& instance() {
    static SyncHooks h;
    return h;
  }
  std::atomic<SyncHookFn> fn_{nullptr};
  std::atomic<void*> ctx_{nullptr};
};

/// Spinlock analogous to Linux's spinlock_t (e.g., the dcache_lock the
/// paper instruments). Named so monitors can report which lock misbehaved.
class SpinLock {
 public:
  explicit SpinLock(std::string name = "lock") : name_(std::move(name)) {}

  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock(const char* file = "?", int line = 0) {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      if (++spins >= kSpinsBeforeYield) {
        // A real kernel spinlock holder has preemption disabled and keeps
        // running on its own CPU, so waits are bounded by the critical
        // section. On an oversubscribed host the holder may be descheduled
        // mid-hold; yielding donates the waiter's timeslice to it, keeping
        // the wait proportional to the critical section instead of the OS
        // scheduling quantum. Uncontended and short waits never yield.
        std::this_thread::yield();
        spins = 0;
      } else {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kSpinLock, file, line);
  }

  void unlock(const char* file = "?", int line = 0) {
    SyncHooks::fire(this, SyncEvent::kSpinUnlock, file, line);
    flag_.clear(std::memory_order_release);
  }

  [[nodiscard]] bool try_lock(const char* file = "?", int line = 0) {
    if (flag_.test_and_set(std::memory_order_acquire)) return false;
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kSpinLock, file, line);
    return true;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t contended_spins() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kSpinsBeforeYield = 64;

  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::string name_;
};

/// RAII guard recording the acquire site.
class SpinGuard {
 public:
  SpinGuard(SpinLock& l, const char* file = "?", int line = 0)
      : l_(l), file_(file), line_(line) {
    l_.lock(file_, line_);
  }
  ~SpinGuard() { l_.unlock(file_, line_); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& l_;
  const char* file_;
  int line_;
};

#define USK_SPIN_GUARD(l) ::usk::base::SpinGuard guard_##__LINE__((l), __FILE__, __LINE__)
#define USK_LOCK(l) (l).lock(__FILE__, __LINE__)
#define USK_UNLOCK(l) (l).unlock(__FILE__, __LINE__)

/// A named bank of SpinLocks covering a hash-partitioned structure (the
/// SMP fix for the paper's contended global dcache_lock, §3.3). Every
/// shard is a full instrumented SpinLock -- evmon monitors see per-shard
/// lock/unlock events exactly as they saw the global lock's -- and
/// shards==1 degenerates to the classic single global lock so the paper's
/// configuration stays reproducible.
class ShardedLock {
 public:
  explicit ShardedLock(std::size_t shards, const std::string& name = "lock") {
    if (shards == 0) shards = 1;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<SpinLock>(name));
    }
  }

  /// The shard covering `hash` (callers hash their key).
  [[nodiscard]] SpinLock& shard_for(std::size_t hash) {
    return *shards_[hash % shards_.size()];
  }
  [[nodiscard]] std::size_t shard_index(std::size_t hash) const {
    return hash % shards_.size();
  }
  [[nodiscard]] SpinLock& at(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  [[nodiscard]] std::uint64_t total_acquisitions() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s->acquisitions();
    return sum;
  }
  [[nodiscard]] std::uint64_t total_contended_spins() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s->contended_spins();
    return sum;
  }

 private:
  std::vector<std::unique_ptr<SpinLock>> shards_;
};

/// Reader-writer lock (rwlock_t analogue) for structures whose read path
/// dominates (e.g. the MemFs inode table under metadata workloads). Only
/// counters are kept -- no SyncHooks events, because the hook protocol
/// pairs lock/unlock per object and concurrent readers would interleave
/// the pairs and confuse the lock monitors; the instrumented dcache and
/// kmalloc spinlocks remain the observable objects.
class RwLock {
 public:
  explicit RwLock(std::string name = "rwlock") : name_(std::move(name)) {}

  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void lock_shared() {
    mu_.lock_shared();
    read_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void unlock_shared() { mu_.unlock_shared(); }
  void lock() {
    mu_.lock();
    write_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void unlock() { mu_.unlock(); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t read_acquisitions() const {
    return read_acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t write_acquisitions() const {
    return write_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_mutex mu_;
  std::atomic<std::uint64_t> read_acquisitions_{0};
  std::atomic<std::uint64_t> write_acquisitions_{0};
  std::string name_;
};

/// RAII guards for RwLock.
class ReadGuard {
 public:
  explicit ReadGuard(RwLock& l) : l_(l) { l_.lock_shared(); }
  ~ReadGuard() { l_.unlock_shared(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  RwLock& l_;
};

class WriteGuard {
 public:
  explicit WriteGuard(RwLock& l) : l_(l) { l_.lock(); }
  ~WriteGuard() { l_.unlock(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  RwLock& l_;
};

/// Reference counter analogous to kref. The paper's monitors verify that
/// increments and decrements are symmetric (§3).
class RefCount {
 public:
  explicit RefCount(std::int64_t initial = 1) : count_(initial) {}

  void inc(const char* file = "?", int line = 0) {
    count_.fetch_add(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kRefInc, file, line);
  }

  /// Returns true when the count hit zero (object should be freed).
  bool dec(const char* file = "?", int line = 0) {
    std::int64_t v = count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    SyncHooks::fire(this, SyncEvent::kRefDec, file, line);
    return v == 0;
  }

  [[nodiscard]] std::int64_t value() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_;
};

#define USK_REF_INC(r) (r).inc(__FILE__, __LINE__)
#define USK_REF_DEC(r) (r).dec(__FILE__, __LINE__)

/// Counting semaphore with the same hook protocol.
class Semaphore {
 public:
  explicit Semaphore(int initial = 1) : count_(initial) {}

  void down(const char* file = "?", int line = 0) {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return count_ > 0; });
    --count_;
    SyncHooks::fire(this, SyncEvent::kSemDown, file, line);
  }

  void up(const char* file = "?", int line = 0) {
    {
      std::lock_guard lk(mu_);
      ++count_;
    }
    SyncHooks::fire(this, SyncEvent::kSemUp, file, line);
    cv_.notify_one();
  }

  [[nodiscard]] int value() const {
    std::lock_guard lk(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// Simulated IRQ state for the "interrupts disabled are later re-enabled"
/// invariant the paper lists.
class IrqState {
 public:
  void disable(const char* file = "?", int line = 0) {
    depth_.fetch_add(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kIrqDisable, file, line);
  }
  void enable(const char* file = "?", int line = 0) {
    depth_.fetch_sub(1, std::memory_order_relaxed);
    SyncHooks::fire(this, SyncEvent::kIrqEnable, file, line);
  }
  [[nodiscard]] int depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> depth_{0};
};

}  // namespace usk::base
