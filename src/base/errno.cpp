#include "base/errno.hpp"

namespace usk {

std::string_view errno_name(Errno e) {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kEPERM: return "EPERM";
    case Errno::kENOENT: return "ENOENT";
    case Errno::kEINTR: return "EINTR";
    case Errno::kEIO: return "EIO";
    case Errno::kEBADF: return "EBADF";
    case Errno::kEAGAIN: return "EAGAIN";
    case Errno::kENOMEM: return "ENOMEM";
    case Errno::kEACCES: return "EACCES";
    case Errno::kEFAULT: return "EFAULT";
    case Errno::kEBUSY: return "EBUSY";
    case Errno::kEEXIST: return "EEXIST";
    case Errno::kEXDEV: return "EXDEV";
    case Errno::kENOTDIR: return "ENOTDIR";
    case Errno::kEISDIR: return "EISDIR";
    case Errno::kEINVAL: return "EINVAL";
    case Errno::kENFILE: return "ENFILE";
    case Errno::kEMFILE: return "EMFILE";
    case Errno::kEFBIG: return "EFBIG";
    case Errno::kENOSPC: return "ENOSPC";
    case Errno::kEROFS: return "EROFS";
    case Errno::kENAMETOOLONG: return "ENAMETOOLONG";
    case Errno::kENOTEMPTY: return "ENOTEMPTY";
    case Errno::kENOSYS: return "ENOSYS";
    case Errno::kEPIPE: return "EPIPE";
    case Errno::kETIME: return "ETIME";
    case Errno::kEOVERFLOW: return "EOVERFLOW";
    case Errno::kENOTSOCK: return "ENOTSOCK";
    case Errno::kEADDRINUSE: return "EADDRINUSE";
    case Errno::kECONNRESET: return "ECONNRESET";
    case Errno::kEISCONN: return "EISCONN";
    case Errno::kENOTCONN: return "ENOTCONN";
    case Errno::kETIMEDOUT: return "ETIMEDOUT";
    case Errno::kECONNREFUSED: return "ECONNREFUSED";
    case Errno::kEDQUOT: return "EDQUOT";
    case Errno::kECANCELED: return "ECANCELED";
    case Errno::kEKILLED: return "EKILLED";
  }
  return "E???";
}

}  // namespace usk
