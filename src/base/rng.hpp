// Deterministic PRNG used by every workload generator.
//
// xorshift64* -- fast, seedable, and identical across platforms so that all
// benchmarks and property tests are reproducible run-to-run.
#pragma once

#include <cstdint>

namespace usk::base {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 1) {}

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  /// Uniform double in [0,1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace usk::base
