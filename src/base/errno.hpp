// Kernel-style status codes (POSIX errno semantics).
//
// The simulated kernel ("usk") mirrors POSIX errno semantics: operations
// return either a value or a negative status, exactly the convention Linux
// system calls use at the user/kernel boundary. The typed error carrier
// lives in base/result.hpp; this header re-exports it as usk::Result so
// every subsystem keeps one include for status handling.
#pragma once

#include <cstdint>
#include <string_view>

#include "base/result.hpp"

namespace usk {

/// POSIX-flavoured error codes used across the simulated kernel.
enum class Errno : std::int32_t {
  kOk = 0,
  kEPERM = 1,    ///< Operation not permitted
  kENOENT = 2,   ///< No such file or directory
  kEINTR = 4,    ///< Interrupted (watchdog kill)
  kEIO = 5,      ///< I/O error
  kEBADF = 9,    ///< Bad file descriptor
  kEAGAIN = 11,  ///< Resource temporarily unavailable
  kENOMEM = 12,  ///< Out of memory
  kEACCES = 13,  ///< Permission denied
  kEFAULT = 14,  ///< Bad address (failed user copy / protection fault)
  kEBUSY = 16,   ///< Device or resource busy
  kEEXIST = 17,  ///< File exists
  kEXDEV = 18,   ///< Cross-device link (rename across mounts)
  kENOTDIR = 20, ///< Not a directory
  kEISDIR = 21,  ///< Is a directory
  kEINVAL = 22,  ///< Invalid argument
  kENFILE = 23,  ///< Too many open files in system
  kEMFILE = 24,  ///< Too many open files (per task)
  kEFBIG = 27,   ///< File too large
  kENOSPC = 28,  ///< No space left on device
  kEROFS = 30,   ///< Read-only file system
  kEPIPE = 32,   ///< Broken pipe (send after shutdown)
  kENAMETOOLONG = 36,
  kENOTEMPTY = 39,
  kENOSYS = 38,  ///< Function not implemented
  kETIME = 62,   ///< Timer expired (Cosy kernel-time budget exceeded)
  kEOVERFLOW = 75,
  kENOTSOCK = 88,      ///< Socket operation on non-socket fd
  kEADDRINUSE = 98,    ///< Port already bound
  kECONNRESET = 104,   ///< Connection reset by peer (peer closed hard)
  kEISCONN = 106,      ///< Socket is already connected
  kENOTCONN = 107,     ///< Socket is not connected
  kETIMEDOUT = 110,    ///< Deadline expired (kdl end-to-end request deadline)
  kECONNREFUSED = 111, ///< No listener on the target port
  kEDQUOT = 122,       ///< Resource quota exceeded (supervisor caps)
  kECANCELED = 125,    ///< Operation canceled (ring chain cancel-on-error)
  kEKILLED = 132, ///< Task killed by the safety watchdog
};

/// Human-readable name for an error code (for klog and test diagnostics).
std::string_view errno_name(Errno e);

/// The kernel-internal error carrier (see base/result.hpp).
template <typename T>
using Result = base::Result<T>;

/// Linux-style: syscalls return ssize_t where negative values are -errno.
/// This representation survives ONLY at the syscall boundary; internal
/// interfaces use Result<T>, converted by to_sysret() in the gateway.
using SysRet = std::int64_t;

constexpr SysRet sysret_err(Errno e) { return -static_cast<SysRet>(e); }
constexpr bool sysret_is_err(SysRet r) { return r < 0; }
constexpr Errno sysret_errno(SysRet r) {
  return r < 0 ? static_cast<Errno>(-r) : Errno::kOk;
}

/// Boundary conversion, value-carrying form: ok -> the value (widened),
/// error -> -errno.
template <typename T>
constexpr SysRet to_sysret(const base::Result<T>& r) {
  return r.ok() ? static_cast<SysRet>(r.value()) : sysret_err(r.error());
}
inline SysRet to_sysret(const base::Result<void>& r) {
  return r.ok() ? 0 : sysret_err(r.error());
}

}  // namespace usk
