// Kernel-style status codes and a lightweight Result<T> carrier.
//
// The simulated kernel ("usk") mirrors POSIX errno semantics: operations
// return either a value or a negative status, exactly the convention Linux
// system calls use at the user/kernel boundary.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <variant>

namespace usk {

/// POSIX-flavoured error codes used across the simulated kernel.
enum class Errno : std::int32_t {
  kOk = 0,
  kEPERM = 1,    ///< Operation not permitted
  kENOENT = 2,   ///< No such file or directory
  kEINTR = 4,    ///< Interrupted (watchdog kill)
  kEIO = 5,      ///< I/O error
  kEBADF = 9,    ///< Bad file descriptor
  kEAGAIN = 11,  ///< Resource temporarily unavailable
  kENOMEM = 12,  ///< Out of memory
  kEACCES = 13,  ///< Permission denied
  kEFAULT = 14,  ///< Bad address (failed user copy / protection fault)
  kEBUSY = 16,   ///< Device or resource busy
  kEEXIST = 17,  ///< File exists
  kEXDEV = 18,   ///< Cross-device link (rename across mounts)
  kENOTDIR = 20, ///< Not a directory
  kEISDIR = 21,  ///< Is a directory
  kEINVAL = 22,  ///< Invalid argument
  kENFILE = 23,  ///< Too many open files in system
  kEMFILE = 24,  ///< Too many open files (per task)
  kEFBIG = 27,   ///< File too large
  kENOSPC = 28,  ///< No space left on device
  kEROFS = 30,   ///< Read-only file system
  kEPIPE = 32,   ///< Broken pipe (send after shutdown)
  kENAMETOOLONG = 36,
  kENOTEMPTY = 39,
  kENOSYS = 38,  ///< Function not implemented
  kETIME = 62,   ///< Timer expired (Cosy kernel-time budget exceeded)
  kEOVERFLOW = 75,
  kENOTSOCK = 88,      ///< Socket operation on non-socket fd
  kEADDRINUSE = 98,    ///< Port already bound
  kECONNRESET = 104,   ///< Connection reset by peer (peer closed hard)
  kEISCONN = 106,      ///< Socket is already connected
  kENOTCONN = 107,     ///< Socket is not connected
  kECONNREFUSED = 111, ///< No listener on the target port
  kEKILLED = 132, ///< Task killed by the safety watchdog
};

/// Human-readable name for an error code (for klog and test diagnostics).
std::string_view errno_name(Errno e);

/// Result<T>: either a value or an Errno. Modeled after kernel ERR_PTR usage
/// but type-safe. `T` must be cheap to move.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Errno e) : v_(e) {}                          // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] Errno error() const {
    return ok() ? Errno::kOk : std::get<Errno>(v_);
  }

  [[nodiscard]] T& value() & { return std::get<T>(v_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(v_)); }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Errno> v_;
};

/// Linux-style: syscalls return ssize_t where negative values are -errno.
using SysRet = std::int64_t;

constexpr SysRet sysret_err(Errno e) { return -static_cast<SysRet>(e); }
constexpr bool sysret_is_err(SysRet r) { return r < 0; }
constexpr Errno sysret_errno(SysRet r) {
  return r < 0 ? static_cast<Errno>(-r) : Errno::kOk;
}

}  // namespace usk
