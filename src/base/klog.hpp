// klog: the simulated kernel's syslog.
//
// Kefence and the safety monitors report violations here ("Exact details
// about the context and location of buffer overflows are logged through
// syslog" -- paper §3.2). The log is an in-memory ring so tests can assert
// on exactly what was reported.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace usk::base {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kErr = 3,
  kCrit = 4,  ///< safety violation that disabled a module
};

struct LogEntry {
  LogLevel level;
  std::string message;
  std::uint64_t seq;
};

/// Thread-safe bounded in-memory log (oldest entries are dropped).
class KLog {
 public:
  explicit KLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void log(LogLevel level, std::string message);

  /// Snapshot of current entries, oldest first.
  [[nodiscard]] std::vector<LogEntry> entries() const;

  /// Entries at `level` or above.
  [[nodiscard]] std::vector<LogEntry> entries_at_least(LogLevel level) const;

  /// Number of messages ever logged (including dropped ones).
  [[nodiscard]] std::uint64_t total_logged() const;

  /// True if any entry's message contains `needle`.
  [[nodiscard]] bool contains(std::string_view needle) const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::uint64_t seq_ = 0;
  std::deque<LogEntry> ring_;
};

/// Process-wide kernel log instance (the simulated machine has one syslog).
KLog& klog();

void klogf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace usk::base
