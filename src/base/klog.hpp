// klog: the simulated kernel's syslog.
//
// Kefence and the safety monitors report violations here ("Exact details
// about the context and location of buffer overflows are logged through
// syslog" -- paper §3.2). The log is an in-memory ring so tests can assert
// on exactly what was reported.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace usk::base {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kErr = 3,
  kCrit = 4,  ///< safety violation that disabled a module
};

struct LogEntry {
  LogLevel level;
  std::string message;
  std::uint64_t seq;
};

/// Thread-safe bounded in-memory log (oldest entries are dropped).
class KLog {
 public:
  explicit KLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void log(LogLevel level, std::string message);

  /// Runtime severity floor (the "console loglevel"): messages below it
  /// are counted in suppressed() but never stored.
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  /// Messages rejected by the runtime severity floor.
  [[nodiscard]] std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  /// Snapshot of current entries, oldest first.
  [[nodiscard]] std::vector<LogEntry> entries() const;

  /// Entries at `level` or above.
  [[nodiscard]] std::vector<LogEntry> entries_at_least(LogLevel level) const;

  /// Number of messages ever logged (including dropped ones).
  [[nodiscard]] std::uint64_t total_logged() const;

  /// True if any entry's message contains `needle`.
  [[nodiscard]] bool contains(std::string_view needle) const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::uint64_t seq_ = 0;
  std::deque<LogEntry> ring_;
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kDebug)};
  std::atomic<std::uint64_t> suppressed_{0};
};

/// Fixed-window rate limiter for log sites (printk_ratelimit's policy):
/// at most `burst` events per `interval`, excess suppressed and counted.
/// take_report() hands back (and clears) the suppression count of
/// *completed* windows so a site can log one "N suppressed" summary
/// instead of N duplicates.
class RateLimit {
 public:
  RateLimit(std::uint32_t burst, std::uint64_t interval_ns)
      : burst_(burst), interval_ns_(interval_ns) {}

  [[nodiscard]] bool allow() {
    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    std::lock_guard lk(mu_);
    if (now - window_start_ >= interval_ns_) {
      window_start_ = now;
      report_ += window_suppressed_;
      window_suppressed_ = 0;
      used_ = 0;
    }
    if (used_ < burst_) {
      ++used_;
      return true;
    }
    ++window_suppressed_;
    ++total_suppressed_;
    return false;
  }

  /// Total events ever suppressed by this site.
  [[nodiscard]] std::uint64_t suppressed() const {
    std::lock_guard lk(mu_);
    return total_suppressed_;
  }

  /// Suppression count accumulated by completed windows; clears it.
  [[nodiscard]] std::uint64_t take_report() {
    std::lock_guard lk(mu_);
    std::uint64_t r = report_;
    report_ = 0;
    return r;
  }

 private:
  mutable std::mutex mu_;
  std::uint32_t burst_;
  std::uint64_t interval_ns_;
  std::uint64_t window_start_ = 0;
  std::uint32_t used_ = 0;
  std::uint64_t window_suppressed_ = 0;
  std::uint64_t total_suppressed_ = 0;
  std::uint64_t report_ = 0;
};

/// Named per-site rate-limit registry. Every USK_KLOG_RATELIMIT site owns
/// its own RateLimit (keyed by an explicit name or by file:line), so one
/// noisy site -- say a supervisor spamming quarantine events -- can never
/// consume another site's budget or hide its suppression count: the
/// watchdog keeps logging no matter how loud its neighbours are.
/// report() exposes per-site suppression totals (/proc/kernel/ratelimits).
class RateLimitRegistry {
 public:
  /// The RateLimit for `name`, created with (burst, interval_ns) on first
  /// use. Later calls return the same limiter; the first configuration
  /// wins. The reference stays valid for the registry's lifetime.
  RateLimit& site(std::string_view name, std::uint32_t burst,
                  std::uint64_t interval_ns);

  struct SiteReport {
    std::string name;
    std::uint64_t suppressed = 0;  ///< total events this site suppressed
  };
  /// Snapshot of every registered site, sorted by name.
  [[nodiscard]] std::vector<SiteReport> report() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<RateLimit>>> sites_;
};

/// Process-wide registry behind USK_KLOG_RATELIMIT.
RateLimitRegistry& klog_ratelimits();

/// Process-wide kernel log instance (the simulated machine has one syslog).
KLog& klog();

void klogf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace usk::base

/// Compile-time severity floor: USK_KLOG sites strictly below this level
/// vanish entirely (no format strings, no call). 0 = kDebug keeps all.
#ifndef USK_KLOG_MIN_LEVEL
#define USK_KLOG_MIN_LEVEL 0
#endif

/// klogf with a compile-out threshold. `level` must be a LogLevel
/// constant (e.g. ::usk::base::LogLevel::kWarn).
#define USK_KLOG(level, ...)                                   \
  do {                                                         \
    if constexpr (static_cast<int>(level) >=                   \
                  USK_KLOG_MIN_LEVEL) {                        \
      ::usk::base::klogf((level), __VA_ARGS__);                \
    }                                                          \
  } while (0)

/// Rate-limited USK_KLOG with an explicit site name: the site logs at
/// most `burst` messages per second out of ITS OWN budget (per-site
/// limiter from klog_ratelimits(), never shared with any other site); a
/// completed window's suppressions surface as one summary line naming
/// the site.
#define USK_KLOG_RATELIMIT_NAMED(sitename, level, burst, ...)            \
  do {                                                                   \
    if constexpr (static_cast<int>(level) >= USK_KLOG_MIN_LEVEL) {       \
      static ::usk::base::RateLimit& _usk_klog_rl =                      \
          ::usk::base::klog_ratelimits().site((sitename), (burst),       \
                                              1'000'000'000ull);         \
      if (_usk_klog_rl.allow()) {                                        \
        if (std::uint64_t _usk_klog_rs = _usk_klog_rl.take_report();     \
            _usk_klog_rs != 0) {                                         \
          ::usk::base::klogf(                                            \
              (level), "klog: %llu messages suppressed at site %s",      \
              static_cast<unsigned long long>(_usk_klog_rs),             \
              (sitename));                                               \
        }                                                                \
        ::usk::base::klogf((level), __VA_ARGS__);                        \
      }                                                                  \
    }                                                                    \
  } while (0)

#define USK_KLOG_STRINGIFY2(x) #x
#define USK_KLOG_STRINGIFY(x) USK_KLOG_STRINGIFY2(x)

/// Rate-limited USK_KLOG, site named after the expansion's file:line.
#define USK_KLOG_RATELIMIT(level, burst, ...)                          \
  USK_KLOG_RATELIMIT_NAMED(__FILE__ ":" USK_KLOG_STRINGIFY(__LINE__),  \
                           level, burst, __VA_ARGS__)
