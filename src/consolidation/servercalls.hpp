// Server-side consolidated system calls (paper §2.2 applied to the
// accept->recv->send->close heavy path the syscall-graph miner finds in
// web-server traces).
//
// accept_recv collapses the connection prologue -- accept(2) plus the
// read of the first request -- into one crossing. sendfile collapses the
// whole response path (open/read.../send.../close) into one crossing AND
// moves the file bytes kernel-side, MemFs page -> socket queue, so the
// payload never visits user space at all: the only user copies are the
// path (in) and the returned count.
//
// Kept in its own translation unit so the classic consolidated calls
// (newcalls.cpp) stay free of the net dependency.
#pragma once

#include "net/net.hpp"
#include "uk/kernel.hpp"

namespace usk::consolidation {

/// accept + recv-first-request in one crossing. Installs the accepted
/// connection's fd into *uconnfd and fills `ubuf` with the first bytes of
/// the request (blocking per the listener's nonblock flag for the accept,
/// and per the connection's flag for the recv). Returns bytes received
/// (0 = peer closed before sending).
SysRet sys_accept_recv(net::Net& net, uk::Kernel& k, uk::Process& p,
                       int listenfd, void* ubuf, std::size_t n,
                       int* uconnfd);

/// open+read...+send...+close in one crossing with zero user-space data
/// copies: `count` bytes of the file at `upath` starting at `offset` move
/// kernel-side into the connection behind `sockfd`. Returns bytes sent.
SysRet sys_sendfile(net::Net& net, uk::Kernel& k, uk::Process& p, int sockfd,
                    const char* upath, std::uint64_t offset,
                    std::size_t count);

}  // namespace usk::consolidation
