#include "consolidation/graph.hpp"

#include <algorithm>
#include <unordered_map>

namespace usk::consolidation {

namespace {
std::size_t idx(uk::Sys s) { return static_cast<std::size_t>(s); }
}  // namespace

void SyscallGraph::add_trace(std::span<const uk::Sys> calls) {
  for (std::size_t i = 0; i < calls.size(); ++i) {
    ++node_[idx(calls[i])];
    if (i + 1 < calls.size()) {
      ++w_[idx(calls[i])][idx(calls[i + 1])];
    }
  }
}

void SyscallGraph::add_audit(const uk::Audit& audit) {
  std::vector<uk::Sys> trace;
  trace.reserve(audit.records().size());
  for (const auto& r : audit.records()) trace.push_back(r.nr);
  add_trace(trace);
}

std::uint64_t SyscallGraph::edge(uk::Sys a, uk::Sys b) const {
  return w_[idx(a)][idx(b)];
}

std::uint64_t SyscallGraph::node(uk::Sys a) const { return node_[idx(a)]; }

std::vector<SyscallGraph::Edge> SyscallGraph::top_edges(std::size_t k) const {
  std::vector<Edge> edges;
  for (std::size_t a = 0; a < kN; ++a) {
    for (std::size_t b = 0; b < kN; ++b) {
      if (w_[a][b] > 0) {
        edges.push_back(Edge{static_cast<uk::Sys>(a),
                             static_cast<uk::Sys>(b), w_[a][b]});
      }
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& x, const Edge& y) { return x.weight > y.weight; });
  if (edges.size() > k) edges.resize(k);
  return edges;
}

std::string SyscallGraph::Path::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) s += "-";
    s += uk::sys_name(seq[i]);
  }
  return s;
}

std::vector<SyscallGraph::Path> SyscallGraph::heavy_paths(
    std::size_t max_len, std::uint64_t min_weight, std::size_t top_k) const {
  std::vector<Path> paths;
  // Seed with every edge above threshold, greedily extend forward with the
  // heaviest continuation that keeps the bottleneck above threshold.
  for (std::size_t a = 0; a < kN; ++a) {
    for (std::size_t b = 0; b < kN; ++b) {
      if (w_[a][b] < min_weight || a == b) continue;
      Path p;
      p.seq = {static_cast<uk::Sys>(a), static_cast<uk::Sys>(b)};
      p.weight = w_[a][b];
      while (p.seq.size() < max_len) {
        std::size_t cur = idx(p.seq.back());
        std::size_t best = kN;
        std::uint64_t best_w = min_weight - 1;
        for (std::size_t c = 0; c < kN; ++c) {
          if (c == cur) continue;  // avoid trivial self-loop chains
          if (w_[cur][c] > best_w) {
            best_w = w_[cur][c];
            best = c;
          }
        }
        if (best == kN || best_w < min_weight) break;
        // Stop on cycles back into the path (except allowing one repeat of
        // the head, e.g. open-read-close-open...).
        bool cycles = std::find(p.seq.begin() + 1, p.seq.end(),
                                static_cast<uk::Sys>(best)) != p.seq.end();
        if (cycles) break;
        p.seq.push_back(static_cast<uk::Sys>(best));
        p.weight = std::min(p.weight, best_w);
      }
      paths.push_back(std::move(p));
    }
  }
  // Deduplicate: keep the longest/heaviest path per (first, second) pair.
  std::sort(paths.begin(), paths.end(), [](const Path& x, const Path& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    return x.seq.size() > y.seq.size();
  });
  std::vector<Path> out;
  for (Path& p : paths) {
    bool dominated = false;
    for (const Path& q : out) {
      if (q.seq.size() >= p.seq.size() &&
          std::search(q.seq.begin(), q.seq.end(), p.seq.begin(),
                      p.seq.end()) != q.seq.end()) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(std::move(p));
    if (out.size() == top_k) break;
  }
  return out;
}

std::string NGram::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) s += "-";
    s += uk::sys_name(seq[i]);
  }
  return s;
}

std::vector<NGram> mine_ngrams(std::span<const uk::Sys> trace, std::size_t n,
                               std::size_t top_k) {
  struct VecHash {
    std::size_t operator()(const std::vector<uk::Sys>& v) const {
      std::size_t h = 1469598103934665603ull;
      for (uk::Sys s : v) {
        h ^= static_cast<std::size_t>(s);
        h *= 1099511628211ull;
      }
      return h;
    }
  };
  std::unordered_map<std::vector<uk::Sys>, std::uint64_t, VecHash> counts;
  if (trace.size() >= n) {
    std::vector<uk::Sys> key(n);
    for (std::size_t i = 0; i + n <= trace.size(); ++i) {
      std::copy(trace.begin() + static_cast<std::ptrdiff_t>(i),
                trace.begin() + static_cast<std::ptrdiff_t>(i + n),
                key.begin());
      ++counts[key];
    }
  }
  std::vector<NGram> out;
  out.reserve(counts.size());
  for (auto& [seq, count] : counts) out.push_back(NGram{seq, count});
  std::sort(out.begin(), out.end(),
            [](const NGram& x, const NGram& y) { return x.count > y.count; });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

WhatIfSavings readdirplus_whatif(const std::vector<uk::AuditRecord>& records) {
  WhatIfSavings s;
  // Wire-format cost of one readdirplus record vs. the dirent + stat pair
  // it replaces: the stat's path copy-in and statbuf copy-out disappear;
  // the name+stat ride in the readdirplus output.
  constexpr std::uint64_t kPlusPerStat = sizeof(fs::StatBuf) + 2;

  std::size_t i = 0;
  const std::size_t n = records.size();
  while (i < n) {
    const uk::AuditRecord& r = records[i];
    s.calls_before += 1;
    s.bytes_before += r.bytes_in + r.bytes_out;
    if (r.nr == uk::Sys::kReaddir) {
      // Count the run: the rest of the getdents loop, the directory-handle
      // close, and the per-file stat burst all collapse into the (path-
      // based) readdirplus result. A close does not break the burst -- a
      // readdirplus caller never opened the directory at all.
      std::uint64_t burst_calls = 0;
      std::uint64_t burst_bytes = 0;
      std::uint64_t plus_bytes = r.bytes_in + r.bytes_out;
      std::size_t j = i + 1;
      while (j < n && (records[j].nr == uk::Sys::kStat ||
                       records[j].nr == uk::Sys::kFstat ||
                       records[j].nr == uk::Sys::kReaddir ||
                       records[j].nr == uk::Sys::kClose)) {
        burst_calls += 1;
        burst_bytes += records[j].bytes_in + records[j].bytes_out;
        if (records[j].nr == uk::Sys::kReaddir) {
          plus_bytes += records[j].bytes_in + records[j].bytes_out;
        } else if (records[j].nr != uk::Sys::kClose) {
          plus_bytes += kPlusPerStat;
        }
        ++j;
      }
      if (burst_calls > 0) {
        s.calls_before += burst_calls;
        s.bytes_before += burst_bytes;
        // After: the whole burst is however many readdirplus calls the
        // original readdir sequence needed (one per readdir record seen).
        std::uint64_t rd_calls = 1;
        for (std::size_t t = i + 1; t < j; ++t) {
          if (records[t].nr == uk::Sys::kReaddir) ++rd_calls;
        }
        s.calls_after += rd_calls;
        s.bytes_after += plus_bytes;
        i = j;
        continue;
      }
    }
    s.calls_after += 1;
    s.bytes_after += r.bytes_in + r.bytes_out;
    ++i;
  }
  return s;
}

WhatIfSavings server_consolidation_whatif(
    const std::vector<uk::AuditRecord>& records) {
  WhatIfSavings s;
  std::size_t i = 0;
  const std::size_t n = records.size();
  while (i < n) {
    const uk::AuditRecord& r = records[i];

    // accept followed by recv on the new connection -> one accept_recv.
    if (r.nr == uk::Sys::kAccept && i + 1 < n &&
        records[i + 1].nr == uk::Sys::kRecv &&
        records[i + 1].pid == r.pid) {
      const uk::AuditRecord& rv = records[i + 1];
      s.calls_before += 2;
      s.bytes_before += r.bytes_in + r.bytes_out + rv.bytes_in + rv.bytes_out;
      s.calls_after += 1;
      // accept_recv still returns the request bytes + the connection fd.
      s.bytes_after += rv.bytes_out + sizeof(int);
      i += 2;
      continue;
    }

    // open, read..., send..., close on one pid -> one sendfile. The file
    // payload (read copy-out + send copy-in) disappears: sendfile moves
    // it kernel-side. What remains of the burst is the path copy-in.
    if (r.nr == uk::Sys::kOpen && i + 1 < n) {
      std::size_t j = i + 1;
      std::uint64_t burst_bytes = r.bytes_in + r.bytes_out;
      std::uint64_t burst_calls = 1;
      bool saw_read = false;
      bool saw_send = false;
      while (j < n && records[j].pid == r.pid &&
             (records[j].nr == uk::Sys::kRead ||
              records[j].nr == uk::Sys::kSend)) {
        saw_read = saw_read || records[j].nr == uk::Sys::kRead;
        saw_send = saw_send || records[j].nr == uk::Sys::kSend;
        burst_bytes += records[j].bytes_in + records[j].bytes_out;
        burst_calls += 1;
        ++j;
      }
      if (saw_read && saw_send && j < n &&
          records[j].nr == uk::Sys::kClose && records[j].pid == r.pid) {
        burst_calls += 1;
        burst_bytes += records[j].bytes_in + records[j].bytes_out;
        s.calls_before += burst_calls;
        s.bytes_before += burst_bytes;
        s.calls_after += 1;
        s.bytes_after += r.bytes_in;  // just the path copy-in
        i = j + 1;
        continue;
      }
    }

    s.calls_before += 1;
    s.calls_after += 1;
    s.bytes_before += r.bytes_in + r.bytes_out;
    s.bytes_after += r.bytes_in + r.bytes_out;
    ++i;
  }
  return s;
}

}  // namespace usk::consolidation
