#include "consolidation/newcalls.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace usk::consolidation {

using uk::Kernel;
using uk::Process;

namespace {

/// Copy a user path into a kernel buffer; negative SysRet on failure.
std::int64_t fetch_path(Kernel& k, Process& p, const char* upath,
                        char* kpath) {
  if (upath == nullptr) return sysret_err(Errno::kEFAULT);
  Result<std::size_t> len =
      k.boundary().strncpy_from_user(p.task, kpath, upath, Kernel::kMaxPath);
  if (!len) return sysret_err(len.error());
  return static_cast<std::int64_t>(len.value());
}

}  // namespace

SysRet sys_readdirplus(Kernel& k, Process& p, const char* upath, void* ubuf,
                       std::size_t n, std::uint64_t* ucookie) {
  Kernel::Scope scope(k, p, uk::Sys::kReaddirPlus);
  if (SysRet g = scope.gate(); g != 0) return g;
  if (ubuf == nullptr || ucookie == nullptr) {
    return scope.fail(Errno::kEFAULT);
  }
  char kpath[Kernel::kMaxPath];
  std::int64_t len = fetch_path(k, p, upath, kpath);
  if (len < 0) return scope.done(len);

  std::uint64_t cookie = 0;
  if (Result<std::size_t> c =
          k.boundary().copy_from_user(p.task, &cookie, ucookie, sizeof(cookie));
      !c) {
    return scope.fail(c.error());
  }

  Result<fs::Vfs::Loc> dir = k.vfs().resolve_loc(
      std::string_view(kpath, static_cast<std::size_t>(len)));
  if (!dir) return scope.fail(dir.error());

  n = std::min(n, Kernel::kMaxIo);
  std::size_t max_entries =
      std::max<std::size_t>(1, n / sizeof(uk::DirentPlusHdr));
  Result<std::vector<fs::DirEntry>> win =
      k.vfs().readdir_window_at(dir.value(), cookie, max_entries);
  if (!win) return scope.fail(win.error());

  std::vector<std::byte> kbuf(n);
  std::size_t off = 0;
  std::uint64_t taken = 0;
  for (const fs::DirEntry& de : win.value()) {
    std::size_t rec = sizeof(uk::DirentPlusHdr) + de.name.size();
    if (off + rec > n) break;
    uk::DirentPlusHdr hdr{};
    // In-kernel stat: no extra crossing, no path re-walk (we already hold
    // the inode number).
    Errno e = k.vfs().getattr_at(
        fs::Vfs::Loc{dir.value().fs, de.ino, dir.value().fs_id}, &hdr.st);
    if (e != Errno::kOk) continue;  // raced with unlink; skip
    hdr.namelen = static_cast<std::uint8_t>(de.name.size());
    std::memcpy(kbuf.data() + off, &hdr, sizeof(hdr));
    std::memcpy(kbuf.data() + off + sizeof(hdr), de.name.data(),
                de.name.size());
    off += rec;
    ++taken;
  }
  // Entries first, cookie second: if either copy-out faults the cookie in
  // user memory still matches what the user actually received.
  if (off > 0) {
    if (Result<std::size_t> c =
            k.boundary().copy_to_user(p.task, ubuf, kbuf.data(), off);
        !c) {
      return scope.fail(c.error());
    }
  }
  cookie += taken;
  if (Result<std::size_t> c =
          k.boundary().copy_to_user(p.task, ucookie, &cookie, sizeof(cookie));
      !c) {
    return scope.fail(c.error());
  }
  return scope.done(static_cast<SysRet>(off));
}

SysRet sys_open_read_close(Kernel& k, Process& p, const char* upath,
                           void* ubuf, std::size_t n, std::uint64_t offset) {
  Kernel::Scope scope(k, p, uk::Sys::kOpenReadClose);
  if (SysRet g = scope.gate(); g != 0) return g;
  if (ubuf == nullptr) return scope.fail(Errno::kEFAULT);
  char kpath[Kernel::kMaxPath];
  std::int64_t len = fetch_path(k, p, upath, kpath);
  if (len < 0) return scope.done(len);

  Result<int> fd =
      k.vfs().open(p.fds, std::string_view(kpath, static_cast<std::size_t>(len)),
                   fs::kORdOnly, 0);
  if (!fd) return scope.fail(fd.error());

  n = std::min(n, Kernel::kMaxIo);
  std::vector<std::byte> kbuf(n);
  Result<std::uint64_t> pos = k.vfs().lseek(p.fds, fd.value(),
                                            static_cast<std::int64_t>(offset),
                                            fs::kSeekSet);
  if (!pos) {
    k.vfs().close(p.fds, fd.value());
    return scope.fail(pos.error());
  }
  Result<std::size_t> r = k.vfs().read(p.fds, fd.value(),
                                       std::span(kbuf.data(), n));
  k.vfs().close(p.fds, fd.value());
  if (!r) return scope.fail(r.error());
  if (r.value() > 0) {
    if (Result<std::size_t> c =
            k.boundary().copy_to_user(p.task, ubuf, kbuf.data(), r.value());
        !c) {
      return scope.fail(c.error());
    }
  }
  return scope.done(static_cast<SysRet>(r.value()));
}

SysRet sys_open_write_close(Kernel& k, Process& p, const char* upath,
                            const void* ubuf, std::size_t n,
                            std::uint64_t offset, int flags) {
  Kernel::Scope scope(k, p, uk::Sys::kOpenWriteClose);
  if (SysRet g = scope.gate(); g != 0) return g;
  if (ubuf == nullptr) return scope.fail(Errno::kEFAULT);
  char kpath[Kernel::kMaxPath];
  std::int64_t len = fetch_path(k, p, upath, kpath);
  if (len < 0) return scope.done(len);

  int open_flags = fs::kOWrOnly | (flags & (fs::kOCreat | fs::kOTrunc |
                                            fs::kOAppend));
  Result<int> fd =
      k.vfs().open(p.fds, std::string_view(kpath, static_cast<std::size_t>(len)),
                   open_flags, 0644);
  if (!fd) return scope.fail(fd.error());

  n = std::min(n, Kernel::kMaxIo);
  std::vector<std::byte> kbuf(n);
  if (Result<std::size_t> c =
          k.boundary().copy_from_user(p.task, kbuf.data(), ubuf, n);
      !c) {
    k.vfs().close(p.fds, fd.value());
    return scope.fail(c.error());
  }
  if ((flags & fs::kOAppend) == 0) {
    Result<std::uint64_t> pos = k.vfs().lseek(
        p.fds, fd.value(), static_cast<std::int64_t>(offset), fs::kSeekSet);
    if (!pos) {
      k.vfs().close(p.fds, fd.value());
      return scope.fail(pos.error());
    }
  }
  Result<std::size_t> r = k.vfs().write(p.fds, fd.value(),
                                        std::span(kbuf.data(), n));
  k.vfs().close(p.fds, fd.value());
  if (!r) return scope.fail(r.error());
  return scope.done(static_cast<SysRet>(r.value()));
}

SysRet sys_open_fstat(Kernel& k, Process& p, const char* upath,
                      fs::StatBuf* ust) {
  Kernel::Scope scope(k, p, uk::Sys::kOpenFstat);
  if (SysRet g = scope.gate(); g != 0) return g;
  if (ust == nullptr) return scope.fail(Errno::kEFAULT);
  char kpath[Kernel::kMaxPath];
  std::int64_t len = fetch_path(k, p, upath, kpath);
  if (len < 0) return scope.done(len);

  Result<int> fd =
      k.vfs().open(p.fds, std::string_view(kpath, static_cast<std::size_t>(len)),
                   fs::kORdOnly, 0);
  if (!fd) return scope.fail(fd.error());
  fs::StatBuf st;
  Errno e = k.vfs().fstat(p.fds, fd.value(), &st);
  k.vfs().close(p.fds, fd.value());
  if (e != Errno::kOk) return scope.fail(e);
  if (Result<std::size_t> c =
          k.boundary().copy_to_user(p.task, ust, &st, sizeof(st));
      !c) {
    return scope.fail(c.error());
  }
  return scope.done(0);
}

}  // namespace usk::consolidation
