// System-call graph mining (paper §2.2).
//
// "This is a weighted directed graph with vertices representing system
// calls and an edge between V1 and V2 having a weight equal to the number
// of times system call V2 was invoked after V1. Paths with large weights
// are likely to be good candidates for consolidation."
//
// Besides the graph itself, an n-gram miner counts contiguous sequences
// directly (the readdir-stat-stat... pattern is easier to see as n-grams),
// and a what-if analyzer replays a trace to compute the savings
// readdirplus would have delivered -- the paper's interactive-workload
// estimate.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "fs/types.hpp"
#include "uk/audit.hpp"

namespace usk::consolidation {

class SyscallGraph {
 public:
  static constexpr std::size_t kN = static_cast<std::size_t>(uk::Sys::kMaxSys);

  void add_trace(std::span<const uk::Sys> calls);
  void add_audit(const uk::Audit& audit);

  [[nodiscard]] std::uint64_t edge(uk::Sys a, uk::Sys b) const;
  [[nodiscard]] std::uint64_t node(uk::Sys a) const;

  struct Edge {
    uk::Sys from, to;
    std::uint64_t weight;
  };
  [[nodiscard]] std::vector<Edge> top_edges(std::size_t k) const;

  /// Heavy paths: greedy forward extension from each heavy edge. A path's
  /// weight is its bottleneck (minimum) edge weight.
  struct Path {
    std::vector<uk::Sys> seq;
    std::uint64_t weight = 0;
    [[nodiscard]] std::string to_string() const;
  };
  [[nodiscard]] std::vector<Path> heavy_paths(std::size_t max_len,
                                              std::uint64_t min_weight,
                                              std::size_t top_k) const;

 private:
  std::array<std::array<std::uint64_t, kN>, kN> w_{};
  std::array<std::uint64_t, kN> node_{};
};

/// Count contiguous n-grams over one or more traces.
struct NGram {
  std::vector<uk::Sys> seq;
  std::uint64_t count = 0;
  [[nodiscard]] std::string to_string() const;
};
std::vector<NGram> mine_ngrams(std::span<const uk::Sys> trace, std::size_t n,
                               std::size_t top_k);

/// What-if analysis: savings if every readdir-followed-by-stats burst in
/// the trace had been a readdirplus (paper's estimate: 171,975 calls ->
/// 17,251; 51.8 MB -> 32.2 MB).
struct WhatIfSavings {
  std::uint64_t calls_before = 0;
  std::uint64_t calls_after = 0;
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
};
WhatIfSavings readdirplus_whatif(const std::vector<uk::AuditRecord>& records);

/// What-if analysis for the server heavy path (E8): savings if every
/// accept->recv pair had been one accept_recv, and every
/// open->read...->send...->close response burst one sendfile. Besides the
/// saved crossings, sendfile's bytes_after drops the file payload
/// entirely -- the data would have moved kernel-side.
WhatIfSavings server_consolidation_whatif(
    const std::vector<uk::AuditRecord>& records);

}  // namespace usk::consolidation
