// Consolidated system calls (paper §2.2).
//
// "We found several promising system call patterns, including
// open-read-close, open-write-close, open-fstat, and readdir-stat. We
// implemented several new system calls to measure the improvements."
//
// Each call performs the work of a whole sequence behind ONE boundary
// crossing, and readdirplus additionally collapses the per-file stat path
// copies into a single packed result buffer -- both context switches and
// data copies are saved, as in NFSv3's READDIRPLUS.
#pragma once

#include "uk/kernel.hpp"

namespace usk::consolidation {

/// readdirplus: names + stat information for the files of a directory.
/// Fills `ubuf` with packed uk::DirentPlusHdr + name records starting at
/// *`ucookie` (0 on the first call); updates the cookie for resumption.
/// Returns bytes written, 0 at end of directory.
SysRet sys_readdirplus(uk::Kernel& k, uk::Process& p, const char* upath,
                       void* ubuf, std::size_t n, std::uint64_t* ucookie);

/// open-read-close in one crossing: reads up to `n` bytes at `offset`.
SysRet sys_open_read_close(uk::Kernel& k, uk::Process& p, const char* upath,
                           void* ubuf, std::size_t n, std::uint64_t offset);

/// open-write-close in one crossing; `flags` may include kOCreat/kOTrunc/
/// kOAppend. Returns bytes written.
SysRet sys_open_write_close(uk::Kernel& k, uk::Process& p, const char* upath,
                            const void* ubuf, std::size_t n,
                            std::uint64_t offset, int flags);

/// open-fstat(-close) in one crossing: stat via the open path.
SysRet sys_open_fstat(uk::Kernel& k, uk::Process& p, const char* upath,
                      fs::StatBuf* ust);

}  // namespace usk::consolidation
