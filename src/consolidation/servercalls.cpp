#include "consolidation/servercalls.hpp"

#include <algorithm>
#include <vector>

#include "trace/span.hpp"
#include "trace/tracepoint.hpp"

namespace usk::consolidation {

using uk::Kernel;
using uk::Process;

SysRet sys_accept_recv(net::Net& net, Kernel& k, Process& p, int listenfd,
                       void* ubuf, std::size_t n, int* uconnfd) {
  // Span before Scope: destruction order lets the Scope epilogue
  // attribute the kAcceptRecv crossing to this span before it publishes.
  trace::SpanScope span("net.accept_recv",
                        trace::SpanVehicle::kConsolidated);
  Kernel::Scope scope(k, p, uk::Sys::kAcceptRecv);
  if (SysRet g = scope.gate(); g != 0) return g;
  USK_TRACE_LATENCY("net", "accept_recv");
  if (ubuf == nullptr || uconnfd == nullptr) {
    return scope.fail(Errno::kEFAULT);
  }
  Result<std::shared_ptr<net::Socket>> ls = net.socket_of(p, listenfd);
  if (!ls) return scope.fail(ls.error());

  Result<int> connfd = net.accept_pop(p, *ls.value());
  if (!connfd) return scope.fail(connfd.error());

  std::shared_ptr<net::Socket> conn = net.find_socket(
      p.fds.get(connfd.value())->ino);
  n = std::min(n, Kernel::kMaxIo);
  std::vector<std::byte> kbuf(n);
  Result<std::size_t> r = net.recv_into(*conn, std::span(kbuf.data(), n));
  if (!r) {
    // The accept succeeded; hand the fd back even though the first read
    // failed (EAGAIN on a nonblocking empty connection is normal). A
    // faulted fd copy-out trumps the recv error -- the user can't learn
    // the fd, so EFAULT is what they must see.
    if (Result<std::size_t> c = k.boundary().copy_to_user(
            p.task, uconnfd, &connfd.value(), sizeof(int));
        !c) {
      return scope.fail(c.error());
    }
    return scope.fail(r.error());
  }
  if (Result<std::size_t> c = k.boundary().copy_to_user(
          p.task, uconnfd, &connfd.value(), sizeof(int));
      !c) {
    return scope.fail(c.error());
  }
  if (r.value() > 0) {
    if (Result<std::size_t> c =
            k.boundary().copy_to_user(p.task, ubuf, kbuf.data(), r.value());
        !c) {
      return scope.fail(c.error());
    }
  }
  return scope.done(static_cast<SysRet>(r.value()));
}

SysRet sys_sendfile(net::Net& net, Kernel& k, Process& p, int sockfd,
                    const char* upath, std::uint64_t offset,
                    std::size_t count) {
  trace::SpanScope span("net.sendfile", trace::SpanVehicle::kConsolidated);
  Kernel::Scope scope(k, p, uk::Sys::kSendfile);
  if (SysRet g = scope.gate(); g != 0) return g;
  USK_TRACE_LATENCY("net", "sendfile");
  // Descriptor first, path copy-in second: a bad fd must be reported
  // before any boundary copy work is charged (the uniform-EBADF rule;
  // contrast the pre-fix sys_write, which charged the copy on EBADF).
  Result<std::shared_ptr<net::Socket>> rs = net.socket_of(p, sockfd);
  if (!rs) return scope.fail(rs.error());
  if (upath == nullptr) return scope.fail(Errno::kEFAULT);
  char kpath[Kernel::kMaxPath];
  Result<std::size_t> plen =
      k.boundary().strncpy_from_user(p.task, kpath, upath, Kernel::kMaxPath);
  if (!plen) return scope.fail(plen.error());
  const std::size_t len = plen.value();

  Result<int> fd = k.vfs().open(
      p.fds, std::string_view(kpath, len),
      fs::kORdOnly, 0);
  if (!fd) return scope.fail(fd.error());

  // Pump file -> socket entirely kernel-side, one page-sized chunk at a
  // time. No copy_{from,to}_user: this is the zero-copy path the paper's
  // consolidated calls point toward.
  constexpr std::size_t kChunk = 4096;
  std::vector<std::byte> kbuf(kChunk);
  std::uint64_t pos = offset;
  std::size_t total = 0;
  Errno err = Errno::kOk;
  while (total < count) {
    std::size_t want = std::min(kChunk, count - total);
    Result<std::uint64_t> sk = k.vfs().lseek(
        p.fds, fd.value(), static_cast<std::int64_t>(pos), fs::kSeekSet);
    if (!sk) {
      err = sk.error();
      break;
    }
    Result<std::size_t> rd =
        k.vfs().read(p.fds, fd.value(), std::span(kbuf.data(), want));
    if (!rd) {
      err = rd.error();
      break;
    }
    if (rd.value() == 0) break;  // EOF
    Result<std::size_t> sn =
        net.send_from(*rs.value(), std::span(kbuf.data(), rd.value()));
    if (!sn) {
      err = sn.error();
      break;
    }
    total += sn.value();
    pos += sn.value();
    if (sn.value() < rd.value()) break;  // nonblocking short send
  }
  k.vfs().close(p.fds, fd.value());
  if (total == 0 && err != Errno::kOk) return scope.fail(err);
  net.note_sendfile(total);
  return scope.done(static_cast<SysRet>(total));
}

}  // namespace usk::consolidation
