// vmalloc: page-granular allocation in the simulated kernel virtual area.
//
// Each allocation maps fresh physical frames into the AddressSpace, one PTE
// per page, with an unmapped hole between areas (like Linux's vmalloc
// red-zone page). Kefence builds on the guard_before/guard_after options
// and end-alignment to place guardian PTEs flush against the buffer.
//
// The paper notes: "To speed up the default vfree function we have added a
// hash table to store the information about virtual memory buffers"
// (§3.2). Both lookup strategies are implemented -- a linear area scan
// (pre-fix vfree) and the hash index -- selectable per instance so the
// speedup itself is benchmarkable.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "mm/allocator.hpp"
#include "vm/address_space.hpp"

namespace usk::mm {

struct VmallocOptions {
  std::size_t guard_pages_before = 0;
  std::size_t guard_pages_after = 0;
  /// Align the *end* of the buffer to the last page's end so an overflow
  /// of one byte lands on the trailing guard page (Kefence overflow
  /// mode). When false the buffer starts page-aligned (underflow mode).
  bool align_end = false;
};

class Vmalloc {
 public:
  struct Area {
    std::uint64_t id = 0;
    vm::VAddr data_va = 0;       ///< first usable byte
    std::size_t size = 0;        ///< requested bytes
    vm::VAddr first_page = 0;    ///< first mapped page (incl. leading guard)
    std::size_t total_pages = 0; ///< guards + data pages
    std::size_t data_pages = 0;
    std::size_t guard_before = 0;
    std::size_t guard_after = 0;
    const char* file = "?";
    int line = 0;
  };

  struct VmallocStats {
    std::uint64_t alloc_calls = 0;
    std::uint64_t free_calls = 0;
    std::uint64_t failed = 0;
    std::uint64_t lookup_steps = 0;  ///< area-table probes during vfree
    std::uint64_t outstanding_areas = 0;
    std::uint64_t outstanding_data_pages = 0;
    std::uint64_t peak_outstanding_data_pages = 0;
  };

  /// `use_hash_index=false` reproduces the slow pre-paper vfree.
  Vmalloc(vm::AddressSpace& as, vm::VAddr region_base,
          std::size_t region_pages, bool use_hash_index = true);
  ~Vmalloc();

  Vmalloc(const Vmalloc&) = delete;
  Vmalloc& operator=(const Vmalloc&) = delete;

  /// Allocate `n` bytes; returns the VAddr of the first usable byte, or 0
  /// on exhaustion.
  vm::VAddr alloc(std::size_t n, const VmallocOptions& opt = VmallocOptions{},
                  const char* file = "?", int line = 0);

  Errno free(vm::VAddr data_va);

  /// Area whose page span (guards included) contains `va`; nullptr if none.
  [[nodiscard]] const Area* find_area_containing(vm::VAddr va) const;

  /// Area whose data_va equals `va` exactly (vfree-style lookup, charged to
  /// lookup_steps according to the configured strategy).
  const Area* find_area(vm::VAddr data_va);

  [[nodiscard]] const VmallocStats& stats() const { return stats_; }
  [[nodiscard]] vm::AddressSpace& space() { return as_; }

 private:
  vm::AddressSpace& as_;
  vm::VAddr region_base_;
  vm::VAddr region_end_;
  vm::VAddr next_va_;
  bool use_hash_;

  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Area> areas_;          // id -> area
  std::unordered_map<vm::VAddr, std::uint64_t> hash_;      // data_va -> id
  std::vector<std::uint64_t> order_;                       // linear index
  std::map<vm::VAddr, std::uint64_t> by_first_page_;       // span search
  VmallocStats stats_;
};

}  // namespace usk::mm
