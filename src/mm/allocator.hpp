// Pluggable kernel-memory allocation interface.
//
// The paper modifies Linux headers so that "kmalloc is replaced by vmalloc
// automatically if a special compiler flag is set" (§3.2). Our analogue is
// this interface: kernel modules (WrapFs, JournalFs) allocate through an
// Allocator&, and the build of the module chooses Kmalloc (vanilla, raw
// unchecked memory) or Kefence (guard-paged, MMU-checked memory).
//
// Buffer access deliberately mimics C semantics: offsets are NOT checked by
// the handle itself. An out-of-bounds write through a Kmalloc buffer
// silently corrupts adjacent memory -- through a Kefence buffer it hits the
// guardian PTE and faults.
#pragma once

#include <cstddef>
#include <cstdint>

#include "base/errno.hpp"

namespace usk::mm {

/// Opaque handle to an allocation. `raw` is a direct pointer for
/// linear-mapped (kmalloc) memory; `va` is a simulated virtual address for
/// MMU-mediated (vmalloc/Kefence) memory. Exactly one is meaningful.
struct BufferHandle {
  void* raw = nullptr;
  std::uint64_t va = 0;
  std::size_t size = 0;  ///< requested size in bytes

  [[nodiscard]] bool valid() const { return raw != nullptr || va != 0; }
};

struct AllocatorStats {
  std::uint64_t alloc_calls = 0;
  std::uint64_t free_calls = 0;
  std::uint64_t failed_allocs = 0;
  std::uint64_t bytes_requested = 0;      ///< cumulative
  std::uint64_t outstanding_allocs = 0;
  std::uint64_t outstanding_bytes = 0;    ///< requested bytes now live
  std::uint64_t outstanding_pages = 0;    ///< page footprint now live
  std::uint64_t peak_outstanding_pages = 0;

  /// Mean size of a request (paper reports 80 bytes for Wrapfs).
  [[nodiscard]] double mean_request_size() const {
    return alloc_calls == 0
               ? 0.0
               : static_cast<double>(bytes_requested) /
                     static_cast<double>(alloc_calls);
  }
};

/// Abstract kernel allocator. `file`/`line` identify the allocation site so
/// overflow reports can name the buffer's origin.
class Allocator {
 public:
  virtual ~Allocator() = default;

  virtual BufferHandle alloc(std::size_t n, const char* file = "?",
                             int line = 0) = 0;
  virtual void free(const BufferHandle& h) = 0;

  /// C-style unchecked access at `handle.base + offset`.
  virtual Errno read(const BufferHandle& h, std::size_t offset, void* dst,
                     std::size_t n) = 0;
  virtual Errno write(const BufferHandle& h, std::size_t offset,
                      const void* src, std::size_t n) = 0;

  [[nodiscard]] virtual const AllocatorStats& stats() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

#define USK_ALLOC(allocator, n) (allocator).alloc((n), __FILE__, __LINE__)

}  // namespace usk::mm
