#include "mm/kmalloc.hpp"

#include <cassert>
#include <cstring>

namespace usk::mm {

namespace {
constexpr std::size_t kMaxSmall = 4096;
}

Kmalloc::~Kmalloc() {
  for (vm::Pfn pfn : slab_frames_) phys_.free_frame(pfn);
  for (const auto& [ptr, info] : large_) {
    phys_.free_contiguous(info.first, info.frames);
  }
}

std::size_t Kmalloc::size_class(std::size_t n) {
  std::size_t klass = kMinClass;
  while (klass < n) klass <<= 1;
  return klass;
}

int Kmalloc::class_index(std::size_t klass) {
  int idx = 0;
  for (std::size_t c = kMinClass; c < klass; c <<= 1) ++idx;
  return idx;
}

BufferHandle Kmalloc::alloc(std::size_t n, const char* /*file*/,
                            int /*line*/) {
  ++stats_.alloc_calls;
  if (n == 0) n = 1;

  void* ptr = nullptr;
  std::size_t footprint_pages = 0;

  if (n <= kMaxSmall) {
    std::size_t klass = size_class(n);
    int idx = class_index(klass);
    if (free_lists_[idx].empty()) {
      // Refill: carve one frame into chunks of this class.
      Result<vm::Pfn> frame = phys_.alloc_frame();
      if (!frame) {
        ++stats_.failed_allocs;
        return {};
      }
      slab_frames_.push_back(frame.value());
      std::byte* base = phys_.frame_data(frame.value());
      for (std::size_t off = 0; off + klass <= vm::kPageSize; off += klass) {
        free_lists_[idx].push_back(base + off);
      }
    }
    ptr = free_lists_[idx].back();
    free_lists_[idx].pop_back();
    live_[ptr] = ChunkInfo{klass, n};
    // Slab accounting: charge the chunk's share of a page.
    footprint_pages = 0;  // shared frames counted via slab_frames_ growth
  } else {
    std::size_t frames = vm::pages_for(n);
    Result<vm::Pfn> first = phys_.alloc_contiguous(frames);
    if (!first) {
      ++stats_.failed_allocs;
      return {};
    }
    ptr = phys_.frame_data(first.value());
    large_[ptr] = LargeInfo{first.value(), frames, n};
    footprint_pages = frames;
  }

  stats_.bytes_requested += n;
  ++stats_.outstanding_allocs;
  stats_.outstanding_bytes += n;
  stats_.outstanding_pages += footprint_pages;
  if (stats_.outstanding_pages > stats_.peak_outstanding_pages) {
    stats_.peak_outstanding_pages = stats_.outstanding_pages;
  }
  return BufferHandle{ptr, 0, n};
}

void Kmalloc::free(const BufferHandle& h) {
  ++stats_.free_calls;
  if (h.raw == nullptr) return;

  if (auto it = live_.find(h.raw); it != live_.end()) {
    int idx = class_index(it->second.klass);
    stats_.outstanding_bytes -= it->second.requested;
    --stats_.outstanding_allocs;
    std::memset(h.raw, 0x6b, it->second.klass);  // SLAB_POISON
    free_lists_[idx].push_back(h.raw);
    live_.erase(it);
    return;
  }
  if (auto it = large_.find(h.raw); it != large_.end()) {
    stats_.outstanding_bytes -= it->second.requested;
    stats_.outstanding_pages -= it->second.frames;
    --stats_.outstanding_allocs;
    phys_.free_contiguous(it->second.first, it->second.frames);
    large_.erase(it);
    return;
  }
  assert(false && "kfree of pointer not owned by kmalloc");
}

Errno Kmalloc::read(const BufferHandle& h, std::size_t offset, void* dst,
                    std::size_t n) {
  // Deliberately unchecked: reading past the chunk reads the neighbour,
  // exactly like real kmalloc memory.
  std::memcpy(dst, static_cast<std::byte*>(h.raw) + offset, n);
  return Errno::kOk;
}

Errno Kmalloc::write(const BufferHandle& h, std::size_t offset,
                     const void* src, std::size_t n) {
  std::memcpy(static_cast<std::byte*>(h.raw) + offset, src, n);
  return Errno::kOk;
}

}  // namespace usk::mm
