#include "mm/kmalloc.hpp"

#include <cassert>
#include <cstring>

#include "fault/kfail.hpp"
#include "trace/tracepoint.hpp"

namespace usk::mm {

namespace {
constexpr std::size_t kMaxSmall = 4096;
}

Kmalloc::Kmalloc(vm::PhysMem& phys, bool per_cpu_cache)
    : phys_(phys),
      per_cpu_(per_cpu_cache),
      frame_class_(phys.frame_count(), 0) {
  if (per_cpu_) cpu_ = std::make_unique<base::PerCpu<CpuCache>>();
}

Kmalloc::~Kmalloc() {
  for (vm::Pfn pfn : slab_frames_) phys_.free_frame(pfn);
  for (const auto& [ptr, info] : large_) {
    phys_.free_contiguous(info.first, info.frames);
  }
}

std::size_t Kmalloc::size_class(std::size_t n) {
  std::size_t klass = kMinClass;
  while (klass < n) klass <<= 1;
  return klass;
}

int Kmalloc::class_index(std::size_t klass) {
  int idx = 0;
  for (std::size_t c = kMinClass; c < klass; c <<= 1) ++idx;
  return idx;
}

BufferHandle Kmalloc::alloc(std::size_t n, const char* /*file*/,
                            int /*line*/) {
  USK_TRACE_LATENCY("mm", "kmalloc");
  USK_TRACEPOINT("mm", "kmalloc_alloc", n);
  if (auto f = USK_FAIL_POINT(fault::Site::kKmalloc); f.fail) {
    // Injected allocation failure: surfaces to callers exactly like pool
    // exhaustion (empty handle -> ENOMEM). Transient injections model a
    // first-attempt miss rescued by direct reclaim and fall through.
    if (per_cpu_) {
      cpu_->local().stats.failed_allocs.fetch_add(1, std::memory_order_relaxed);
    } else {
      USK_SPIN_GUARD(depot_lock_);
      ++stats_.failed_allocs;
    }
    return {};
  }
  if (n == 0) n = 1;
  return per_cpu_ ? alloc_percpu(n) : alloc_legacy(n);
}

void Kmalloc::free(const BufferHandle& h) {
  USK_TRACEPOINT("mm", "kmalloc_free", h.size);
  if (per_cpu_) {
    free_percpu(h);
  } else {
    free_legacy(h);
  }
}

// ---------------------------------------------------------------------------
// Legacy path: every operation under the depot lock; exact LIFO reuse and
// the live-chunk map's foreign-free assert, as the single-CPU paper build
// had. The depot lock makes this the "shared allocator" SMP baseline.
// ---------------------------------------------------------------------------

BufferHandle Kmalloc::alloc_legacy(std::size_t n) {
  USK_SPIN_GUARD(depot_lock_);
  ++stats_.alloc_calls;

  void* ptr = nullptr;

  if (n <= kMaxSmall) {
    std::size_t klass = size_class(n);
    int idx = class_index(klass);
    ptr = depot_alloc_chunk(idx, klass);
    if (ptr == nullptr) {
      ++stats_.failed_allocs;
      return {};
    }
    live_[ptr] = ChunkInfo{klass, n};
    // Slab accounting: shared frames counted via slab_frames_ growth.
  } else {
    // alloc_large accounts outstanding/peak pages itself.
    BufferHandle h = alloc_large(n);
    if (h.raw == nullptr) {
      ++stats_.failed_allocs;
      return {};
    }
    ptr = h.raw;
  }

  stats_.bytes_requested += n;
  ++stats_.outstanding_allocs;
  stats_.outstanding_bytes += n;
  return BufferHandle{ptr, 0, n};
}

void Kmalloc::free_legacy(const BufferHandle& h) {
  USK_SPIN_GUARD(depot_lock_);
  ++stats_.free_calls;
  if (h.raw == nullptr) return;

  if (auto it = live_.find(h.raw); it != live_.end()) {
    int idx = class_index(it->second.klass);
    stats_.outstanding_bytes -= it->second.requested;
    --stats_.outstanding_allocs;
    std::memset(h.raw, 0x6b, it->second.klass);  // SLAB_POISON
    free_lists_[idx].push_back(h.raw);
    live_.erase(it);
    return;
  }
  if (auto it = large_.find(h.raw); it != large_.end()) {
    stats_.outstanding_bytes -= it->second.requested;
    stats_.outstanding_pages -= it->second.frames;
    --stats_.outstanding_allocs;
    free_large_locked(h, it->second);
    large_.erase(it);
    return;
  }
  assert(false && "kfree of pointer not owned by kmalloc");
}

// ---------------------------------------------------------------------------
// Per-CPU path: magazines front the depot. The only shared-state accesses
// are the half-magazine batch exchanges, so the depot lock is acquired once
// per kMagazineSize/2 allocs instead of once per alloc.
// ---------------------------------------------------------------------------

BufferHandle Kmalloc::alloc_percpu(std::size_t n) {
  CpuCache& c = cpu_->local();
  c.stats.alloc_calls.fetch_add(1, std::memory_order_relaxed);

  void* ptr = nullptr;
  if (n <= kMaxSmall) {
    std::size_t klass = size_class(n);
    int idx = class_index(klass);
    USK_SPIN_GUARD(c.lock);
    std::vector<void*>& mag = c.magazine[idx];
    if (mag.empty()) {
      // Underflow: pull half a magazine from the depot in one critical
      // section (lock order: cpu -> depot, never the reverse).
      USK_SPIN_GUARD(depot_lock_);
      for (std::size_t i = 0; i < kMagazineSize / 2; ++i) {
        void* chunk = depot_alloc_chunk(idx, klass);
        if (chunk == nullptr) break;
        mag.push_back(chunk);
      }
    }
    if (mag.empty()) {
      c.stats.failed_allocs.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    ptr = mag.back();
    mag.pop_back();
  } else {
    USK_SPIN_GUARD(depot_lock_);
    BufferHandle h = alloc_large(n);
    if (h.raw == nullptr) {
      c.stats.failed_allocs.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    ptr = h.raw;
  }

  c.stats.bytes_requested.fetch_add(n, std::memory_order_relaxed);
  c.stats.outstanding_allocs.fetch_add(1, std::memory_order_relaxed);
  c.stats.outstanding_bytes.fetch_add(static_cast<std::int64_t>(n),
                                      std::memory_order_relaxed);
  return BufferHandle{ptr, 0, n};
}

void Kmalloc::free_percpu(const BufferHandle& h) {
  CpuCache& c = cpu_->local();
  c.stats.free_calls.fetch_add(1, std::memory_order_relaxed);
  if (h.raw == nullptr) return;

  vm::Pfn pfn = phys_.pfn_of(h.raw);
  // frame_class_ was written under the depot lock before this chunk was
  // first handed out; the chunk reached this thread through a depot
  // refill, so the read is ordered -- no lock needed.
  std::size_t klass = (pfn != vm::kInvalidPfn) ? frame_class_[pfn] : 0;
  if (klass != 0) {
    std::memset(h.raw, 0x6b, klass);  // SLAB_POISON
    int idx = class_index(klass);
    USK_SPIN_GUARD(c.lock);
    std::vector<void*>& mag = c.magazine[idx];
    if (mag.size() >= kMagazineSize) {
      // Overflow: return half a magazine to the depot in one batch.
      USK_SPIN_GUARD(depot_lock_);
      for (std::size_t i = 0; i < kMagazineSize / 2; ++i) {
        free_lists_[idx].push_back(mag.back());
        mag.pop_back();
      }
    }
    mag.push_back(h.raw);
  } else {
    USK_SPIN_GUARD(depot_lock_);
    auto it = large_.find(h.raw);
    assert(it != large_.end() && "kfree of pointer not owned by kmalloc");
    if (it == large_.end()) return;
    stats_.outstanding_pages -= it->second.frames;
    free_large_locked(h, it->second);
    large_.erase(it);
  }

  c.stats.outstanding_allocs.fetch_sub(1, std::memory_order_relaxed);
  c.stats.outstanding_bytes.fetch_sub(static_cast<std::int64_t>(h.size),
                                      std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Depot internals (callers hold depot_lock_).
// ---------------------------------------------------------------------------

void* Kmalloc::depot_alloc_chunk(int idx, std::size_t klass) {
  if (free_lists_[idx].empty()) {
    // Refill: carve one frame into chunks of this class.
    Result<vm::Pfn> frame = phys_.alloc_frame();
    if (!frame) return nullptr;
    slab_frames_.push_back(frame.value());
    frame_class_[frame.value()] = klass;
    std::byte* base = phys_.frame_data(frame.value());
    for (std::size_t off = 0; off + klass <= vm::kPageSize; off += klass) {
      free_lists_[idx].push_back(base + off);
    }
  }
  void* ptr = free_lists_[idx].back();
  free_lists_[idx].pop_back();
  return ptr;
}

BufferHandle Kmalloc::alloc_large(std::size_t n) {
  std::size_t frames = vm::pages_for(n);
  Result<vm::Pfn> first = phys_.alloc_contiguous(frames);
  if (!first) return {};
  void* ptr = phys_.frame_data(first.value());
  large_[ptr] = LargeInfo{first.value(), frames, n};
  stats_.outstanding_pages += frames;
  if (stats_.outstanding_pages > stats_.peak_outstanding_pages) {
    stats_.peak_outstanding_pages = stats_.outstanding_pages;
  }
  return BufferHandle{ptr, 0, n};
}

void Kmalloc::free_large_locked(const BufferHandle& /*h*/,
                                const LargeInfo& info) {
  phys_.free_contiguous(info.first, info.frames);
}

// ---------------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------------

const AllocatorStats& Kmalloc::stats() const {
  USK_SPIN_GUARD(depot_lock_);
  merged_ = stats_;
  if (cpu_) {
    cpu_->for_each([&](const CpuCache& c) {
      merged_.alloc_calls +=
          c.stats.alloc_calls.load(std::memory_order_relaxed);
      merged_.free_calls += c.stats.free_calls.load(std::memory_order_relaxed);
      merged_.failed_allocs +=
          c.stats.failed_allocs.load(std::memory_order_relaxed);
      merged_.bytes_requested +=
          c.stats.bytes_requested.load(std::memory_order_relaxed);
      merged_.outstanding_allocs += static_cast<std::uint64_t>(
          c.stats.outstanding_allocs.load(std::memory_order_relaxed));
      merged_.outstanding_bytes += static_cast<std::uint64_t>(
          c.stats.outstanding_bytes.load(std::memory_order_relaxed));
    });
  }
  return merged_;
}

std::size_t Kmalloc::cached_chunks() const {
  if (!cpu_) return 0;
  std::size_t n = 0;
  cpu_->for_each([&](const CpuCache& c) {
    for (const auto& mag : c.magazine) n += mag.size();
  });
  return n;
}

Errno Kmalloc::read(const BufferHandle& h, std::size_t offset, void* dst,
                    std::size_t n) {
  // Deliberately unchecked: reading past the chunk reads the neighbour,
  // exactly like real kmalloc memory.
  std::memcpy(dst, static_cast<std::byte*>(h.raw) + offset, n);
  return Errno::kOk;
}

Errno Kmalloc::write(const BufferHandle& h, std::size_t offset,
                     const void* src, std::size_t n) {
  std::memcpy(static_cast<std::byte*>(h.raw) + offset, src, n);
  return Errno::kOk;
}

}  // namespace usk::mm
