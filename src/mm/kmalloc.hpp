// kmalloc: size-class slab allocator over the physical page pool.
//
// This is the simulated kernel's fast-path allocator, the one vanilla
// Wrapfs uses. Chunks are carved out of whole frames per size class and
// recycled through per-class free lists; returned memory is directly
// addressable (kernel linear mapping), so access costs nothing extra --
// and nothing protects against overflow into the neighbouring chunk.
//
// SMP: the shared free lists (the "depot") sit behind one instrumented
// kmalloc_depot SpinLock. With per-CPU caching enabled (SLUB-style),
// alloc/free hit a per-CPU magazine first -- a small per-class stack of
// chunks guarded by that CPU's uncontended kmalloc_cpu lock -- and only
// magazine overflow/underflow batch-exchanges half a magazine with the
// depot under the depot lock. The default (per_cpu_cache == false) keeps
// the paper's single shared allocator: exact LIFO chunk reuse and the
// live-chunk map that asserts on foreign frees.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/percpu.hpp"
#include "base/sync.hpp"
#include "mm/allocator.hpp"
#include "vm/phys.hpp"

namespace usk::mm {

class Kmalloc final : public Allocator {
 public:
  explicit Kmalloc(vm::PhysMem& phys, bool per_cpu_cache = false);
  ~Kmalloc() override;

  Kmalloc(const Kmalloc&) = delete;
  Kmalloc& operator=(const Kmalloc&) = delete;

  BufferHandle alloc(std::size_t n, const char* file, int line) override;
  void free(const BufferHandle& h) override;

  Errno read(const BufferHandle& h, std::size_t offset, void* dst,
             std::size_t n) override;
  Errno write(const BufferHandle& h, std::size_t offset, const void* src,
              std::size_t n) override;

  /// Counters merged across the depot and every CPU magazine. Callers read
  /// this at quiescent points (after joining workers); the merge itself is
  /// race-free but the returned snapshot is only stable once allocation
  /// traffic has stopped.
  [[nodiscard]] const AllocatorStats& stats() const override;
  [[nodiscard]] const char* name() const override { return "kmalloc"; }

  [[nodiscard]] bool per_cpu_cache() const { return per_cpu_; }
  /// The shared free-list lock (the SMP bench's contention metric).
  [[nodiscard]] base::SpinLock& depot_lock() { return depot_lock_; }
  /// Chunks parked in CPU magazines right now (quiescent-point read).
  [[nodiscard]] std::size_t cached_chunks() const;

  /// Size class (rounded-up chunk size) a request of `n` bytes lands in.
  static std::size_t size_class(std::size_t n);

 private:
  struct ChunkInfo {
    std::size_t klass;       ///< chunk size
    std::size_t requested;   ///< original request
  };

  // One free list per size class (32,64,...,4096), plus large multi-page
  // allocations tracked individually.
  static constexpr std::size_t kMinClass = 32;
  static constexpr std::size_t kNumClasses = 8;  // 32..4096
  // Magazine depth per size class; overflow/underflow moves half a
  // magazine to/from the depot in one depot-lock critical section.
  static constexpr std::size_t kMagazineSize = 64;

  static int class_index(std::size_t klass);

  struct LargeInfo {
    vm::Pfn first;
    std::size_t frames;
    std::size_t requested;
  };

  // Per-CPU counter block. Plain relaxed atomics: a CPU slot is normally
  // owned by one thread, but slots recycle (and wrap past kMaxCpus), so
  // every field stays atomic. Outstanding counts are signed deltas because
  // memory freed on a different CPU than it was allocated on debits the
  // freeing CPU.
  struct CpuStats {
    std::atomic<std::uint64_t> alloc_calls{0};
    std::atomic<std::uint64_t> free_calls{0};
    std::atomic<std::uint64_t> failed_allocs{0};
    std::atomic<std::uint64_t> bytes_requested{0};
    std::atomic<std::int64_t> outstanding_allocs{0};
    std::atomic<std::int64_t> outstanding_bytes{0};
  };

  struct CpuCache {
    base::SpinLock lock{"kmalloc_cpu"};
    std::vector<void*> magazine[kNumClasses];
    CpuStats stats;
  };

  // Depot-side paths. Callers hold depot_lock_.
  void* depot_alloc_chunk(int idx, std::size_t klass);
  BufferHandle alloc_large(std::size_t n);
  void free_large_locked(const BufferHandle& h, const LargeInfo& info);

  BufferHandle alloc_legacy(std::size_t n);
  void free_legacy(const BufferHandle& h);
  BufferHandle alloc_percpu(std::size_t n);
  void free_percpu(const BufferHandle& h);

  vm::PhysMem& phys_;
  const bool per_cpu_;

  // --- shared state, all guarded by depot_lock_ ---
  mutable base::SpinLock depot_lock_{"kmalloc_depot"};
  std::vector<void*> free_lists_[kNumClasses];
  std::unordered_map<void*, ChunkInfo> live_;  ///< legacy mode only
  std::unordered_map<void*, LargeInfo> large_;
  std::vector<vm::Pfn> slab_frames_;  ///< frames feeding the size classes
  AllocatorStats stats_;              ///< legacy mode + page accounting
  // Size class of every slab frame's chunks, indexed by pfn; written while
  // carving a frame (under depot_lock_) before any of its chunks escape,
  // so the lock-free reads on the per-CPU free path are ordered by the
  // depot lock hand-off. 0 = not a slab frame.
  std::vector<std::size_t> frame_class_;

  // --- per-CPU state (per_cpu_ mode) ---
  std::unique_ptr<base::PerCpu<CpuCache>> cpu_;
  mutable AllocatorStats merged_;  ///< scratch for stats(), under depot lock
};

}  // namespace usk::mm
