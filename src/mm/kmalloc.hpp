// kmalloc: size-class slab allocator over the physical page pool.
//
// This is the simulated kernel's fast-path allocator, the one vanilla
// Wrapfs uses. Chunks are carved out of whole frames per size class and
// recycled through per-class free lists; returned memory is directly
// addressable (kernel linear mapping), so access costs nothing extra --
// and nothing protects against overflow into the neighbouring chunk.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "mm/allocator.hpp"
#include "vm/phys.hpp"

namespace usk::mm {

class Kmalloc final : public Allocator {
 public:
  explicit Kmalloc(vm::PhysMem& phys) : phys_(phys) {}
  ~Kmalloc() override;

  Kmalloc(const Kmalloc&) = delete;
  Kmalloc& operator=(const Kmalloc&) = delete;

  BufferHandle alloc(std::size_t n, const char* file, int line) override;
  void free(const BufferHandle& h) override;

  Errno read(const BufferHandle& h, std::size_t offset, void* dst,
             std::size_t n) override;
  Errno write(const BufferHandle& h, std::size_t offset, const void* src,
              std::size_t n) override;

  [[nodiscard]] const AllocatorStats& stats() const override { return stats_; }
  [[nodiscard]] const char* name() const override { return "kmalloc"; }

  /// Size class (rounded-up chunk size) a request of `n` bytes lands in.
  static std::size_t size_class(std::size_t n);

 private:
  struct ChunkInfo {
    std::size_t klass;       ///< chunk size
    std::size_t requested;   ///< original request
  };

  // One free list per size class (32,64,...,4096), plus large multi-page
  // allocations tracked individually.
  static constexpr std::size_t kMinClass = 32;
  static constexpr std::size_t kNumClasses = 8;  // 32..4096

  static int class_index(std::size_t klass);

  struct LargeInfo {
    vm::Pfn first;
    std::size_t frames;
    std::size_t requested;
  };

  vm::PhysMem& phys_;
  std::vector<void*> free_lists_[kNumClasses];
  std::unordered_map<void*, ChunkInfo> live_;
  std::unordered_map<void*, LargeInfo> large_;
  std::vector<vm::Pfn> slab_frames_;  ///< frames feeding the size classes
  AllocatorStats stats_;
};

}  // namespace usk::mm
