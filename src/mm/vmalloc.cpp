#include "mm/vmalloc.hpp"

#include <algorithm>
#include <cassert>

#include "fault/kfail.hpp"

namespace usk::mm {

Vmalloc::Vmalloc(vm::AddressSpace& as, vm::VAddr region_base,
                 std::size_t region_pages, bool use_hash_index)
    : as_(as),
      region_base_(vm::page_base(region_base)),
      region_end_(vm::page_base(region_base) + region_pages * vm::kPageSize),
      next_va_(vm::page_base(region_base)),
      use_hash_(use_hash_index) {}

Vmalloc::~Vmalloc() {
  // Release all still-live areas (module unload semantics).
  std::vector<vm::VAddr> live;
  live.reserve(areas_.size());
  for (const auto& [id, area] : areas_) live.push_back(area.data_va);
  for (vm::VAddr va : live) (void)free(va);
}

vm::VAddr Vmalloc::alloc(std::size_t n, const VmallocOptions& opt, const char* file,
                         int line) {
  ++stats_.alloc_calls;
  if (auto f = USK_FAIL_POINT(fault::Site::kVmalloc); f.fail) {
    ++stats_.failed;
    return 0;
  }
  if (n == 0) n = 1;

  std::size_t data_pages = vm::pages_for(n);
  std::size_t total_pages =
      opt.guard_pages_before + data_pages + opt.guard_pages_after;
  // +1: always leave an unmapped hole page after the area.
  if (next_va_ + (total_pages + 1) * vm::kPageSize > region_end_) {
    ++stats_.failed;
    return 0;
  }

  vm::VAddr first_page = next_va_;
  vm::VAddr va = first_page;

  for (std::size_t i = 0; i < opt.guard_pages_before; ++i) {
    as_.map_guard(va);
    va += vm::kPageSize;
  }
  vm::VAddr data_page_start = va;
  for (std::size_t i = 0; i < data_pages; ++i) {
    Result<vm::Pfn> frame = as_.phys().alloc_frame();
    if (!frame) {
      // Roll back what we mapped so far.
      for (vm::VAddr u = first_page; u < va; u += vm::kPageSize) {
        const vm::Pte* pte = as_.lookup(u);
        if (pte != nullptr && pte->present && !pte->guard) {
          as_.phys().free_frame(pte->pfn);
        }
        as_.unmap_page(u);
      }
      ++stats_.failed;
      return 0;
    }
    as_.map_page(va, frame.value(), /*readable=*/true, /*writable=*/true);
    va += vm::kPageSize;
  }
  for (std::size_t i = 0; i < opt.guard_pages_after; ++i) {
    as_.map_guard(va);
    va += vm::kPageSize;
  }
  next_va_ = va + vm::kPageSize;  // hole page

  // Data placement inside the data pages.
  vm::VAddr data_va = data_page_start;
  if (opt.align_end) {
    data_va = data_page_start + data_pages * vm::kPageSize - n;
  }

  Area area;
  area.id = next_id_++;
  area.data_va = data_va;
  area.size = n;
  area.first_page = first_page;
  area.total_pages = total_pages;
  area.data_pages = data_pages;
  area.guard_before = opt.guard_pages_before;
  area.guard_after = opt.guard_pages_after;
  area.file = file;
  area.line = line;

  by_first_page_[first_page] = area.id;
  if (use_hash_) {
    hash_[data_va] = area.id;
  }
  order_.push_back(area.id);
  areas_[area.id] = area;

  ++stats_.outstanding_areas;
  stats_.outstanding_data_pages += data_pages;
  stats_.peak_outstanding_data_pages = std::max(
      stats_.peak_outstanding_data_pages, stats_.outstanding_data_pages);
  return data_va;
}

const Vmalloc::Area* Vmalloc::find_area(vm::VAddr data_va) {
  if (use_hash_) {
    ++stats_.lookup_steps;
    auto it = hash_.find(data_va);
    if (it == hash_.end()) return nullptr;
    return &areas_.at(it->second);
  }
  // Legacy linear scan, newest areas last (Linux walked the vmlist).
  for (std::uint64_t id : order_) {
    ++stats_.lookup_steps;
    auto it = areas_.find(id);
    if (it != areas_.end() && it->second.data_va == data_va) {
      return &it->second;
    }
  }
  return nullptr;
}

const Vmalloc::Area* Vmalloc::find_area_containing(vm::VAddr va) const {
  auto it = by_first_page_.upper_bound(va);
  if (it == by_first_page_.begin()) return nullptr;
  --it;
  const Area& area = areas_.at(it->second);
  vm::VAddr end = area.first_page + area.total_pages * vm::kPageSize;
  if (va >= area.first_page && va < end) return &area;
  return nullptr;
}

Errno Vmalloc::free(vm::VAddr data_va) {
  ++stats_.free_calls;
  const Area* found = find_area(data_va);
  if (found == nullptr) return Errno::kEINVAL;
  Area area = *found;  // copy before erasing

  vm::VAddr va = area.first_page;
  for (std::size_t i = 0; i < area.total_pages; ++i, va += vm::kPageSize) {
    const vm::Pte* pte = as_.lookup(va);
    if (pte != nullptr && pte->present && !pte->guard &&
        pte->pfn != vm::kInvalidPfn) {
      as_.phys().free_frame(pte->pfn);
    }
    as_.unmap_page(va);
  }

  by_first_page_.erase(area.first_page);
  hash_.erase(area.data_va);
  order_.erase(std::remove(order_.begin(), order_.end(), area.id),
               order_.end());
  areas_.erase(area.id);

  --stats_.outstanding_areas;
  stats_.outstanding_data_pages -= area.data_pages;
  return Errno::kOk;
}

}  // namespace usk::mm
