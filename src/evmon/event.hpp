// Event record for the kernel event-monitoring framework.
//
// Paper §3.3: "Each event is recorded by a structure that contains a
// void* that references the object affected by the event; an integer that
// encodes the type of event; and the source file and line number that
// triggered the event. This structure has been designed to minimize the
// size of individual log entries."
#pragma once

#include <cstdint>

namespace usk::evmon {

/// Well-known event types (values shared with base::SyncEvent); modules may
/// define their own types >= kUserBase.
enum EventType : std::int32_t {
  kSpinLock = 1,
  kSpinUnlock = 2,
  kRefInc = 3,
  kRefDec = 4,
  kSemDown = 5,
  kSemUp = 6,
  kIrqDisable = 7,
  kIrqEnable = 8,
  kUserBase = 1000,
};

struct Event {
  void* object = nullptr;     ///< affected kernel object
  std::int32_t type = 0;      ///< EventType or module-defined
  std::int32_t line = 0;      ///< source line
  const char* file = nullptr; ///< source file (static string)
  std::uint64_t seq = 0;      ///< global sequence number
};

}  // namespace usk::evmon
