#include "evmon/eventlog.hpp"

#include <cstring>
#include <type_traits>

namespace usk::evmon {

namespace {
constexpr std::uint32_t kMagic = 0x4B4C4F47;  // "KLOG"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
bool get(const std::vector<std::uint8_t>& in, std::size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
}  // namespace

std::uint32_t LogWriter::intern(const char* file) {
  std::string name = file != nullptr ? file : "?";
  auto it = file_idx_.find(name);
  if (it != file_idx_.end()) return it->second;
  auto idx = static_cast<std::uint32_t>(files_.size());
  files_.push_back(name);
  file_idx_.emplace(std::move(name), idx);
  return idx;
}

void LogWriter::append(const Event& e) {
  LogRecord r;
  r.object = reinterpret_cast<std::uint64_t>(e.object);
  r.seq = e.seq;
  r.type = e.type;
  r.line = e.line;
  r.file_idx = intern(e.file);
  records_.push_back(r);
}

std::vector<std::uint8_t> LogWriter::serialize() const {
  std::vector<std::uint8_t> out;
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint32_t>(files_.size()));
  put(out, static_cast<std::uint64_t>(records_.size()));
  for (const std::string& f : files_) {
    put(out, static_cast<std::uint32_t>(f.size()));
    out.insert(out.end(), f.begin(), f.end());
  }
  for (const LogRecord& r : records_) put(out, r);
  return out;
}

bool LogReader::parse(const std::vector<std::uint8_t>& image) {
  files_.clear();
  records_.clear();
  std::size_t pos = 0;
  std::uint32_t magic = 0, version = 0, nfiles = 0;
  std::uint64_t nrecords = 0;
  if (!get(image, &pos, &magic) || magic != kMagic) return false;
  if (!get(image, &pos, &version) || version != kVersion) return false;
  if (!get(image, &pos, &nfiles)) return false;
  if (!get(image, &pos, &nrecords)) return false;
  // Sanity bound: records cannot exceed what the image could hold.
  if (nrecords > image.size() / sizeof(LogRecord) + 1) return false;

  files_.reserve(nfiles);
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    std::uint32_t len = 0;
    if (!get(image, &pos, &len)) return false;
    if (pos + len > image.size()) return false;
    files_.emplace_back(reinterpret_cast<const char*>(image.data() + pos),
                        len);
    pos += len;
  }
  records_.reserve(nrecords);
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    LogRecord r;
    if (!get(image, &pos, &r)) return false;
    if (r.file_idx >= files_.size()) return false;
    records_.push_back(r);
  }
  return true;
}

Event LogReader::to_event(const LogRecord& r) const {
  Event e;
  e.object = reinterpret_cast<void*>(r.object);
  e.type = r.type;
  e.line = r.line;
  e.file = files_[r.file_idx].c_str();
  e.seq = r.seq;
  return e;
}

void LogReader::replay(MonitorBase& monitor) const {
  for (const LogRecord& r : records_) monitor.feed(to_event(r));
}

}  // namespace usk::evmon
