#include "evmon/chardev.hpp"

namespace usk::evmon {

std::size_t Chardev::read(Event* out, std::size_t max, ReadMode mode,
                          const std::atomic<bool>* stop) {
  ++reads_;
  if (crossing_hook_) crossing_hook_();

  std::size_t n = ring_.pop_bulk(out, max);
  if (n > 0) return n;

  if (mode == ReadMode::kPolling) {
    // The paper's prototype: return empty immediately; the caller loops,
    // burning CPU that the benchmarked workload needed.
    ++empty_reads_;
    return 0;
  }

  // Blocking mode: wait for data with a cheap backoff, charging no
  // additional crossings while asleep (a real blocking read would park the
  // task in the kernel).
  std::uint32_t spins = 0;
  while ((stop == nullptr || !stop->load(std::memory_order_relaxed))) {
    n = ring_.pop_bulk(out, max);
    if (n > 0) return n;
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  ++empty_reads_;
  return ring_.pop_bulk(out, max);
}

bool KernEventsClient::next(Event* out, ReadMode mode,
                            const std::atomic<bool>* stop) {
  if (pos_ >= fill_) {
    fill_ = dev_.read(buf_.data(), buf_.size(), mode, stop);
    pos_ = 0;
    if (fill_ == 0) return false;
  }
  *out = buf_[pos_++];
  ++consumed_;
  return true;
}

}  // namespace usk::evmon
