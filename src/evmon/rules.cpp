#include "evmon/rules.hpp"

#include <sstream>

namespace usk::evmon {

// --- ObjectRegistry ------------------------------------------------------------

ObjectRegistry& ObjectRegistry::instance() {
  static ObjectRegistry r;
  return r;
}

void ObjectRegistry::register_object(const void* obj, std::string klass,
                                     std::string name) {
  std::lock_guard lk(mu_);
  map_[obj] = Info{std::move(klass), std::move(name)};
}

void ObjectRegistry::unregister_object(const void* obj) {
  std::lock_guard lk(mu_);
  map_.erase(obj);
}

const ObjectRegistry::Info* ObjectRegistry::find(const void* obj) const {
  std::lock_guard lk(mu_);
  auto it = map_.find(obj);
  return it == map_.end() ? nullptr : &it->second;
}

void ObjectRegistry::clear() {
  std::lock_guard lk(mu_);
  map_.clear();
}

std::size_t ObjectRegistry::size() const {
  std::lock_guard lk(mu_);
  return map_.size();
}

// --- helpers -----------------------------------------------------------------------

std::string_view event_class(std::int32_t type) {
  switch (type) {
    case EventType::kSpinLock:
    case EventType::kSpinUnlock:
      return "spinlock";
    case EventType::kRefInc:
    case EventType::kRefDec:
      return "refcount";
    case EventType::kSemDown:
    case EventType::kSemUp:
      return "semaphore";
    case EventType::kIrqDisable:
    case EventType::kIrqEnable:
      return "irq";
    default:
      return "user";
  }
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative wildcard match with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

// --- RuleSet ----------------------------------------------------------------------------

RuleParseResult RuleSet::parse(std::string_view text) {
  rules_.clear();
  RuleParseResult res;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string action, klass, name;
    if (!(ls >> action)) continue;  // blank
    if (!(ls >> klass >> name)) {
      return {false, line_no, "expected: <monitor|ignore> <class> <name>"};
    }
    std::string extra;
    if (ls >> extra) {
      return {false, line_no, "trailing tokens after rule"};
    }
    Rule r;
    if (action == "monitor") {
      r.action = RuleAction::kMonitor;
    } else if (action == "ignore") {
      r.action = RuleAction::kIgnore;
    } else {
      return {false, line_no, "unknown action '" + action + "'"};
    }
    r.klass_pattern = klass;
    r.name_pattern = name;
    rules_.push_back(std::move(r));
  }
  return res;
}

bool RuleSet::allows(const Event& e) const {
  std::string_view klass = event_class(e.type);
  const ObjectRegistry::Info* info =
      ObjectRegistry::instance().find(e.object);
  std::string_view name = info != nullptr ? std::string_view(info->name)
                                          : std::string_view("<anon>");
  // A registered object may override the type-derived class (e.g., a
  // module-specific counter logged with a user event type).
  if (info != nullptr && !info->klass.empty()) klass = info->klass;

  for (const Rule& r : rules_) {
    if (glob_match(r.klass_pattern, klass) &&
        glob_match(r.name_pattern, name)) {
      if (r.action == RuleAction::kMonitor) {
        ++allowed;
        return true;
      }
      ++suppressed;
      return false;
    }
  }
  ++suppressed;
  return false;  // default deny
}

}  // namespace usk::evmon
