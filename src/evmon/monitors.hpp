// Online in-kernel monitors for higher-level safety invariants.
//
// Paper §3: "In the kernel, there are many properties we would like to
// verify: spinlocks that are locked are later unlocked, reference counters
// are incremented and decremented symmetrically, interrupts that are
// disabled are later re-enabled." Each monitor registers a synchronous
// callback with the dispatcher and checks one such invariant online.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "evmon/dispatcher.hpp"
#include "evmon/event.hpp"

namespace usk::evmon {

/// Common plumbing: attach/detach and anomaly collection.
class MonitorBase {
 public:
  virtual ~MonitorBase() { detach(); }

  void attach(Dispatcher& d) {
    dispatcher_ = &d;
    id_ = d.register_callback([this](const Event& e) { on_event(e); });
  }

  void detach() {
    if (dispatcher_ != nullptr) {
      dispatcher_->unregister_callback(id_);
      dispatcher_ = nullptr;
    }
  }

  [[nodiscard]] const std::vector<std::string>& anomalies() const {
    return anomalies_;
  }
  [[nodiscard]] std::uint64_t events_seen() const { return events_seen_; }

  /// Feed one event directly (offline analysis: replaying a saved log).
  void feed(const Event& e) { on_event(e); }

 protected:
  virtual void on_event(const Event& e) = 0;

  void report(std::string what) { anomalies_.push_back(std::move(what)); }
  std::uint64_t events_seen_ = 0;

 private:
  Dispatcher* dispatcher_ = nullptr;
  Dispatcher::CallbackId id_ = 0;
  std::vector<std::string> anomalies_;
};

/// Verifies spinlock lock/unlock pairing: no double lock, no unlock of an
/// unlocked lock, and (at finish()) no lock still held.
class SpinlockMonitor final : public MonitorBase {
 public:
  void finish();

  [[nodiscard]] std::uint64_t lock_events() const { return lock_events_; }

 protected:
  void on_event(const Event& e) override;

 private:
  std::unordered_map<void*, int> held_;  // object -> depth
  std::unordered_map<void*, std::string> last_site_;
  std::uint64_t lock_events_ = 0;
};

/// Verifies refcount inc/dec symmetry and catches drops below zero.
class RefCountMonitor final : public MonitorBase {
 public:
  /// Report every object whose balance is non-zero (leak or over-put).
  void finish();

  [[nodiscard]] std::int64_t balance(void* object) const;

 protected:
  void on_event(const Event& e) override;

 private:
  std::unordered_map<void*, std::int64_t> balance_;
};

/// Verifies semaphore down/up symmetry.
class SemaphoreMonitor final : public MonitorBase {
 public:
  void finish();

 protected:
  void on_event(const Event& e) override;

 private:
  std::unordered_map<void*, std::int64_t> balance_;
};

/// Verifies that disabled interrupts are re-enabled.
class IrqMonitor final : public MonitorBase {
 public:
  void finish();

  [[nodiscard]] int depth() const { return depth_; }

 protected:
  void on_event(const Event& e) override;

 private:
  int depth_ = 0;
};

}  // namespace usk::evmon
