// Character-device interface to the event ring, plus libkernevents.
//
// Paper §3.3: "user-space event monitors receive events through a
// character device interface to a lock-free ring buffer. ... User-space
// applications can link with libkernevents to copy log entries in bulk
// from the kernel and then read them one by one."
//
// The paper's prototype *polls* the device continuously, which it blames
// for the 61-103 % user-space logger overhead; both the polling mode and
// the blocking mode the authors propose are implemented so the difference
// is measurable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "evmon/event.hpp"
#include "evmon/ring_buffer.hpp"

namespace usk::evmon {

enum class ReadMode {
  kPolling,   ///< spin on the ring (the paper's prototype behaviour)
  kBlocking,  ///< yield/sleep when empty (the proposed fix)
};

/// The /dev/kernevents analogue: user-space's handle on the ring buffer.
/// Every read() models one system call; an optional crossing hook lets the
/// benchmark charge the user/kernel boundary cost per read.
class Chardev {
 public:
  explicit Chardev(RingBuffer& ring) : ring_(ring) {}

  /// Read up to `max` events. In polling mode returns immediately (possibly
  /// 0 events); in blocking mode sleeps until at least one is available or
  /// `stop` becomes true.
  std::size_t read(Event* out, std::size_t max, ReadMode mode,
                   const std::atomic<bool>* stop = nullptr);

  /// Charge hook invoked once per read() call (boundary crossing model).
  void set_crossing_hook(std::function<void()> hook) {
    crossing_hook_ = std::move(hook);
  }

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t empty_reads() const { return empty_reads_; }

 private:
  RingBuffer& ring_;
  std::function<void()> crossing_hook_;
  std::uint64_t reads_ = 0;
  std::uint64_t empty_reads_ = 0;
};

/// libkernevents: buffers bulk reads so the application can consume events
/// one at a time while paying the device-read cost once per batch.
class KernEventsClient {
 public:
  KernEventsClient(Chardev& dev, std::size_t batch = 256)
      : dev_(dev), buf_(batch) {}

  /// Next event, or false if none is available (after one device read).
  bool next(Event* out, ReadMode mode,
            const std::atomic<bool>* stop = nullptr);

  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

 private:
  Chardev& dev_;
  std::vector<Event> buf_;
  std::size_t pos_ = 0;
  std::size_t fill_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace usk::evmon
