#include "evmon/monitors.hpp"

#include <cstdio>

namespace usk::evmon {

namespace {
std::string site(const Event& e) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s:%d", e.file ? e.file : "?", e.line);
  return buf;
}
}  // namespace

// --- SpinlockMonitor ---------------------------------------------------------

void SpinlockMonitor::on_event(const Event& e) {
  if (e.type != EventType::kSpinLock && e.type != EventType::kSpinUnlock) {
    return;
  }
  ++events_seen_;
  int& depth = held_[e.object];
  if (e.type == EventType::kSpinLock) {
    ++lock_events_;
    if (depth != 0) {
      report("double lock of " + site(e) + " (already held from " +
             last_site_[e.object] + ")");
    }
    ++depth;
    last_site_[e.object] = site(e);
  } else {
    if (depth == 0) {
      report("unlock of unlocked lock at " + site(e));
    } else {
      --depth;
    }
  }
}

void SpinlockMonitor::finish() {
  for (const auto& [obj, depth] : held_) {
    if (depth != 0) {
      report("lock still held at finish (acquired at " + last_site_[obj] +
             ")");
    }
  }
}

// --- RefCountMonitor ---------------------------------------------------------

void RefCountMonitor::on_event(const Event& e) {
  if (e.type != EventType::kRefInc && e.type != EventType::kRefDec) return;
  ++events_seen_;
  std::int64_t& b = balance_[e.object];
  if (e.type == EventType::kRefInc) {
    ++b;
  } else {
    --b;
    if (b < 0) {
      report("refcount dropped below its initial value at " + site(e));
    }
  }
}

void RefCountMonitor::finish() {
  for (const auto& [obj, b] : balance_) {
    if (b > 0) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "refcount leak: object %p ended %+lld from baseline",
                    obj, static_cast<long long>(b));
      report(buf);
    }
  }
}

std::int64_t RefCountMonitor::balance(void* object) const {
  auto it = balance_.find(object);
  return it == balance_.end() ? 0 : it->second;
}

// --- SemaphoreMonitor --------------------------------------------------------

void SemaphoreMonitor::on_event(const Event& e) {
  if (e.type != EventType::kSemDown && e.type != EventType::kSemUp) return;
  ++events_seen_;
  std::int64_t& b = balance_[e.object];
  b += (e.type == EventType::kSemDown) ? 1 : -1;
}

void SemaphoreMonitor::finish() {
  for (const auto& [obj, b] : balance_) {
    if (b != 0) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "semaphore imbalance: object %p has %+lld unmatched downs",
                    obj, static_cast<long long>(b));
      report(buf);
    }
  }
}

// --- IrqMonitor ----------------------------------------------------------------

void IrqMonitor::on_event(const Event& e) {
  if (e.type != EventType::kIrqDisable && e.type != EventType::kIrqEnable) {
    return;
  }
  ++events_seen_;
  if (e.type == EventType::kIrqDisable) {
    ++depth_;
  } else {
    --depth_;
    if (depth_ < 0) {
      report("interrupts enabled more times than disabled at " + site(e));
      depth_ = 0;
    }
  }
}

void IrqMonitor::finish() {
  if (depth_ > 0) {
    report("interrupts left disabled at finish (depth " +
           std::to_string(depth_) + ")");
  }
}

}  // namespace usk::evmon
