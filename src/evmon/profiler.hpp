// Lock-hold profiler: bottleneck analysis over the event stream.
//
// Paper §3.5 (event monitoring future work): "We intend to develop
// on-line, in-kernel monitors for reference counters, spinlocks, and
// semaphores, as well as TOOLS THAT ALLOW FOR MORE IN-DEPTH ANALYSIS OF
// PERFORMANCE BOTTLENECKS RELATED TO THESE OBJECTS."
//
// The profiler pairs lock/unlock (and semaphore down/up) events per object
// and accumulates hold-time statistics. Events carry no timestamp (the
// paper's record is deliberately minimal), but in-kernel callbacks run
// synchronously at the instrumentation point, so the profiler's own clock
// reads are the event times.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "evmon/monitors.hpp"

namespace usk::evmon {

struct HoldStats {
  void* object = nullptr;
  std::string site;              ///< acquire site of the longest hold
  std::uint64_t acquisitions = 0;
  std::uint64_t total_hold_ns = 0;
  std::uint64_t max_hold_ns = 0;

  [[nodiscard]] double mean_hold_ns() const {
    return acquisitions ? static_cast<double>(total_hold_ns) /
                              static_cast<double>(acquisitions)
                        : 0.0;
  }
};

class LockProfiler final : public MonitorBase {
 public:
  /// Per-object statistics, sorted by total hold time (worst first).
  [[nodiscard]] std::vector<HoldStats> report() const;

  [[nodiscard]] const HoldStats* stats_for(void* object) const;

 protected:
  void on_event(const Event& e) override;

 private:
  struct Open {
    std::chrono::steady_clock::time_point since;
    std::string site;
    bool held = false;
  };
  std::unordered_map<void*, HoldStats> stats_;
  std::unordered_map<void*, Open> open_;
};

}  // namespace usk::evmon
