// Event dispatcher: the log_event entry point.
//
// Paper §3.3 / Figure 1: "The log_event call invokes an event dispatcher,
// which in turn invokes a set of callbacks. When high performance is
// needed, an event monitor should be developed as a kernel module and
// register a callback with the dispatcher." User-space monitors instead
// receive events via the ring buffer behind the character device.
//
// Dispatch is wait-free with respect to registration: the callback list is
// an immutable snapshot swapped atomically, so log_event never takes a
// lock (it may be called from simulated interrupt context).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "base/sync.hpp"
#include "evmon/event.hpp"
#include "evmon/ring_buffer.hpp"

namespace usk::evmon {

struct DispatcherStats {
  std::uint64_t events = 0;
  std::uint64_t callback_invocations = 0;
  std::uint64_t ring_pushes = 0;
};

class Dispatcher {
 public:
  using Callback = std::function<void(const Event&)>;
  using CallbackId = std::uint32_t;

  Dispatcher();
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Register a synchronous in-kernel monitor callback.
  CallbackId register_callback(Callback cb);
  void unregister_callback(CallbackId id);

  /// Install a selective-instrumentation filter (e.g., a compiled
  /// evmon::RuleSet); events it rejects are dropped before callbacks and
  /// the ring buffer. nullptr removes the filter (everything delivered).
  /// Not safe to change while events are in flight.
  void set_filter(std::function<bool(const Event&)> filter) {
    filter_ = std::move(filter);
  }

  /// Attach/detach the ring buffer feeding user space (nullptr detaches).
  void attach_ring(RingBuffer* ring) {
    ring_.store(ring, std::memory_order_release);
  }

  /// The instrumentation entry point. Safe in any context: callbacks are
  /// invoked synchronously; the ring push never blocks.
  void log_event(void* object, std::int32_t type, const char* file, int line);

  [[nodiscard]] DispatcherStats stats() const {
    return DispatcherStats{events_.load(std::memory_order_relaxed),
                           invocations_.load(std::memory_order_relaxed),
                           ring_pushes_.load(std::memory_order_relaxed)};
  }
  [[nodiscard]] std::size_t callback_count() const;

  /// Bridge base::SyncHooks (spinlocks, refcounts, semaphores, IRQ state)
  /// into this dispatcher. Only one bridge may be active process-wide.
  void install_sync_bridge();
  void remove_sync_bridge();

 private:
  static void sync_bridge_thunk(void* ctx, void* object, base::SyncEvent ev,
                                const char* file, int line);

  struct Entry {
    CallbackId id;
    Callback cb;
  };
  using Snapshot = std::vector<Entry>;

  std::mutex reg_mu_;  // serializes registration only
  std::shared_ptr<const Snapshot> snapshot_;  // swapped under reg_mu_
  std::function<bool(const Event&)> filter_;
  CallbackId next_id_ = 1;
  std::atomic<RingBuffer*> ring_{nullptr};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> invocations_{0};
  std::atomic<std::uint64_t> ring_pushes_{0};
  bool bridge_installed_ = false;
};

#define USK_LOG_EVENT(dispatcher, object, type) \
  (dispatcher).log_event((object), (type), __FILE__, __LINE__)

}  // namespace usk::evmon
