// Event-log persistence and offline analysis.
//
// Paper §3: "we have developed an event monitoring infrastructure with
// support for on-line analysis in the kernel and in user space, as well as
// LOGGING FOR LATER ANALYSIS." The wire format keeps the paper's
// minimal-record philosophy: object id, type, line, and an interned
// file-name table (the char* pointers of live events cannot be persisted).
//
// Workflow: a LogWriter drains events (from the ring or straight from a
// dispatcher callback) into a compact byte image; a LogReader replays the
// image later -- typically into the same monitors used online.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "evmon/event.hpp"
#include "evmon/monitors.hpp"

namespace usk::evmon {

/// Serialized event: fixed-size record with a file-table index.
struct LogRecord {
  std::uint64_t object = 0;
  std::uint64_t seq = 0;
  std::int32_t type = 0;
  std::int32_t line = 0;
  std::uint32_t file_idx = 0;
};

class LogWriter {
 public:
  void append(const Event& e);

  /// Serialize to a self-contained byte image (header, file table,
  /// records).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  [[nodiscard]] std::size_t count() const { return records_.size(); }

 private:
  std::uint32_t intern(const char* file);

  std::vector<std::string> files_;
  std::unordered_map<std::string, std::uint32_t> file_idx_;
  std::vector<LogRecord> records_;
};

/// Parsed log. Strings are owned by the reader; replayed events carry
/// pointers into it, so keep the reader alive while analyzing.
class LogReader {
 public:
  /// Returns false on a malformed image (bad magic, truncation,
  /// out-of-range indices) -- a corrupt log must never crash the analyzer.
  bool parse(const std::vector<std::uint8_t>& image);

  [[nodiscard]] const std::vector<LogRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const std::string& file_name(std::uint32_t idx) const {
    return files_[idx];
  }

  /// Reconstruct the event stream and feed it to a monitor (offline
  /// analysis of a saved log).
  void replay(MonitorBase& monitor) const;

  /// Reconstruct one event.
  [[nodiscard]] Event to_event(const LogRecord& r) const;

 private:
  std::vector<std::string> files_;
  std::vector<LogRecord> records_;
};

}  // namespace usk::evmon
