#include "evmon/dispatcher.hpp"

namespace usk::evmon {

Dispatcher::Dispatcher() : snapshot_(std::make_shared<const Snapshot>()) {}

Dispatcher::~Dispatcher() {
  if (bridge_installed_) remove_sync_bridge();
}

Dispatcher::CallbackId Dispatcher::register_callback(Callback cb) {
  std::lock_guard lk(reg_mu_);
  auto next = std::make_shared<Snapshot>(*snapshot_);
  CallbackId id = next_id_++;
  next->push_back(Entry{id, std::move(cb)});
  std::atomic_store_explicit(&snapshot_,
                             std::shared_ptr<const Snapshot>(std::move(next)),
                             std::memory_order_release);
  return id;
}

void Dispatcher::unregister_callback(CallbackId id) {
  std::lock_guard lk(reg_mu_);
  auto next = std::make_shared<Snapshot>(*snapshot_);
  std::erase_if(*next, [id](const Entry& e) { return e.id == id; });
  std::atomic_store_explicit(&snapshot_,
                             std::shared_ptr<const Snapshot>(std::move(next)),
                             std::memory_order_release);
}

std::size_t Dispatcher::callback_count() const {
  auto snap = std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
  return snap->size();
}

void Dispatcher::log_event(void* object, std::int32_t type, const char* file,
                           int line) {
  Event e;
  e.object = object;
  e.type = type;
  e.file = file;
  e.line = line;
  if (filter_ && !filter_(e)) return;  // selective instrumentation
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  events_.fetch_add(1, std::memory_order_relaxed);

  auto snap = std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
  for (const Entry& entry : *snap) {
    entry.cb(e);
    invocations_.fetch_add(1, std::memory_order_relaxed);
  }

  if (RingBuffer* ring = ring_.load(std::memory_order_acquire)) {
    ring->push(e);  // drop-on-full; never blocks
    ring_pushes_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Dispatcher::sync_bridge_thunk(void* ctx, void* object,
                                   base::SyncEvent ev, const char* file,
                                   int line) {
  auto* self = static_cast<Dispatcher*>(ctx);
  self->log_event(object, static_cast<std::int32_t>(ev), file, line);
}

void Dispatcher::install_sync_bridge() {
  base::SyncHooks::set(&Dispatcher::sync_bridge_thunk, this);
  bridge_installed_ = true;
}

void Dispatcher::remove_sync_bridge() {
  base::SyncHooks::reset();
  bridge_installed_ = false;
}

}  // namespace usk::evmon
