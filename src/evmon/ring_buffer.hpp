// Lock-free bounded ring buffer carrying events from kernel to user space.
//
// Paper §3.3: "user-space event monitors receive events through a
// character device interface to a lock-free ring buffer. Because the ring
// buffer is lock-free, we can instrument code that is invoked during
// interrupt handlers without fear that the interrupt handler will block."
//
// Implementation: the generic Vyukov-style bounded MPMC queue in
// base::MpmcRing (per-slot sequence numbers), instantiated for evmon
// Events. The ktrace per-CPU buffers reuse the same template, so one
// verified lock-free core backs both observability paths. Producers never
// block; when the ring is full the event is dropped and counted, which is
// the only interrupt-safe policy.
#pragma once

#include "base/mpmc_ring.hpp"
#include "evmon/event.hpp"

namespace usk::evmon {

class RingBuffer : public base::MpmcRing<Event> {
 public:
  using base::MpmcRing<Event>::MpmcRing;
};

}  // namespace usk::evmon
