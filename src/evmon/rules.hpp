// Selective-instrumentation rule language (paper §3.5 future work).
//
// "First, we intend to make the compiler capable of inserting
// instrumentation based on rules such as 'instrument every operation on an
// inode's reference count.' ... we plan to develop a language that
// specifies code patterns that the KGCC compiler can then recognize and
// instrument, in the spirit of aspect-oriented programming."
//
// We cannot patch a compiler, so the rules select events at the dispatch
// point instead: kernel objects are registered with a class and a name,
// and a RuleSet compiled from a small declarative language decides which
// events reach the monitors and the ring buffer. One rule per line:
//
//     # instrument every operation on an inode's reference count
//     monitor refcount inode*
//     ignore  spinlock console_lock
//     monitor *        dcache*
//
// Columns: action (monitor|ignore), event class (spinlock, refcount,
// semaphore, irq, user, or *), object-name glob ('*' wildcards). First
// matching rule wins; unmatched events are not instrumented (default
// deny), so a ruleset is also a cheap way to turn most instrumentation
// off.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "evmon/event.hpp"

namespace usk::evmon {

/// Process-wide registry naming monitored kernel objects. Objects are
/// registered by the code that owns them (class + instance name), which is
/// what lets rules talk about "an inode's reference count".
class ObjectRegistry {
 public:
  struct Info {
    std::string klass;  ///< "refcount", "spinlock", ...
    std::string name;   ///< "inode_ref", "dcache_lock", ...
  };

  static ObjectRegistry& instance();

  void register_object(const void* obj, std::string klass, std::string name);
  void unregister_object(const void* obj);
  /// Lookup; returns nullptr for anonymous objects.
  const Info* find(const void* obj) const;
  void clear();
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<const void*, Info> map_;
};

/// Event-class name derived from the event's type code ("spinlock",
/// "refcount", "semaphore", "irq", "user").
std::string_view event_class(std::int32_t type);

/// Glob match supporting '*' (any run of characters) anywhere.
bool glob_match(std::string_view pattern, std::string_view text);

enum class RuleAction { kMonitor, kIgnore };

struct Rule {
  RuleAction action = RuleAction::kMonitor;
  std::string klass_pattern;
  std::string name_pattern;
};

struct RuleParseResult {
  bool ok = true;
  int bad_line = 0;
  std::string error;
};

class RuleSet {
 public:
  /// Parse rule text (one rule per line, '#' comments, blank lines ok).
  RuleParseResult parse(std::string_view text);

  /// Should this event be instrumented? Objects not in the registry match
  /// name "<anon>". First matching rule wins; default is NOT instrumented
  /// (an empty ruleset instruments nothing).
  [[nodiscard]] bool allows(const Event& e) const;

  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }

  // Decision statistics (mutable counters; not thread-safe by design --
  // dispatch in the simulated kernel is serialized).
  mutable std::uint64_t allowed = 0;
  mutable std::uint64_t suppressed = 0;

 private:
  std::vector<Rule> rules_;
};

}  // namespace usk::evmon
