#include "evmon/profiler.hpp"

#include <algorithm>
#include <cstdio>

namespace usk::evmon {

void LockProfiler::on_event(const Event& e) {
  bool acquire = e.type == EventType::kSpinLock ||
                 e.type == EventType::kSemDown;
  bool release = e.type == EventType::kSpinUnlock ||
                 e.type == EventType::kSemUp;
  if (!acquire && !release) return;
  ++events_seen_;

  if (acquire) {
    Open& o = open_[e.object];
    o.since = std::chrono::steady_clock::now();
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%s:%d", e.file ? e.file : "?", e.line);
    o.site = buf;
    o.held = true;
    return;
  }

  auto it = open_.find(e.object);
  if (it == open_.end() || !it->second.held) return;  // unmatched release
  auto now = std::chrono::steady_clock::now();
  auto hold = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                           it->second.since)
          .count());
  it->second.held = false;

  HoldStats& hs = stats_[e.object];
  hs.object = e.object;
  ++hs.acquisitions;
  hs.total_hold_ns += hold;
  if (hold >= hs.max_hold_ns) {
    hs.max_hold_ns = hold;
    hs.site = it->second.site;
  }
}

std::vector<HoldStats> LockProfiler::report() const {
  std::vector<HoldStats> out;
  out.reserve(stats_.size());
  for (const auto& [obj, hs] : stats_) out.push_back(hs);
  std::sort(out.begin(), out.end(), [](const HoldStats& a, const HoldStats& b) {
    return a.total_hold_ns > b.total_hold_ns;
  });
  return out;
}

const HoldStats* LockProfiler::stats_for(void* object) const {
  auto it = stats_.find(object);
  return it == stats_.end() ? nullptr : &it->second;
}

}  // namespace usk::evmon
