// chrome://tracing (Trace Event Format) emitter for drained ktrace
// streams: load the JSON in chrome://tracing or Perfetto and see the
// merged per-CPU timeline with syscall spans per task.
#pragma once

#include <string>
#include <vector>

#include "trace/ktrace.hpp"

namespace usk::trace {

/// Render `events` (a drain() result) as a Trace Event Format JSON array.
/// Matching <subsys>:enter / <subsys>:exit pairs on the same pid become
/// complete ("X") duration events named by arg0 where the subsystem is
/// "syscall"; everything else is an instant ("i") event.
[[nodiscard]] std::string export_chrome(const std::vector<TraceEvent>& events);

/// export_chrome straight to a file; returns false on I/O error.
bool export_chrome_file(const std::vector<TraceEvent>& events,
                        const char* path);

}  // namespace usk::trace
