// ktrace: kernel-wide tracing with per-CPU lock-free buffers.
//
// Design goals, in order:
//   1. Near-zero disabled cost. A tracepoint that is off is one relaxed
//      atomic load of a process-global flag and a predicted-not-taken
//      branch -- nothing else, so instrumented hot paths (the boundary,
//      the dcache) measure the same as uninstrumented ones.
//   2. No lost events while enabled. Each CPU appends to its own
//      base::MpmcRing, so emitters never contend on a shared cache line;
//      a global sequence counter lets the drain path merge the per-CPU
//      streams back into one ordered timeline at a quiescent point,
//      exactly like the audit subsystem's per-CPU buffers.
//   3. Aggregation in the kernel. Log2 latency histograms (eBPF-style)
//      accumulate per-syscall and per-operation latencies with one
//      relaxed increment, so "always-on" percentile observability never
//      needs the event stream at all.
//
// The simulated machine has one tracer (like one ftrace instance); every
// Kernel in the process shares it. Tests call reset() between scenarios.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/mpmc_ring.hpp"
#include "base/percpu.hpp"
#include "trace/histogram.hpp"

namespace usk::trace {

/// One traced event. 48 bytes, fixed size, no heap -- small enough that a
/// 4K-slot per-CPU ring costs ~200 KiB and large enough for two payload
/// words (fd, size, syscall nr, return value...).
struct TraceEvent {
  std::uint64_t seq = 0;    ///< global order (merge key)
  std::uint64_t ts_ns = 0;  ///< steady-clock ns since tracer start
  std::uint32_t pid = 0;    ///< task that emitted (0 = none/unknown)
  std::uint16_t site = 0;   ///< tracepoint site id (see Ktrace::sites)
  std::uint16_t cpu = 0;    ///< emitting CPU
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

namespace detail {
/// THE disabled-cost hot path: one process-global flag, read relaxed.
inline std::atomic<bool> g_enabled{false};
/// Task the calling CPU is currently running (set by the syscall
/// prologue); stamps events so the merged stream can be grouped per task.
inline thread_local std::uint32_t g_current_pid = 0;
}  // namespace detail

[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_current_pid(std::uint32_t pid) {
  detail::g_current_pid = pid;
}

/// A registered tracepoint site (static strings from the macro).
struct SiteInfo {
  const char* subsys = nullptr;
  const char* name = nullptr;
  std::uint64_t hits = 0;
};

/// A named operation histogram (vfs:open, dcache:lookup, ...).
struct OpHistInfo {
  const char* subsys = nullptr;
  const char* name = nullptr;
  HistogramSnapshot hist;
};

class Ktrace {
 public:
  static constexpr std::size_t kMaxSites = 256;
  static constexpr std::size_t kMaxOpHists = 128;
  static constexpr std::size_t kMaxSyscalls = 64;  ///< mirrors uk::Sys range
  static constexpr std::size_t kDefaultRingCapacity = 1 << 14;

  /// The process-wide tracer.
  static Ktrace& instance();

  // --- control --------------------------------------------------------------
  void enable() { detail::g_enabled.store(true, std::memory_order_relaxed); }
  void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool is_enabled() const { return enabled(); }

  /// Per-CPU ring capacity (power of two) for subsequently allocated
  /// rings. Call before enabling; live rings keep their size.
  void configure(std::size_t per_cpu_capacity);

  /// Drop buffered events and zero counters + histograms. Quiescent-point
  /// operation: callers stop emitters first (tests, bench setup).
  void reset();

  // --- tracepoint sites ------------------------------------------------------
  /// Intern (subsys, name) -> site id. Called once per site through the
  /// macro's function-local static; both strings must be literals.
  std::uint16_t register_site(const char* subsys, const char* name);

  /// Registered sites with their hit counts, id order.
  [[nodiscard]] std::vector<SiteInfo> sites() const;

  [[nodiscard]] const char* site_subsys(std::uint16_t site) const;
  [[nodiscard]] const char* site_name(std::uint16_t site) const;

  // --- emit (enabled path) ----------------------------------------------------
  void emit(std::uint16_t site, std::uint64_t a0 = 0, std::uint64_t a1 = 0);

  // --- drain / accounting ----------------------------------------------------
  /// Pop every CPU's buffered events and merge them into one stream
  /// ordered by sequence number. Quiescent-point operation (like the
  /// audit-log drain): run after emitters have stopped or at a barrier.
  [[nodiscard]] std::vector<TraceEvent> drain();

  /// Events emitted (merged per-CPU counters) / dropped on full rings
  /// since the last reset. drained == emitted - dropped, always.
  [[nodiscard]] std::uint64_t emitted() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Per-CPU ring accounting for /proc/trace/stats: one row per CPU that
  /// has ever emitted. Quiescent-point read like every PerCpu merge.
  struct CpuStats {
    std::size_t cpu = 0;
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    std::size_t capacity = 0;
  };
  [[nodiscard]] std::vector<CpuStats> per_cpu_stats() const;

  // --- histograms ------------------------------------------------------------
  /// Record one syscall latency. Always-on (not gated on enable): the
  /// syscall epilogue already has the wall time in hand, so this is one
  /// relaxed increment -- the eBPF per-CPU-map trick without the map.
  void record_syscall(std::uint16_t nr, std::uint64_t ns) {
    syscall_hist_[nr % kMaxSyscalls].record(ns);
  }
  [[nodiscard]] const Histogram& syscall_hist(std::uint16_t nr) const {
    return syscall_hist_[nr % kMaxSyscalls];
  }

  /// Intern a named operation histogram (stable reference; call through a
  /// function-local static). Recording into it is the caller's business
  /// and normally gated on enabled() because it needs clock reads.
  Histogram& op_hist(const char* subsys, const char* name);
  [[nodiscard]] std::vector<OpHistInfo> op_hists() const;

  /// Nanoseconds since tracer construction (the event timestamp base).
  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  Ktrace() : epoch_(std::chrono::steady_clock::now()) {}

  using Ring = base::MpmcRing<TraceEvent>;

  struct SiteSlot {
    const char* subsys = nullptr;
    const char* name = nullptr;
    std::atomic<std::uint64_t> hits{0};
  };
  struct OpHistSlot {
    const char* subsys = nullptr;
    const char* name = nullptr;
    std::unique_ptr<Histogram> hist;
  };
  /// Per-CPU emit state: the ring is allocated on the CPU's first emit so
  /// idle slots cost nothing; `emitted` is owner-thread-only (merged at
  /// quiescent points, like every other PerCpu counter).
  struct CpuBuf {
    std::unique_ptr<Ring> ring;
    std::uint64_t emitted = 0;
    bool drop_warned = false;  ///< first-drop warning fired for this CPU
  };

  const std::chrono::steady_clock::time_point epoch_;

  // Site/ophist registries: fixed arrays + a published count, so emit()
  // indexes without locks while registration appends under the mutex.
  mutable std::mutex reg_mu_;
  std::array<SiteSlot, kMaxSites> sites_{};
  std::atomic<std::uint16_t> site_count_{0};
  std::array<OpHistSlot, kMaxOpHists> op_hists_{};
  std::atomic<std::uint16_t> op_hist_count_{0};

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};
  base::PerCpu<CpuBuf> cpus_;
  std::array<Histogram, kMaxSyscalls> syscall_hist_{};
};

/// Shorthand for the process-wide tracer.
[[nodiscard]] inline Ktrace& ktrace() { return Ktrace::instance(); }

}  // namespace usk::trace
