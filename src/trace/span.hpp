// kspan: request-scoped causal tracing on top of ktrace.
//
// ktrace answers "what happened on this CPU" (point events) and "how do
// syscalls distribute" (log2 histograms); neither can answer "what did
// THIS request do" once a request's work spans a consolidated call, a
// Cosy compound, a ring chain drain, and a ksup quarantine fallback. A
// span is that missing unit: allocated at request ingress (socket
// accept, ring SQE chain head, compound entry), linked to its parent,
// and charged with the crossings / copied bytes / kernel work units of
// every syscall Scope that retires while it is the innermost span on
// the thread.
//
// Discipline (same as USK_TRACEPOINT and the sup gateway):
//   * Disabled cost is ONE relaxed atomic load in the SpanScope
//     constructor and one thread-local load in the syscall epilogue --
//     no clock reads, no allocation, no id traffic.
//   * Propagation is the thread-local span stack. Every vehicle in this
//     kernel executes a request's work on the thread that accepted it
//     (nested dispatch, servercalls, ring drains, and the classic
//     fallback decomposition all included), so parent links come for
//     free and a quarantined extension's decomposed syscalls land in a
//     child span of the original request -- one tree, never orphans.
//   * Span fields are mutated by the owning thread only; finished spans
//     are published to a bounded store (drop-oldest, counted) merged by
//     readers at quiescent points.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "trace/ktrace.hpp"

namespace usk::trace {

/// Which crossing-elimination vehicle carried the span's work.
enum class SpanVehicle : std::uint8_t {
  kNone = 0,      ///< not vehicle-specific (plain syscalls)
  kPlain,         ///< classic per-request syscalls
  kConsolidated,  ///< accept_recv / sendfile server calls
  kCosy,          ///< compound executor
  kRing,          ///< submission-ring chain
  kFallback,      ///< ksup quarantine -> classic decomposition
  kProbe,         ///< ksup re-admission probe
};
[[nodiscard]] const char* span_vehicle_name(SpanVehicle v);

/// One finished (or live) span. `crossings`/`bytes_*`/`kernel_units` are
/// SELF costs: syscalls attribute to the innermost span, so tree totals
/// are computed by readers summing a subtree.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint32_t pid = 0;     ///< task at span open (0 = none)
  std::int32_t ext = -1;     ///< sup::ExtId, -1 = unsupervised
  SpanVehicle vehicle = SpanVehicle::kNone;
  const char* name = "";     ///< static string (span site)
  std::uint64_t start_ns = 0;  ///< ktrace timebase
  std::uint64_t end_ns = 0;
  std::uint64_t crossings = 0;
  std::uint64_t bytes_in = 0;   ///< copy_from_user bytes
  std::uint64_t bytes_out = 0;  ///< copy_to_user bytes
  std::uint64_t kernel_units = 0;
  std::int64_t status = 0;  ///< last error SysRet observed (0 = clean)
};

struct SpanStats {
  std::uint64_t started = 0;
  std::uint64_t finished = 0;  ///< still buffered + dropped
  std::uint64_t dropped = 0;   ///< store overflow (oldest evicted)
  std::uint64_t active = 0;    ///< open right now
};

namespace spandetail {
/// THE disabled-cost hot path for span creation sites.
inline std::atomic<bool> g_span_enabled{false};
}  // namespace spandetail

[[nodiscard]] inline bool span_enabled() {
  return spandetail::g_span_enabled.load(std::memory_order_relaxed);
}

/// Process-wide span store (one per process, like Ktrace). First use
/// honours USK_SPAN=1 so env-driven soaks run span-enabled end to end.
class Kspan {
 public:
  /// Bounded finished-span store: ~1.4 MiB at the default size; overflow
  /// evicts the oldest record and counts it in stats().dropped.
  static constexpr std::size_t kMaxFinished = 1 << 14;

  static Kspan& instance();

  void enable() {
    spandetail::g_span_enabled.store(true, std::memory_order_relaxed);
  }
  void disable() {
    spandetail::g_span_enabled.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] bool is_enabled() const { return span_enabled(); }

  /// Pop every buffered finished span, oldest first. Quiescent-point
  /// operation, like Ktrace::drain.
  [[nodiscard]] std::vector<SpanRecord> drain();
  /// Copy without consuming (the /proc/span/spans renderer).
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  [[nodiscard]] SpanStats stats() const;

  /// Drop buffered spans and zero counters. Does NOT touch live spans:
  /// callers quiesce emitters first (tests, bench setup).
  void reset();

 private:
  friend class SpanScope;
  Kspan();

  std::uint64_t next_id() {
    return id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void publish(const SpanRecord& r);

  std::atomic<std::uint64_t> id_{0};
  std::atomic<std::uint64_t> started_{0};
  std::atomic<std::uint64_t> finished_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::int64_t> active_{0};
  mutable std::mutex mu_;
  std::deque<SpanRecord> store_;
};

[[nodiscard]] inline Kspan& kspan() { return Kspan::instance(); }

/// RAII span. Construct at an ingress or decomposition point; the parent
/// link is whatever span is innermost on this thread. When spans are
/// disabled the constructor is one relaxed load and the object is inert
/// (it does not join the thread-local stack).
class SpanScope {
 public:
  explicit SpanScope(const char* name,
                     SpanVehicle vehicle = SpanVehicle::kNone,
                     std::int32_t ext = -1);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] std::uint64_t id() const { return armed_ ? rec_.id : 0; }

  /// Re-label the span once its real role is known (e.g. an epoll data
  /// event promotes "ws.data" to "ws.request" after a nonempty recv).
  void set_name(const char* name) {
    if (armed_) rec_.name = name;
  }
  void set_ext(std::int32_t ext) {
    if (armed_) rec_.ext = ext;
  }
  void set_status(std::int64_t s) {
    if (armed_) rec_.status = s;
  }
  /// Read *ret at destruction (an InvocationGuard-style result watch).
  void watch_result(const std::int64_t* ret) { watch_ = ret; }

  /// Charge vehicle-internal work that never retires a syscall Scope
  /// (ring chains executed via dispatch_nested under one outer enter).
  void add_units(std::uint64_t units) {
    if (armed_) rec_.kernel_units += units;
  }

  /// The innermost open span on this thread (nullptr if none).
  [[nodiscard]] static SpanScope* current();
  /// Its id, or 0. For annotating point events with the span.
  [[nodiscard]] static std::uint64_t current_id();

  /// Syscall-epilogue attribution (Kernel::Scope destructor): one
  /// crossing plus this call's byte/unit deltas onto `this`.
  void attribute_syscall(std::uint64_t bytes_in, std::uint64_t bytes_out,
                         std::uint64_t units, std::int64_t ret) {
    rec_.crossings += 1;
    rec_.bytes_in += bytes_in;
    rec_.bytes_out += bytes_out;
    rec_.kernel_units += units;
    if (ret < 0) rec_.status = ret;
  }

 private:
  SpanRecord rec_;
  SpanScope* prev_ = nullptr;
  const std::int64_t* watch_ = nullptr;
  bool armed_ = false;
};

/// Render spans (a drain() result) as chrome://tracing JSON: one "X"
/// duration event per span (args carry the attribution counters) plus
/// "s"/"f" flow events binding each child to its parent, so Perfetto
/// draws the request's causal tree across vehicles.
[[nodiscard]] std::string export_chrome_spans(
    const std::vector<SpanRecord>& spans);

}  // namespace usk::trace
