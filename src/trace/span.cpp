#include "trace/span.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace usk::trace {

namespace {

/// Innermost open span on this thread (the propagation mechanism: every
/// vehicle runs a request's work on the accepting thread, so the stack
/// IS the causal chain).
thread_local SpanScope* tl_span = nullptr;

}  // namespace

const char* span_vehicle_name(SpanVehicle v) {
  switch (v) {
    case SpanVehicle::kNone: return "none";
    case SpanVehicle::kPlain: return "plain";
    case SpanVehicle::kConsolidated: return "consolidated";
    case SpanVehicle::kCosy: return "cosy";
    case SpanVehicle::kRing: return "ring";
    case SpanVehicle::kFallback: return "fallback";
    case SpanVehicle::kProbe: return "probe";
  }
  return "?";
}

Kspan& Kspan::instance() {
  static Kspan s;
  return s;
}

Kspan::Kspan() {
  // Env arming lets the `obs` ctest soak run whole suites span-enabled
  // without touching each test (the USK_FAIL_SPEC / USK_SUP_SPEC idiom).
  if (const char* v = std::getenv("USK_SPAN")) {
    if (v[0] == '1' && v[1] == '\0') enable();
  }
}

void Kspan::publish(const SpanRecord& r) {
  finished_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lk(mu_);
  store_.push_back(r);
  if (store_.size() > kMaxFinished) {
    store_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanRecord> Kspan::drain() {
  std::lock_guard lk(mu_);
  std::vector<SpanRecord> out(store_.begin(), store_.end());
  store_.clear();
  return out;
}

std::vector<SpanRecord> Kspan::snapshot() const {
  std::lock_guard lk(mu_);
  return {store_.begin(), store_.end()};
}

SpanStats Kspan::stats() const {
  SpanStats s;
  s.started = started_.load(std::memory_order_relaxed);
  s.finished = finished_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  const std::int64_t act = active_.load(std::memory_order_relaxed);
  s.active = act > 0 ? static_cast<std::uint64_t>(act) : 0;
  return s;
}

void Kspan::reset() {
  std::lock_guard lk(mu_);
  store_.clear();
  id_.store(0, std::memory_order_relaxed);
  started_.store(0, std::memory_order_relaxed);
  finished_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  active_.store(0, std::memory_order_relaxed);
}

SpanScope::SpanScope(const char* name, SpanVehicle vehicle,
                     std::int32_t ext) {
  if (!span_enabled()) [[likely]] {
    return;  // inert: not on the stack, nothing allocated
  }
  Kspan& ks = kspan();
  rec_.id = ks.next_id();
  rec_.parent = tl_span != nullptr ? tl_span->rec_.id : 0;
  rec_.pid = detail::g_current_pid;
  rec_.ext = ext;
  rec_.vehicle = vehicle;
  rec_.name = name;
  rec_.start_ns = ktrace().now_ns();
  ks.started_.fetch_add(1, std::memory_order_relaxed);
  ks.active_.fetch_add(1, std::memory_order_relaxed);
  prev_ = tl_span;
  tl_span = this;
  armed_ = true;
}

SpanScope::~SpanScope() {
  if (!armed_) return;
  tl_span = prev_;
  if (watch_ != nullptr && *watch_ < 0) rec_.status = *watch_;
  rec_.end_ns = ktrace().now_ns();
  Kspan& ks = kspan();
  ks.active_.fetch_sub(1, std::memory_order_relaxed);
  ks.publish(rec_);
}

SpanScope* SpanScope::current() { return tl_span; }

std::uint64_t SpanScope::current_id() {
  return tl_span != nullptr ? tl_span->rec_.id : 0;
}

std::string export_chrome_spans(const std::vector<SpanRecord>& spans) {
  std::string out = "[";
  bool first = true;
  char buf[512];
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    const double ts_us = static_cast<double>(s.start_ns) / 1000.0;
    const double dur_us =
        static_cast<double>(s.end_ns >= s.start_ns ? s.end_ns - s.start_ns
                                                   : 0) /
        1000.0;
    std::snprintf(
        buf, sizeof buf,
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":%u,\"tid\":%u,\"args\":{\"span\":%" PRIu64
        ",\"parent\":%" PRIu64 ",\"ext\":%d,\"crossings\":%" PRIu64
        ",\"bytes_in\":%" PRIu64 ",\"bytes_out\":%" PRIu64
        ",\"kernel_units\":%" PRIu64 ",\"status\":%" PRId64 "}}",
        s.name, span_vehicle_name(s.vehicle), ts_us, dur_us, s.pid, s.pid,
        s.id, s.parent, s.ext, s.crossings, s.bytes_in, s.bytes_out,
        s.kernel_units, s.status);
    out += buf;
    if (s.parent != 0) {
      // Flow pair: an "s" (start) at the parent's timeline position and
      // an "f" (finish) at the child's start, keyed by the child id --
      // Perfetto draws the arrow parent -> child.
      std::snprintf(buf, sizeof buf,
                    ",{\"name\":\"span\",\"cat\":\"flow\",\"ph\":\"s\","
                    "\"id\":%" PRIu64
                    ",\"ts\":%.3f,\"pid\":%u,\"tid\":%u}"
                    ",{\"name\":\"span\",\"cat\":\"flow\",\"ph\":\"f\","
                    "\"bp\":\"e\",\"id\":%" PRIu64
                    ",\"ts\":%.3f,\"pid\":%u,\"tid\":%u}",
                    s.id, ts_us, s.pid, s.pid, s.id, ts_us, s.pid, s.pid);
      out += buf;
    }
  }
  out += "]";
  return out;
}

}  // namespace usk::trace
