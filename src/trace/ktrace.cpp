#include "trace/ktrace.hpp"

#include <algorithm>
#include <cstring>

#include "base/klog.hpp"

namespace usk::trace {

Ktrace& Ktrace::instance() {
  static Ktrace t;
  return t;
}

void Ktrace::configure(std::size_t per_cpu_capacity) {
  // Round up to a power of two (ring requirement).
  std::size_t cap = 1;
  while (cap < per_cpu_capacity) cap <<= 1;
  ring_capacity_.store(cap, std::memory_order_relaxed);
}

std::uint16_t Ktrace::register_site(const char* subsys, const char* name) {
  std::lock_guard lk(reg_mu_);
  std::uint16_t n = site_count_.load(std::memory_order_relaxed);
  for (std::uint16_t i = 0; i < n; ++i) {
    if (std::strcmp(sites_[i].subsys, subsys) == 0 &&
        std::strcmp(sites_[i].name, name) == 0) {
      return i;
    }
  }
  if (n >= kMaxSites) return kMaxSites - 1;  // overflow bucket
  sites_[n].subsys = subsys;
  sites_[n].name = name;
  site_count_.store(static_cast<std::uint16_t>(n + 1),
                    std::memory_order_release);
  return n;
}

std::vector<SiteInfo> Ktrace::sites() const {
  std::uint16_t n = site_count_.load(std::memory_order_acquire);
  std::vector<SiteInfo> out;
  out.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    out.push_back(SiteInfo{sites_[i].subsys, sites_[i].name,
                           sites_[i].hits.load(std::memory_order_relaxed)});
  }
  return out;
}

const char* Ktrace::site_subsys(std::uint16_t site) const {
  return site < site_count_.load(std::memory_order_acquire)
             ? sites_[site].subsys
             : "?";
}

const char* Ktrace::site_name(std::uint16_t site) const {
  return site < site_count_.load(std::memory_order_acquire)
             ? sites_[site].name
             : "?";
}

void Ktrace::emit(std::uint16_t site, std::uint64_t a0, std::uint64_t a1) {
  TraceEvent e;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.ts_ns = now_ns();
  e.pid = detail::g_current_pid;
  e.site = site;
  e.cpu = static_cast<std::uint16_t>(base::current_cpu());
  e.arg0 = a0;
  e.arg1 = a1;
  CpuBuf& buf = cpus_.local();
  if (!buf.ring) {
    buf.ring = std::make_unique<Ring>(
        ring_capacity_.load(std::memory_order_relaxed));
  }
  ++buf.emitted;
  if (!buf.ring->push(e) && !buf.drop_warned) {
    // Full ring: the event is dropped (counted by the ring). Losing
    // events silently turns every downstream analysis subtly wrong, so
    // the FIRST drop on each CPU warns; /proc/trace/stats carries the
    // running counts from then on.
    buf.drop_warned = true;
    USK_KLOG_RATELIMIT_NAMED(
        "trace.drop", base::LogLevel::kWarn, 8u,
        "ktrace: cpu %u dropping events (ring full, capacity %zu); "
        "drain more often or configure() a larger ring",
        static_cast<unsigned>(e.cpu), buf.ring->capacity());
  }
  if (site < site_count_.load(std::memory_order_acquire)) {
    sites_[site].hits.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<TraceEvent> Ktrace::drain() {
  std::vector<TraceEvent> out;
  cpus_.for_each([&](CpuBuf& buf) {
    if (!buf.ring) return;
    TraceEvent e;
    while (buf.ring->pop(&e)) out.push_back(e);
  });
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::uint64_t Ktrace::emitted() const {
  std::uint64_t sum = 0;
  cpus_.for_each([&](const CpuBuf& buf) { sum += buf.emitted; });
  return sum;
}

std::uint64_t Ktrace::dropped() const {
  std::uint64_t sum = 0;
  cpus_.for_each([&](const CpuBuf& buf) {
    if (buf.ring) sum += buf.ring->dropped();
  });
  return sum;
}

std::vector<Ktrace::CpuStats> Ktrace::per_cpu_stats() const {
  std::vector<CpuStats> out;
  for (std::size_t cpu = 0; cpu < base::PerCpu<CpuBuf>::size(); ++cpu) {
    const CpuBuf& buf = cpus_.slot(cpu);
    if (buf.emitted == 0 && !buf.ring) continue;
    CpuStats s;
    s.cpu = cpu;
    s.emitted = buf.emitted;
    s.dropped = buf.ring ? buf.ring->dropped() : 0;
    s.capacity = buf.ring ? buf.ring->capacity() : 0;
    out.push_back(s);
  }
  return out;
}

void Ktrace::reset() {
  cpus_.for_each([&](CpuBuf& buf) {
    // Recreate rather than drain: also zeroes the ring's drop counters.
    buf.ring.reset();
    buf.emitted = 0;
    buf.drop_warned = false;
  });
  seq_.store(0, std::memory_order_relaxed);
  std::uint16_t n = site_count_.load(std::memory_order_acquire);
  for (std::uint16_t i = 0; i < n; ++i) {
    sites_[i].hits.store(0, std::memory_order_relaxed);
  }
  for (auto& h : syscall_hist_) h.reset();
  std::uint16_t m = op_hist_count_.load(std::memory_order_acquire);
  for (std::uint16_t i = 0; i < m; ++i) op_hists_[i].hist->reset();
}

Histogram& Ktrace::op_hist(const char* subsys, const char* name) {
  std::lock_guard lk(reg_mu_);
  std::uint16_t n = op_hist_count_.load(std::memory_order_relaxed);
  for (std::uint16_t i = 0; i < n; ++i) {
    if (std::strcmp(op_hists_[i].subsys, subsys) == 0 &&
        std::strcmp(op_hists_[i].name, name) == 0) {
      return *op_hists_[i].hist;
    }
  }
  std::uint16_t slot = n < kMaxOpHists ? n : kMaxOpHists - 1;
  if (n < kMaxOpHists) {
    op_hists_[slot].subsys = subsys;
    op_hists_[slot].name = name;
    op_hists_[slot].hist = std::make_unique<Histogram>();
    op_hist_count_.store(static_cast<std::uint16_t>(n + 1),
                         std::memory_order_release);
  }
  return *op_hists_[slot].hist;
}

std::vector<OpHistInfo> Ktrace::op_hists() const {
  std::uint16_t n = op_hist_count_.load(std::memory_order_acquire);
  std::vector<OpHistInfo> out;
  out.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    out.push_back(OpHistInfo{op_hists_[i].subsys, op_hists_[i].name,
                             op_hists_[i].hist->snapshot()});
  }
  return out;
}

}  // namespace usk::trace
