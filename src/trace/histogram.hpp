// Log2 latency histograms, eBPF-style.
//
// The eBPF runtime the related-work paper describes aggregates latencies
// in kernel context with power-of-2 buckets so the hot path pays one
// increment and user space renders percentiles later. Same deal here:
// record() is a single relaxed fetch_add into the bucket holding the
// value (bucket i >= 1 covers [2^(i-1), 2^i)), plus count/sum/max
// counters so /proc can print averages without walking buckets.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace usk::trace {

/// Plain (non-atomic) copy of a histogram for rendering/merging.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 44;  ///< up to 2^43 ns (~2.4 h)

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : (1ull << (i - 1));
  }
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t i) {
    return (1ull << i) - 1;
  }

  [[nodiscard]] std::uint64_t avg() const {
    return count == 0 ? 0 : sum / count;
  }

  /// Approximate p-th percentile (p in [0,100]): the upper bound of the
  /// bucket where the cumulative count crosses p% -- the same resolution
  /// an eBPF log2 map gives.
  [[nodiscard]] std::uint64_t percentile(double p) const {
    if (count == 0) return 0;
    const double target = static_cast<double>(count) * p / 100.0;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += buckets[i];
      if (static_cast<double>(cum) >= target && buckets[i] > 0) {
        return std::min(bucket_hi(i), max);
      }
    }
    return max;
  }

  void merge(const HistogramSnapshot& o) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    max = std::max(max, o.max);
  }
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  /// Bucket index for `v`: 0 for 0, else bit_width clamped to the table.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    return std::min<std::size_t>(kBuckets - 1, std::bit_width(v));
  }

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace usk::trace
