// USK_TRACEPOINT: the instrumentation facade every subsystem uses.
//
//   USK_TRACEPOINT("vfs", "open");             // no payload
//   USK_TRACEPOINT("mm", "kmalloc", size);     // one payload word
//   USK_TRACEPOINT("syscall", "exit", nr, ret) // two payload words
//
// Disabled cost is ONE relaxed atomic load + a predicted branch; nothing
// is computed, registered, or allocated until the first enabled hit, when
// the function-local static interns the site with the tracer. This is the
// kernel tracepoint discipline (static-branch-off by default) in portable
// C++ clothes.
//
// USK_TRACE_LATENCY(subsys, name) drops an RAII timer into the enclosing
// scope that records into the interned log2 histogram -- but only samples
// the clock when tracing is enabled, so disabled cost is again one load.
#pragma once

#include <chrono>

#include "trace/ktrace.hpp"

#define USK_TRACE_CAT2_(a, b) a##b
#define USK_TRACE_CAT_(a, b) USK_TRACE_CAT2_(a, b)

#define USK_TRACEPOINT(subsys, name, ...)                              \
  do {                                                                 \
    if (::usk::trace::enabled()) [[unlikely]] {                        \
      static const std::uint16_t _usk_tp_id =                          \
          ::usk::trace::ktrace().register_site((subsys), (name));      \
      ::usk::trace::ktrace().emit(_usk_tp_id __VA_OPT__(, )            \
                                      __VA_ARGS__);                    \
    }                                                                  \
  } while (0)

namespace usk::trace {

/// Records scope duration into a histogram; samples the clock only while
/// tracing is enabled so the disabled path stays branch-only.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h) : h_(h), armed_(enabled()) {
    if (armed_) [[unlikely]] {
      t0_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedLatency() {
    if (armed_) [[unlikely]] {
      h_.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0_)
              .count()));
    }
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram& h_;
  bool armed_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace usk::trace

#define USK_TRACE_LATENCY(subsys, name)                                    \
  static ::usk::trace::Histogram& USK_TRACE_CAT_(_usk_lat_h, __LINE__) =   \
      ::usk::trace::ktrace().op_hist((subsys), (name));                    \
  ::usk::trace::ScopedLatency USK_TRACE_CAT_(_usk_lat_s, __LINE__) {       \
    USK_TRACE_CAT_(_usk_lat_h, __LINE__)                                   \
  }
