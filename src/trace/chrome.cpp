#include "trace/chrome.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <unordered_map>

namespace usk::trace {

namespace {

void append_common(std::string* out, const TraceEvent& e) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"ts\":%.3f,\"pid\":%u,\"tid\":%u,\"args\":{\"seq\":%" PRIu64
                ",\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64 "}",
                static_cast<double>(e.ts_ns) / 1000.0, e.pid, e.cpu, e.seq,
                e.arg0, e.arg1);
  out->append(buf);
}

}  // namespace

std::string export_chrome(const std::vector<TraceEvent>& events) {
  Ktrace& kt = ktrace();
  std::string out = "[";
  bool first = true;
  // Open "syscall:enter" per pid, waiting for the matching exit.
  std::unordered_map<std::uint32_t, TraceEvent> open_syscall;

  for (const TraceEvent& e : events) {
    const char* subsys = kt.site_subsys(e.site);
    const char* name = kt.site_name(e.site);
    if (std::strcmp(subsys, "syscall") == 0) {
      if (std::strcmp(name, "enter") == 0) {
        open_syscall[e.pid] = e;
        continue;
      }
      if (std::strcmp(name, "exit") == 0) {
        auto it = open_syscall.find(e.pid);
        if (it != open_syscall.end() && it->second.arg0 == e.arg0) {
          const TraceEvent& enter = it->second;
          if (!first) out += ",";
          first = false;
          char buf[96];
          std::snprintf(buf, sizeof(buf),
                        "{\"name\":\"sys_%" PRIu64
                        "\",\"ph\":\"X\",\"dur\":%.3f,",
                        e.arg0,
                        static_cast<double>(e.ts_ns - enter.ts_ns) / 1000.0);
          out += buf;
          append_common(&out, enter);
          out += "}";
          open_syscall.erase(it);
          continue;
        }
      }
    }
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += subsys;
    out += ":";
    out += name;
    out += "\",\"ph\":\"i\",\"s\":\"t\",";
    append_common(&out, e);
    out += "}";
  }
  out += "]";
  return out;
}

bool export_chrome_file(const std::vector<TraceEvent>& events,
                        const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::string json = export_chrome(events);
  std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

}  // namespace usk::trace
