// The kernel half of kring: ring lifecycle, the submission engine, and
// the quarantine fallback. See ring.hpp for the ABI contract.

#include "ring/ring.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include "dl/dl.hpp"
#include "fault/kfail.hpp"
#include "sup/supervisor.hpp"
#include "trace/span.hpp"
#include "trace/tracepoint.hpp"

namespace usk::ring {

namespace {

/// Sentinel fs_id for ring descriptors (the SocketFs convention: rings
/// take no part in path walks or mount bookkeeping).
constexpr std::uint32_t kRingFsId = 0xFFFFFFFEu;

// Modelled engine work, in kernel units.
constexpr std::uint64_t kSetupUnits = 600;        ///< ring allocation
constexpr std::uint64_t kSetupPerKib = 8;         ///< arena zeroing
constexpr std::uint64_t kSqeDispatchUnits = 24;   ///< SQE fetch + validate
constexpr std::uint64_t kSqeRevalidateUnits = 64; ///< transient corrupt redo
constexpr std::uint64_t kCqeRetryUnits = 32;      ///< transient drop repost

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* ring_op_name(RingOp op) {
  switch (op) {
    case RingOp::kNop: return "nop";
    case RingOp::kOpen: return "open";
    case RingOp::kClose: return "close";
    case RingOp::kRead: return "read";
    case RingOp::kWrite: return "write";
    case RingOp::kFstat: return "fstat";
    case RingOp::kAccept: return "accept";
    case RingOp::kRecv: return "recv";
    case RingOp::kSend: return "send";
    case RingOp::kShutdown: return "shutdown";
  }
  return "?";
}

RingStats& RingStats::operator+=(const RingStats& o) {
  enters += o.enters;
  enters_fallback += o.enters_fallback;
  sqes += o.sqes;
  chains += o.chains;
  chains_failed += o.chains_failed;
  chains_malformed += o.chains_malformed;
  cqes_posted += o.cqes_posted;
  cqes_canceled += o.cqes_canceled;
  fds_rolled_back += o.fds_rolled_back;
  cq_backpressure += o.cq_backpressure;
  sqes_discarded += o.sqes_discarded;
  sqe_corrupt_hard += o.sqe_corrupt_hard;
  sqe_corrupt_transient += o.sqe_corrupt_transient;
  cqe_drop_hard += o.cqe_drop_hard;
  cqe_drop_transient += o.cqe_drop_transient;
  return *this;
}

// --- Ring -------------------------------------------------------------------

bool Ring::user_prepare(const Sqe& e) {
  if (closed()) return false;
  if (!sq_.push(e)) return false;  // SQ full: counted in sq_.dropped()
  // Doorbell: wake a drainer parked in ring_enter. The push above
  // happened before the wake, and the sleeper took its token before
  // re-reading the SQ, so the handshake is lossless.
  wq_.wake_all();
  return true;
}

RingStats Ring::stats() const {
  RingStats s;
  s.enters = n_.enters.load(std::memory_order_relaxed);
  s.enters_fallback = n_.enters_fallback.load(std::memory_order_relaxed);
  s.sqes = n_.sqes.load(std::memory_order_relaxed);
  s.chains = n_.chains.load(std::memory_order_relaxed);
  s.chains_failed = n_.chains_failed.load(std::memory_order_relaxed);
  s.chains_malformed = n_.chains_malformed.load(std::memory_order_relaxed);
  s.cqes_posted = n_.cqes_posted.load(std::memory_order_relaxed);
  s.cqes_canceled = n_.cqes_canceled.load(std::memory_order_relaxed);
  s.fds_rolled_back = n_.fds_rolled_back.load(std::memory_order_relaxed);
  s.cq_backpressure = n_.cq_backpressure.load(std::memory_order_relaxed);
  s.sqes_discarded = n_.sqes_discarded.load(std::memory_order_relaxed);
  s.sqe_corrupt_hard = n_.sqe_corrupt_hard.load(std::memory_order_relaxed);
  s.sqe_corrupt_transient =
      n_.sqe_corrupt_transient.load(std::memory_order_relaxed);
  s.cqe_drop_hard = n_.cqe_drop_hard.load(std::memory_order_relaxed);
  s.cqe_drop_transient =
      n_.cqe_drop_transient.load(std::memory_order_relaxed);
  return s;
}

// --- RingFs -----------------------------------------------------------------

Result<void> RingFs::getattr(fs::InodeNum ino, fs::StatBuf* st) {
  std::shared_ptr<Ring> r = dev_.find_ring(ino);
  if (r == nullptr) return Errno::kEINVAL;
  *st = fs::StatBuf{};
  st->ino = ino;
  st->type = fs::FileType::kRegular;
  st->mode = 0600;
  st->size = r->cq_size();  // reapable completions, like FIONREAD
  return Errno::kOk;
}

void RingFs::release_file(fs::InodeNum ino) { dev_.fd_released(ino); }

void RingFs::dup_file(fs::InodeNum ino) { dev_.fd_duped(ino); }

// --- RingDev lifecycle ------------------------------------------------------

RingDev::RingDev(uk::Kernel& k, net::Net& net)
    : k_(k), net_(net), ringfs_(*this) {
  k_.register_syscall(uk::Sys::kRingSetup, &RingDev::sysc_setup, this);
  k_.register_syscall(uk::Sys::kRingEnter, &RingDev::sysc_enter, this);
}

RingDev::~RingDev() {
  k_.unregister_syscall(uk::Sys::kRingSetup);
  k_.unregister_syscall(uk::Sys::kRingEnter);
}

SysRet RingDev::sysc_setup(void* ctx, uk::Kernel& /*k*/, uk::Process& p,
                           const uk::Kernel::SysArgs& a) {
  return static_cast<RingDev*>(ctx)->sys_ring_setup(
      p, static_cast<std::uint32_t>(a.a0), static_cast<std::uint32_t>(a.a1));
}

SysRet RingDev::sysc_enter(void* ctx, uk::Kernel& /*k*/, uk::Process& p,
                           const uk::Kernel::SysArgs& a) {
  return static_cast<RingDev*>(ctx)->sys_ring_enter(
      p, static_cast<int>(a.a0), static_cast<std::uint32_t>(a.a1),
      static_cast<std::uint32_t>(a.a2),
      static_cast<int>(static_cast<std::int64_t>(a.a3)));
}

void RingDev::charge(std::uint64_t units) {
  k_.engine().alu(units);
  if (sched::Task* t = k_.scheduler().current()) t->charge_kernel(units);
}

Result<std::shared_ptr<Ring>> RingDev::ring_of(uk::Process& p, int fd) {
  fs::OpenFile* f = p.fds.get(fd);
  if (f == nullptr) return Errno::kEBADF;
  if (f->fsp != &ringfs_) return Errno::kEBADF;  // not a ring fd
  std::shared_ptr<Ring> r = find_ring(f->ino);
  if (r == nullptr || r->closed()) return Errno::kEBADF;
  return r;
}

std::shared_ptr<Ring> RingDev::find_ring(fs::InodeNum ino) const {
  std::lock_guard lk(tab_mu_);
  auto it = rings_.find(ino);
  return it == rings_.end() ? nullptr : it->second;
}

std::size_t RingDev::live_rings() const {
  std::lock_guard lk(tab_mu_);
  return rings_.size();
}

void RingDev::fd_duped(fs::InodeNum ino) {
  if (std::shared_ptr<Ring> r = find_ring(ino)) {
    r->refs_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RingDev::fd_released(fs::InodeNum ino) {
  std::shared_ptr<Ring> r = find_ring(ino);
  if (r == nullptr) return;
  if (r->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) close_ring(r);
}

void RingDev::close_ring(const std::shared_ptr<Ring>& r) {
  r->closed_.store(true, std::memory_order_release);
  {
    // Exclusive with a drain in progress: once we hold drain_mu_ no new
    // chain starts, and the closed flag stops the next one.
    std::lock_guard dlk(r->drain_mu_);
    // Close-with-inflight-ops: every queued-but-undrained SQE completes
    // with -ECANCELED so a reaper (the mapping outlives the fd, like a
    // real mmap) sees a completion for everything it submitted. CQ
    // space can run out here; the overflow is counted, not blocked on.
    Sqe e;
    while (r->sq_.pop(&e)) {
      if (r->cq_.push(Cqe{e.user_data, sysret_err(Errno::kECANCELED)})) {
        r->n_.cqes_posted.fetch_add(1, std::memory_order_relaxed);
        r->n_.cqes_canceled.fetch_add(1, std::memory_order_relaxed);
      }
      r->n_.sqes_discarded.fetch_add(1, std::memory_order_relaxed);
    }
  }
  r->wq_.wake_all();  // unblock parked enters: they see closed()
  std::lock_guard lk(tab_mu_);
  retired_ += r->stats();
  rings_.erase(r->ino());
  USK_TRACEPOINT("ring", "close", static_cast<std::uint64_t>(r->ino()));
}

// --- setup ------------------------------------------------------------------

SysRet RingDev::sys_ring_setup(uk::Process& p, std::uint32_t entries,
                               std::uint32_t data_bytes) {
  uk::Kernel::Scope scope(k_, p, uk::Sys::kRingSetup);
  if (SysRet g = scope.gate(); g != 0) return g;
  USK_TRACEPOINT("ring", "setup", entries, data_bytes);
  if (entries == 0 || entries > kMaxSqEntries || data_bytes > kMaxDataBytes) {
    return scope.fail(Errno::kEINVAL);
  }
  const std::size_t sq_entries = round_pow2(entries);
  // Modelled allocation: ring headers + arena zeroing.
  charge(kSetupUnits + kSetupPerKib * ((data_bytes + 1023) / 1024));
  std::shared_ptr<Ring> r;
  {
    std::lock_guard lk(tab_mu_);
    r = std::make_shared<Ring>(next_ino_++, p.task.pid(), sq_entries,
                               data_bytes);
    rings_[r->ino()] = r;
  }
  fs::OpenFile f;
  f.ino = r->ino();
  f.flags = fs::kORdWr;
  f.fsp = &ringfs_;
  f.fs_id = kRingFsId;
  Result<int> fd = p.fds.install(f);
  if (!fd) {
    std::lock_guard lk(tab_mu_);
    rings_.erase(r->ino());
    return scope.fail(fd.error());
  }
  return scope.done(fd.value());
}

Result<std::shared_ptr<Ring>> RingDev::user_map(uk::Process& p, int ringfd) {
  // The mmap analogue: no crossing, no copy -- the caller gets direct
  // access to the shared queues, which is the whole point of rings.
  return ring_of(p, ringfd);
}

Result<void> RingDev::supervise(uk::Process& p, int ringfd,
                                sup::Supervisor& s, int ext_id) {
  Result<std::shared_ptr<Ring>> r = ring_of(p, ringfd);
  if (!r) return r.error();
  r.value()->ext_.store(ext_id, std::memory_order_release);
  r.value()->sup_.store(&s, std::memory_order_release);
  return Errno::kOk;
}

// --- the submission engine --------------------------------------------------

SysRet RingDev::exec_sqe(uk::Process& p, Ring& r, const Sqe& e, int fd,
                         bool classic) {
  using uk::Kernel;
  using uk::Sys;
  switch (e.op) {
    case RingOp::kNop:
      return 0;
    case RingOp::kOpen: {
      const std::byte* path = r.user_data(e.addr, e.len);
      if (path == nullptr || e.len == 0) return sysret_err(Errno::kEFAULT);
      // The path must be NUL-terminated inside its window: an
      // unterminated string would walk the engine off the shared arena.
      if (std::memchr(path, 0, e.len) == nullptr) {
        return sysret_err(Errno::kEFAULT);
      }
      const char* cpath = reinterpret_cast<const char*>(path);
      const int flags = static_cast<int>(e.aux);
      if (classic) return k_.sys_open(p, cpath, flags, 0644);
      return k_.dispatch_nested(
          p, Sys::kOpen,
          {Kernel::uarg(cpath), static_cast<std::uint64_t>(flags), 0644, 0});
    }
    case RingOp::kClose:
      if (classic) return k_.sys_close(p, fd);
      return k_.dispatch_nested(p, Sys::kClose,
                                {static_cast<std::uint64_t>(fd), 0, 0, 0});
    case RingOp::kRead: {
      std::byte* buf = r.user_data(e.addr, e.len);
      // EBADF-before-EFAULT is the handler's job (regression-tested):
      // pass the out-of-window buffer through as nullptr.
      if (classic) return k_.sys_read(p, fd, buf, e.len);
      return k_.dispatch_nested(p, Sys::kRead,
                                {static_cast<std::uint64_t>(fd),
                                 Kernel::uarg(buf), e.len, 0});
    }
    case RingOp::kWrite: {
      std::byte* buf = r.user_data(e.addr, e.len);
      if (classic) return k_.sys_write(p, fd, buf, e.len);
      return k_.dispatch_nested(p, Sys::kWrite,
                                {static_cast<std::uint64_t>(fd),
                                 Kernel::uarg(buf), e.len, 0});
    }
    case RingOp::kFstat: {
      std::byte* buf = r.user_data(e.addr, sizeof(fs::StatBuf));
      if (classic) {
        return k_.sys_fstat(p, fd, reinterpret_cast<fs::StatBuf*>(buf));
      }
      return k_.dispatch_nested(
          p, Sys::kFstat,
          {static_cast<std::uint64_t>(fd), Kernel::uarg(buf), 0, 0});
    }
    case RingOp::kAccept:
      if (classic) return net_.sys_accept(p, fd);
      return net_.do_accept(p, fd);
    case RingOp::kRecv: {
      std::byte* buf = r.user_data(e.addr, e.len);
      if (classic) return net_.sys_recv(p, fd, buf, e.len);
      return net_.do_recv(p, fd, buf, e.len);
    }
    case RingOp::kSend: {
      std::byte* buf = r.user_data(e.addr, e.len);
      if (classic) return net_.sys_send(p, fd, buf, e.len);
      return net_.do_send(p, fd, buf, e.len);
    }
    case RingOp::kShutdown:
      if (classic) return net_.sys_shutdown(p, fd, static_cast<int>(e.aux));
      return net_.do_shutdown(p, fd, static_cast<int>(e.aux));
  }
  return sysret_err(Errno::kEINVAL);  // unknown opcode
}

void RingDev::exec_chain(uk::Process& p, Ring& r,
                         const std::vector<Sqe>& chain, bool classic,
                         Errno* violation, std::vector<Cqe>& out) {
  // One span per chain (the ring's request unit), a child of whatever
  // span submitted the enter (chains drain on the submitting thread).
  // Classic decomposition keeps the same parent, so a quarantined
  // ring's fallback work stays inside the original request tree.
  sup::InvocationGuard* g = sup::InvocationGuard::current();
  trace::SpanScope span(classic ? "ring.chain.classic" : "ring.chain",
                        classic ? trace::SpanVehicle::kFallback
                                : trace::SpanVehicle::kRing,
                        g != nullptr ? g->ext() : -1);
  const std::uint64_t kunits0 = p.task.times().kernel;
  ChainCtx cc;
  bool failed = false;
  out.reserve(out.size() + chain.size());
  for (const Sqe& e : chain) {
    if (failed) {
      out.push_back(Cqe{e.user_data, sysret_err(Errno::kECANCELED)});
      r.n_.cqes_canceled.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // kdl: cancel-on-deadline between SQEs. Failing THIS SQE with
    // ETIMEDOUT/ECANCELED reuses the cancel cascade and fd rollback
    // below, so an expired or canceled chain unwinds through exactly
    // the machinery any mid-chain error already exercises.
    if (dl::dl_enabled()) {
      if (Errno de = dl::check(&p.task); de != Errno::kOk) {
        dl::Kdl::instance().stats().ring_aborts.fetch_add(
            1, std::memory_order_relaxed);
        out.push_back(Cqe{e.user_data, sysret_err(de)});
        failed = true;
        continue;
      }
    }
    charge(kSqeDispatchUnits);
    SysRet res = 0;
    bool corrupted = false;
    if (!classic) {
      // The shared-memory TOCTOU window: the user can scribble on an
      // SQE between validation and dispatch. The fallback path is
      // immune by construction -- it re-copies and re-validates each
      // op through the full gateway one at a time.
      if (auto f = USK_FAIL_POINT(fault::Site::kRingSqeCorrupt); f.fail) {
        res = sysret_err(f.err);
        corrupted = true;
        r.n_.sqe_corrupt_hard.fetch_add(1, std::memory_order_relaxed);
        if (*violation == Errno::kOk) *violation = f.err;
      } else if (f.transient) {
        r.n_.sqe_corrupt_transient.fetch_add(1, std::memory_order_relaxed);
        charge(kSqeRevalidateUnits);  // re-read + re-validate the SQE
      }
    }
    int fd = e.fd;
    if (!corrupted && e.op != RingOp::kNop && e.op != RingOp::kOpen &&
        fd == kFdChain) {
      if (cc.fd < 0) {
        res = sysret_err(Errno::kEBADF);
        corrupted = true;  // skip exec; not a corruption, just resolved
      } else {
        fd = cc.fd;
      }
    }
    if (!corrupted) res = exec_sqe(p, r, e, fd, classic);
    if (res < 0) span.set_status(res);
    if (res >= 0) {
      if (e.op == RingOp::kOpen || e.op == RingOp::kAccept) {
        cc.fd = static_cast<int>(res);
        cc.opened.push_back(cc.fd);
        cc.opened_at.push_back(out.size());
      } else if (e.op == RingOp::kClose) {
        for (std::size_t i = 0; i < cc.opened.size(); ++i) {
          if (cc.opened[i] == fd) {
            cc.opened.erase(cc.opened.begin() + static_cast<long>(i));
            cc.opened_at.erase(cc.opened_at.begin() + static_cast<long>(i));
            break;
          }
        }
        if (cc.fd == fd) cc.fd = -1;
      }
    } else {
      failed = true;
    }
    out.push_back(Cqe{e.user_data, res});
  }
  if (failed) {
    r.n_.chains_failed.fetch_add(1, std::memory_order_relaxed);
    USK_TRACEPOINT("ring", "chain_cancel", chain.size());
    // fd rollback: a failed chain never hands out descriptors. Close
    // whatever it opened and rewrite those CQEs to -ECANCELED so the
    // user cannot key off a stale fd number.
    for (std::size_t i = 0; i < cc.opened.size(); ++i) {
      if (classic) {
        (void)k_.sys_close(p, cc.opened[i]);
      } else {
        (void)k_.dispatch_nested(
            p, uk::Sys::kClose,
            {static_cast<std::uint64_t>(cc.opened[i]), 0, 0, 0});
      }
      r.n_.fds_rolled_back.fetch_add(1, std::memory_order_relaxed);
      out[cc.opened_at[i]].res = sysret_err(Errno::kECANCELED);
      r.n_.cqes_canceled.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!classic) {
    // Nested dispatch opens no syscall Scope, so the chain's kernel
    // work is charged explicitly; classic chains run full syscalls
    // whose epilogues attribute to this span on their own.
    span.add_units(p.task.times().kernel - kunits0);
  }
}

std::size_t RingDev::post_cqes(Ring& r, std::vector<Cqe>& cqes, bool classic,
                               Errno* violation) {
  std::size_t posted = 0;
  for (const Cqe& c : cqes) {
    if (!classic) {
      if (auto f = USK_FAIL_POINT(fault::Site::kRingCqeDrop); f.fail) {
        // The completion is lost: the op executed, its result vanished.
        // (The shared-memory effects -- bytes in the arena -- survive,
        // which is what a careful caller recovers from.)
        r.n_.cqe_drop_hard.fetch_add(1, std::memory_order_relaxed);
        if (*violation == Errno::kOk) *violation = f.err;
        USK_TRACEPOINT("ring", "cqe_drop", c.user_data);
        continue;
      } else if (f.transient) {
        r.n_.cqe_drop_transient.fetch_add(1, std::memory_order_relaxed);
        charge(kCqeRetryUnits);  // repost after a torn write
      }
    }
    if (r.cq_.push(c)) {
      ++posted;
      r.n_.cqes_posted.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Space was reserved before the chain ran; racing reapers only
      // grow free space, so this is unreachable -- counted defensively.
      r.n_.cqe_drop_hard.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (posted > 0) r.wq_.wake_all();
  return posted;
}

std::size_t RingDev::drain(uk::Process& p, Ring& r, std::size_t budget,
                           bool classic, sup::InvocationGuard* guard,
                           Errno* violation, std::size_t* posted,
                           bool* stop) {
  std::lock_guard dlk(r.drain_mu_);
  std::size_t consumed = 0;
  std::vector<Sqe> chain;
  std::vector<Cqe> cqes;
  while (consumed < budget) {
    if (r.closed()) {
      *stop = true;
      break;
    }
    // Reserve CQ space for a worst-case chain BEFORE popping it: the
    // overflow policy is backpressure, never silent loss. Only the
    // drainer pushes CQEs, so free space can only grow under us.
    if (r.cq_free() < r.max_chain()) {
      r.n_.cq_backpressure.fetch_add(1, std::memory_order_relaxed);
      *stop = true;
      break;
    }
    chain.clear();
    cqes.clear();
    Sqe e;
    if (!r.sq_.pop(&e)) break;  // SQ dry
    chain.push_back(e);
    bool malformed = false;
    while ((chain.back().flags & kSqeLink) != 0) {
      if (chain.size() >= r.max_chain() || !r.sq_.pop(&e)) {
        // Overlong chain or dangling link (a linked SQE with nothing
        // behind it): the whole chain is malformed.
        malformed = true;
        break;
      }
      chain.push_back(e);
    }
    consumed += chain.size();
    r.n_.sqes.fetch_add(chain.size(), std::memory_order_relaxed);
    r.n_.chains.fetch_add(1, std::memory_order_relaxed);
    if (malformed) {
      r.n_.chains_malformed.fetch_add(1, std::memory_order_relaxed);
      for (const Sqe& m : chain) {
        cqes.push_back(Cqe{m.user_data, sysret_err(Errno::kEINVAL)});
      }
      *posted += post_cqes(r, cqes, classic, violation);
      continue;
    }
    if (guard != nullptr && !guard->charge_fuel(chain.size())) {
      // Quota trip: this chain never runs; its SQEs complete with
      // EDQUOT and draining stops (the guard narrows no further work).
      for (const Sqe& m : chain) {
        cqes.push_back(
            Cqe{m.user_data, sysret_err(sup::InvocationGuard::quota_errno())});
      }
      *posted += post_cqes(r, cqes, classic, violation);
      if (*violation == Errno::kOk) {
        *violation = sup::InvocationGuard::quota_errno();
      }
      *stop = true;
      break;
    }
    exec_chain(p, r, chain, classic, violation, cqes);
    *posted += post_cqes(r, cqes, classic, violation);
    // Preemption point between chains: the watchdog sees a runaway
    // drain exactly like any other long kernel visit.
    if (!k_.scheduler().preempt_point()) {
      if (*violation == Errno::kOk) *violation = Errno::kEKILLED;
      *stop = true;
      break;
    }
  }
  USK_TRACEPOINT("ring", "drain", consumed, *posted);
  return consumed;
}

SysRet RingDev::do_enter(uk::Process& p, Ring& r, std::uint32_t to_submit,
                         std::uint32_t min_complete, int timeout_ms,
                         bool classic, sup::InvocationGuard* guard,
                         Errno* violation) {
  const std::size_t budget =
      to_submit == kDrainAll ? std::numeric_limits<std::size_t>::max()
                             : to_submit;
  const bool bounded_wait = timeout_ms > 0;
  const sched::WaitQueue::Deadline deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(bounded_wait ? timeout_ms : 0);
  std::size_t consumed = 0;
  std::size_t posted = 0;
  for (;;) {
    // Token before the drain: a doorbell, completion post, or close that
    // lands anywhere past this line voids the park below.
    const sched::WaitQueue::Token tok = r.wq_.prepare();
    bool stop = false;
    consumed += drain(p, r, budget - consumed, classic, guard, violation,
                      &posted, &stop);
    if (stop && *violation != Errno::kOk) break;
    if (min_complete == 0 || r.cq_size() >= min_complete) break;
    if (r.closed()) break;
    if (timeout_ms == 0) break;
    if (bounded_wait && std::chrono::steady_clock::now() >= deadline) break;
    std::uint64_t sq_ready = r.sq_.pushed() - r.sq_.popped();
    if (sq_ready > 0 && consumed < budget) continue;  // more to drain
    // Event-driven park: the task schedules out (the watchdog runs, as
    // at every schedule-out) and sleeps until a doorbell, completion, or
    // close wakes the ring's WaitQueue -- or the caller's own timeout_ms
    // deadline passes. Blocking socket ops inside the drain park on their
    // sockets' WaitQueues wired to peer readiness; no polling anywhere on
    // this path.
    // kdl: the request deadline tightens the wait bound. Work already
    // posted always beats the error (like a partial recv); an expiry or
    // cancel with nothing posted surfaces ETIMEDOUT/ECANCELED.
    dl::Clock::time_point dl_storage;
    bool dl_bound = false;
    const sched::WaitQueue::Deadline* eff = dl::effective_deadline(
        bounded_wait ? &deadline : nullptr, &dl_storage, &dl_bound);
    if (dl_bound && dl_storage <= std::chrono::steady_clock::now()) {
      dl::Kdl::instance().stats().park_expired.fetch_add(
          1, std::memory_order_relaxed);
      if (posted > 0) return static_cast<SysRet>(posted);
      return sysret_err(Errno::kETIMEDOUT);
    }
    if (dl::spurious_wake()) continue;  // kfail: re-drain, never sleep late
    sched::WaitQueue::Wait w = k_.scheduler().block(r.wq_, tok, eff);
    if (w == sched::WaitQueue::Wait::kKilled) {
      if (posted > 0) return static_cast<SysRet>(posted);
      return sysret_err(Errno::kEINTR);
    }
    if (w == sched::WaitQueue::Wait::kCanceled) {
      dl::Kdl::instance().stats().park_canceled.fetch_add(
          1, std::memory_order_relaxed);
      if (posted > 0) return static_cast<SysRet>(posted);
      return sysret_err(Errno::kECANCELED);
    }
    if (w == sched::WaitQueue::Wait::kTimeout && dl_bound) {
      dl::Kdl::instance().stats().park_expired.fetch_add(
          1, std::memory_order_relaxed);
      if (posted > 0) return static_cast<SysRet>(posted);
      return sysret_err(Errno::kETIMEDOUT);
    }
  }
  return static_cast<SysRet>(posted);
}

SysRet RingDev::sys_ring_enter(uk::Process& p, int ringfd,
                               std::uint32_t to_submit,
                               std::uint32_t min_complete, int timeout_ms) {
  Result<std::shared_ptr<Ring>> rr = ring_of(p, ringfd);
  if (!rr) {
    uk::Kernel::Scope scope(k_, p, uk::Sys::kRingEnter);
    if (SysRet g = scope.gate(); g != 0) return g;
    return scope.fail(rr.error());
  }
  Ring& r = *rr.value();
  if (min_complete > r.cq_capacity()) {
    uk::Kernel::Scope scope(k_, p, uk::Sys::kRingEnter);
    if (SysRet g = scope.gate(); g != 0) return g;
    return scope.fail(Errno::kEINVAL);
  }

  sup::Supervisor* sup = r.sup_.load(std::memory_order_acquire);
  const int ext = r.ext_.load(std::memory_order_acquire);

  // Unsupervised: the plain kernel path, one crossing for the batch.
  if (sup == nullptr) {
    Errno viol = Errno::kOk;
    r.n_.enters.fetch_add(1, std::memory_order_relaxed);
    uk::Kernel::Scope scope(k_, p, uk::Sys::kRingEnter);
    if (SysRet g = scope.gate(); g != 0) return g;
    USK_TRACE_LATENCY("ring", "enter");
    USK_TRACEPOINT("ring", "enter", to_submit, min_complete);
    return scope.done(do_enter(p, r, to_submit, min_complete, timeout_ms,
                               /*classic=*/false, nullptr, &viol));
  }

  const sup::Route route = sup->route(ext);
  if (route != sup::Route::kFallback) {
    SysRet vres = 0;
    SysRet ret = 0;
    Errno viol = Errno::kOk;
    std::size_t kernel_posted = 0;
    {
      sup::InvocationGuard g(*sup, ext, &p.task, route, &vres);
      // The drain stages up to one chain of SQEs kernel-side; charge
      // that staging against the kmalloc quota before any side effect.
      if (!g.charge_kmalloc(r.max_chain() * sizeof(Sqe))) {
        vres = sysret_err(sup::InvocationGuard::quota_errno());
        ret = vres;
      } else {
        r.n_.enters.fetch_add(1, std::memory_order_relaxed);
        uk::Kernel::Scope scope(k_, p, uk::Sys::kRingEnter);
        if (SysRet gr = scope.gate(); gr != 0) return gr;
        USK_TRACE_LATENCY("ring", "enter");
        USK_TRACEPOINT("ring", "enter", to_submit, min_complete);
        ret = scope.done(do_enter(p, r, to_submit, min_complete, timeout_ms,
                                  /*classic=*/false, &g, &viol));
        kernel_posted = ret > 0 ? static_cast<std::size_t>(ret) : 0;
        // The guard judges the DRAIN, not the per-op results: data-plane
        // errnos live in the CQEs; a corrupt SQE, a dropped completion
        // or a quota trip is the extension misbehaving.
        vres = viol != Errno::kOk ? sysret_err(viol) : (ret < 0 ? ret : 0);
      }
    }
    // Mirror the other vehicles' contract: if the kernel path produced
    // nothing and misbehaved, decompose the still-queued SQEs below;
    // anything already posted must not be re-executed.
    if (kernel_posted > 0 || (viol == Errno::kOk && !sysret_is_err(ret))) {
      return ret;
    }
  }

  // Quarantined (or zero-yield misbehaving) path: classic syscall-at-a-
  // time decomposition. Same chains, same semantics, one crossing per
  // op -- each nested Scope feeds the gateway so the breaker keeps
  // observing the extension while it serves its backoff.
  r.n_.enters_fallback.fetch_add(1, std::memory_order_relaxed);
  USK_TRACEPOINT("ring", "fallback_enter", to_submit);
  SysRet vres = 0;
  SysRet ret = 0;
  {
    sup::InvocationGuard g(*sup, ext, &p.task, sup::Route::kFallback, &vres);
    if (auto f = USK_FAIL_POINT(fault::Site::kSupFallback); f.fail) {
      vres = sysret_err(f.err);
      return sysret_err(f.err);
    } else if (f.transient) {
      k_.engine().alu(200);  // simulated user-space retry
    }
    Errno viol = Errno::kOk;
    ret = do_enter(p, r, to_submit, min_complete, timeout_ms,
                   /*classic=*/true, nullptr, &viol);
    vres = ret < 0 ? ret : 0;
  }
  return ret;
}

}  // namespace usk::ring
