// /proc/ring: the ring subsystem's observation surface.
//
//   /ring/rings  one line per live ring: geometry, queue depths, refs
//   /ring/stats  aggregate counters over live + retired rings
//
// Render-on-open like /net/* and /sup/*: snapshot under the table lock,
// format outside it.
#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "fs/procfs.hpp"
#include "ring/ring.hpp"

namespace usk::ring {

namespace {

__attribute__((format(printf, 2, 3))) void appendf(std::string& out,
                                                   const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
}

}  // namespace

std::string RingDev::format_rings() const {
  struct Row {
    fs::InodeNum ino;
    std::uint32_t owner;
    std::size_t sq_cap, cq_cap, data;
    std::uint64_t sq_depth;
    std::size_t cq_depth;
    std::uint32_t refs;
    bool supervised;
    RingStats st;
  };
  std::vector<Row> rows;
  {
    std::lock_guard lk(tab_mu_);
    rows.reserve(rings_.size());
    for (const auto& [ino, r] : rings_) {
      std::uint64_t pushed = r->sq_.pushed();
      std::uint64_t popped = r->sq_.popped();
      rows.push_back(Row{ino, r->owner_pid(), r->sq_capacity(),
                         r->cq_capacity(), r->data_bytes(),
                         pushed > popped ? pushed - popped : 0, r->cq_size(),
                         r->refs_.load(std::memory_order_relaxed),
                         r->sup_.load(std::memory_order_acquire) != nullptr,
                         r->stats()});
    }
  }
  std::string out;
  appendf(out,
          "# ino owner sq_cap cq_cap data_bytes sq_depth cq_depth refs "
          "sup enters sqes chains\n");
  for (const Row& r : rows) {
    appendf(out, "%llu %u %zu %zu %zu %llu %zu %u %d %llu %llu %llu\n",
            static_cast<unsigned long long>(r.ino), r.owner, r.sq_cap,
            r.cq_cap, r.data, static_cast<unsigned long long>(r.sq_depth),
            r.cq_depth, r.refs, r.supervised ? 1 : 0,
            static_cast<unsigned long long>(r.st.enters),
            static_cast<unsigned long long>(r.st.sqes),
            static_cast<unsigned long long>(r.st.chains));
  }
  return out;
}

RingStats RingDev::total_stats() const {
  RingStats total;
  std::lock_guard lk(tab_mu_);
  total += retired_;
  for (const auto& [ino, r] : rings_) total += r->stats();
  return total;
}

std::string RingDev::format_stats() const {
  const RingStats s = total_stats();
  const std::size_t live = live_rings();
  std::string out;
  appendf(out, "rings_live %zu\n", live);
  appendf(out, "enters %llu\n",
          static_cast<unsigned long long>(s.enters));
  appendf(out, "enters_fallback %llu\n",
          static_cast<unsigned long long>(s.enters_fallback));
  appendf(out, "sqes %llu\n", static_cast<unsigned long long>(s.sqes));
  appendf(out, "chains %llu\n", static_cast<unsigned long long>(s.chains));
  appendf(out, "chains_failed %llu\n",
          static_cast<unsigned long long>(s.chains_failed));
  appendf(out, "chains_malformed %llu\n",
          static_cast<unsigned long long>(s.chains_malformed));
  appendf(out, "cqes_posted %llu\n",
          static_cast<unsigned long long>(s.cqes_posted));
  appendf(out, "cqes_canceled %llu\n",
          static_cast<unsigned long long>(s.cqes_canceled));
  appendf(out, "fds_rolled_back %llu\n",
          static_cast<unsigned long long>(s.fds_rolled_back));
  appendf(out, "cq_backpressure %llu\n",
          static_cast<unsigned long long>(s.cq_backpressure));
  appendf(out, "sqes_discarded %llu\n",
          static_cast<unsigned long long>(s.sqes_discarded));
  appendf(out, "sqe_corrupt_hard %llu\n",
          static_cast<unsigned long long>(s.sqe_corrupt_hard));
  appendf(out, "sqe_corrupt_transient %llu\n",
          static_cast<unsigned long long>(s.sqe_corrupt_transient));
  appendf(out, "cqe_drop_hard %llu\n",
          static_cast<unsigned long long>(s.cqe_drop_hard));
  appendf(out, "cqe_drop_transient %llu\n",
          static_cast<unsigned long long>(s.cqe_drop_transient));
  return out;
}

void RingDev::register_proc(fs::ProcFs& pfs) {
  pfs.add_dir("/ring");
  pfs.add_file("/ring/rings", [this] { return format_rings(); });
  pfs.add_file("/ring/stats", [this] { return format_stats(); });
}

}  // namespace usk::ring
