// kring: async batched syscall rings, the third crossing-elimination
// vehicle (after consolidated calls and Cosy compounds).
//
// A ring is a pair of lock-free queues in shared (simulated
// user-visible) memory -- a submission queue of Sqe records and a
// completion queue of Cqe records -- plus a byte arena the entries
// point into. The user side writes SQEs and reads CQEs with plain
// loads and stores (user_prepare / user_reap: zero crossings, the
// mmap'd-rings discipline of io_uring); ONE ring_enter syscall drains
// the whole backlog kernel-side, dispatching the existing numbered
// syscall handlers via Kernel::dispatch_nested and net's Scope-free
// bodies, so N operations cost one boundary crossing.
//
// Linked ops: an SQE with kSqeLink chains into the next SQE. A chain
// executes left to right with cancel-on-error semantics -- the failing
// op's CQE carries the real errno, every later op completes with
// -ECANCELED, and any fd the chain opened (open/accept) is closed by
// the engine and its CQE rewritten to -ECANCELED (fd rollback), so a
// failed chain never leaks descriptors into user hands. kFdChain as an
// SQE's fd resolves to the most recent open/accept result in the same
// chain, which is what lets accept->recv and open->read->send->close
// subsume accept_recv and sendfile generically.
//
// Supervision: a ring bound to a ksup extension runs every drain under
// an InvocationGuard (fuel charged per SQE, staging memory per enter).
// A quarantined ring degrades to classic syscall-at-a-time
// decomposition: the same chains, executed through the full gateway
// with one crossing per op -- correct, slow, and safe, exactly the
// fallback contract of the other vehicles.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/mpmc_ring.hpp"
#include "net/net.hpp"
#include "uk/kernel.hpp"

namespace usk::fs {
class ProcFs;
}
namespace usk::sup {
class Supervisor;
class InvocationGuard;
}

namespace usk::ring {

enum class RingOp : std::uint8_t {
  kNop = 0,
  kOpen,      ///< addr/len = NUL-terminated path in the arena, aux = flags
  kClose,
  kRead,      ///< addr/len = destination window in the arena
  kWrite,     ///< addr/len = source window in the arena
  kFstat,     ///< addr = StatBuf-sized window in the arena
  kAccept,    ///< fd = listener
  kRecv,      ///< addr/len = destination window in the arena
  kSend,      ///< addr/len = source window in the arena
  kShutdown,  ///< aux = how (net::kShut*)
};

[[nodiscard]] const char* ring_op_name(RingOp op);

/// SQE flag: this op links into the next SQE (same chain).
inline constexpr std::uint8_t kSqeLink = 0x1;

/// Sentinel fd: resolve to the fd produced by the most recent
/// open/accept earlier in this chain.
inline constexpr int kFdChain = -2;

/// Submission queue entry -- the ring ABI's "register file". addr is an
/// OFFSET into the ring's shared byte arena, never a raw pointer: the
/// engine bounds-checks it like access_ok before dispatch.
struct Sqe {
  std::uint64_t user_data = 0;  ///< echoed in the CQE, engine-opaque
  RingOp op = RingOp::kNop;
  std::uint8_t flags = 0;
  std::int32_t fd = -1;
  std::uint64_t addr = 0;  ///< arena offset of the op's buffer/path
  std::uint32_t len = 0;   ///< buffer/path window length
  std::uint64_t aux = 0;   ///< open flags / shutdown how
};

/// Completion queue entry: the op's SysRet (negative = -errno).
struct Cqe {
  std::uint64_t user_data = 0;
  SysRet res = 0;
};

/// Longest permitted chain. The drain engine reserves this much CQ
/// space before popping a chain, so a chain's completions can never be
/// lost to a full CQ (backpressure instead of overflow).
inline constexpr std::size_t kMaxChain = 8;

/// Per-ring counters (atomics: the drain and the proc renderer race).
struct RingCounters {
  std::atomic<std::uint64_t> enters{0};           ///< kernel-path ring_enter
  std::atomic<std::uint64_t> enters_fallback{0};  ///< quarantined decompositions
  std::atomic<std::uint64_t> sqes{0};             ///< SQEs drained
  std::atomic<std::uint64_t> chains{0};
  std::atomic<std::uint64_t> chains_failed{0};    ///< cancel-on-error fired
  std::atomic<std::uint64_t> chains_malformed{0}; ///< dangling/overlong link
  std::atomic<std::uint64_t> cqes_posted{0};
  std::atomic<std::uint64_t> cqes_canceled{0};    ///< -ECANCELED completions
  std::atomic<std::uint64_t> fds_rolled_back{0};
  std::atomic<std::uint64_t> cq_backpressure{0};  ///< drain stalls on CQ space
  std::atomic<std::uint64_t> sqes_discarded{0};   ///< canceled by close
  std::atomic<std::uint64_t> sqe_corrupt_hard{0};
  std::atomic<std::uint64_t> sqe_corrupt_transient{0};
  std::atomic<std::uint64_t> cqe_drop_hard{0};
  std::atomic<std::uint64_t> cqe_drop_transient{0};
};

/// Plain snapshot of RingCounters (proc rendering, tests, aggregation).
struct RingStats {
  std::uint64_t enters = 0;
  std::uint64_t enters_fallback = 0;
  std::uint64_t sqes = 0;
  std::uint64_t chains = 0;
  std::uint64_t chains_failed = 0;
  std::uint64_t chains_malformed = 0;
  std::uint64_t cqes_posted = 0;
  std::uint64_t cqes_canceled = 0;
  std::uint64_t fds_rolled_back = 0;
  std::uint64_t cq_backpressure = 0;
  std::uint64_t sqes_discarded = 0;
  std::uint64_t sqe_corrupt_hard = 0;
  std::uint64_t sqe_corrupt_transient = 0;
  std::uint64_t cqe_drop_hard = 0;
  std::uint64_t cqe_drop_transient = 0;

  RingStats& operator+=(const RingStats& o);
};

class RingDev;

/// One SQ/CQ pair plus its shared byte arena. The object IS the
/// "mapping": user code holding the shared_ptr from RingDev::user_map
/// accesses the queues directly (no crossings), the kernel drains them
/// in ring_enter. Queue memory outlives the ring fd, exactly like a
/// real mmap outlives close(2).
class Ring {
 public:
  Ring(fs::InodeNum ino, std::uint32_t owner_pid, std::size_t sq_entries,
       std::size_t data_bytes)
      : ino_(ino),
        owner_pid_(owner_pid),
        sq_(sq_entries),
        cq_(sq_entries * 2),
        data_(data_bytes),
        max_chain_(std::min(kMaxChain, sq_entries)) {}

  // --- user side (shared-memory access, zero crossings) -------------------
  /// Queue one SQE; false when the SQ is full (backpressure -- the
  /// caller must ring_enter to drain before submitting more).
  bool user_prepare(const Sqe& e);
  /// Reap up to `max` completions.
  std::size_t user_reap(Cqe* out, std::size_t max) {
    return cq_.pop_bulk(out, max);
  }
  /// Pointer into the shared arena, or nullptr if [addr, addr+len)
  /// escapes it. The same check the engine performs before dispatch.
  [[nodiscard]] std::byte* user_data(std::uint64_t addr, std::size_t len) {
    if (addr > data_.size() || len > data_.size() - addr) return nullptr;
    return data_.data() + addr;
  }

  [[nodiscard]] fs::InodeNum ino() const { return ino_; }
  [[nodiscard]] std::uint32_t owner_pid() const { return owner_pid_; }
  [[nodiscard]] std::size_t sq_capacity() const { return sq_.capacity(); }
  [[nodiscard]] std::size_t cq_capacity() const { return cq_.capacity(); }
  [[nodiscard]] std::size_t data_bytes() const { return data_.size(); }
  [[nodiscard]] std::size_t max_chain() const { return max_chain_; }
  [[nodiscard]] std::size_t cq_size() const {
    std::uint64_t pushed = cq_.pushed();
    std::uint64_t popped = cq_.popped();
    return pushed > popped ? static_cast<std::size_t>(pushed - popped) : 0;
  }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] RingStats stats() const;

 private:
  friend class RingDev;

  [[nodiscard]] std::size_t cq_free() const {
    std::size_t used = cq_size();
    return used >= cq_.capacity() ? 0 : cq_.capacity() - used;
  }

  fs::InodeNum ino_;
  std::uint32_t owner_pid_;
  base::MpmcRing<Sqe> sq_;
  base::MpmcRing<Cqe> cq_;
  std::vector<std::byte> data_;
  std::size_t max_chain_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint32_t> refs_{1};  ///< fd references (dup)

  // Supervision binding (set once by RingDev::supervise; sup_ last so a
  // racing reader pairing sup_ with ext_ sees both).
  std::atomic<sup::Supervisor*> sup_{nullptr};
  std::atomic<int> ext_{-1};

  std::mutex drain_mu_;  ///< single drainer at a time
  /// Parked ring_enter waiters. Doorbells (user_prepare), completion
  /// posts, and close wake it; the waiter's token is taken before the
  /// drain, so none of those events can slip between drain and park.
  sched::WaitQueue wq_;

  RingCounters n_;
};

/// fs::FileSystem adapter putting ring fds behind the descriptor table
/// (the SocketFs pattern): close(2) releases the ring, dup(2) refs it.
class RingFs final : public fs::FileSystem {
 public:
  explicit RingFs(RingDev& dev) : dev_(dev) {}

  [[nodiscard]] fs::InodeNum root() const override { return 0; }
  [[nodiscard]] const char* fstype() const override { return "ringfs"; }

  Result<fs::InodeNum> lookup(fs::InodeNum, std::string_view) override {
    return Errno::kENOENT;
  }
  Result<fs::InodeNum> create(fs::InodeNum, std::string_view, fs::FileType,
                              std::uint32_t) override {
    return Errno::kEPERM;
  }
  Result<void> unlink(fs::InodeNum, std::string_view) override {
    return Errno::kEPERM;
  }
  Result<void> rmdir(fs::InodeNum, std::string_view) override {
    return Errno::kEPERM;
  }
  Result<void> rename(fs::InodeNum, std::string_view, fs::InodeNum,
                      std::string_view) override {
    return Errno::kEPERM;
  }
  Result<void> truncate(fs::InodeNum, std::uint64_t) override {
    return Errno::kEINVAL;
  }
  Result<std::vector<fs::DirEntry>> readdir(fs::InodeNum) override {
    return Errno::kENOTDIR;
  }
  Result<std::size_t> read(fs::InodeNum, std::uint64_t,
                           std::span<std::byte>) override {
    return Errno::kEINVAL;  // rings are driven via ring_enter, not read(2)
  }
  Result<std::size_t> write(fs::InodeNum, std::uint64_t,
                            std::span<const std::byte>) override {
    return Errno::kEINVAL;
  }
  Result<void> getattr(fs::InodeNum ino, fs::StatBuf* st) override;
  void release_file(fs::InodeNum ino) override;
  void dup_file(fs::InodeNum ino) override;

 private:
  RingDev& dev_;
};

/// The ring device: setup/enter syscalls, the kernel-side submission
/// engine, and the /proc/ring surface. Registers its syscall numbers
/// with the numbered gateway at construction, releases them at
/// destruction.
class RingDev {
 public:
  static constexpr std::size_t kMaxSqEntries = 4096;
  static constexpr std::size_t kMaxDataBytes = 1 << 20;

  RingDev(uk::Kernel& k, net::Net& net);
  ~RingDev();
  RingDev(const RingDev&) = delete;
  RingDev& operator=(const RingDev&) = delete;

  // --- syscalls (also reachable as Sys::kRingSetup / kRingEnter) ----------
  /// Create a ring: `entries` SQ slots (rounded up to a power of two,
  /// CQ gets twice that) over a `data_bytes` arena. Returns the ring fd.
  SysRet sys_ring_setup(uk::Process& p, std::uint32_t entries,
                        std::uint32_t data_bytes);
  /// Drain up to `to_submit` SQEs (0 = none, kDrainAll = everything
  /// queued), then wait -- sched-parked, watchdog-killable, no polling
  /// -- until the CQ holds at least `min_complete` entries or
  /// `timeout_ms` expires (0 = never wait, negative = wait forever).
  /// Returns the number of CQEs posted by this call.
  SysRet sys_ring_enter(uk::Process& p, int ringfd, std::uint32_t to_submit,
                        std::uint32_t min_complete, int timeout_ms);

  static constexpr std::uint32_t kDrainAll = 0xFFFFFFFFu;

  /// The mmap analogue: hand the caller direct (shared-memory) access
  /// to an owned ring. Zero crossings; validity checked like any fd.
  Result<std::shared_ptr<Ring>> user_map(uk::Process& p, int ringfd);

  /// Bind the ring to a supervisor extension (Vehicle::kRing): every
  /// subsequent ring_enter routes through the breaker.
  Result<void> supervise(uk::Process& p, int ringfd, sup::Supervisor& s,
                         int ext_id);

  /// Register /proc/ring/{rings,stats} with `proc`. Lives here rather
  /// than uk/kproc.cpp because uk cannot depend on ring.
  void register_proc(fs::ProcFs& proc);

  [[nodiscard]] std::string format_rings() const;
  [[nodiscard]] std::string format_stats() const;
  /// Aggregate over live and already-closed rings.
  [[nodiscard]] RingStats total_stats() const;
  [[nodiscard]] std::size_t live_rings() const;

  // --- RingFs hooks --------------------------------------------------------
  void fd_released(fs::InodeNum ino);
  void fd_duped(fs::InodeNum ino);
  std::shared_ptr<Ring> find_ring(fs::InodeNum ino) const;

 private:
  /// Execution context threaded through one chain: the fd register and
  /// the rollback set.
  struct ChainCtx {
    int fd = -1;                       ///< kFdChain resolves here
    std::vector<int> opened;           ///< fds opened by this chain
    std::vector<std::size_t> opened_at;///< CQE index that produced each
  };

  static SysRet sysc_setup(void* ctx, uk::Kernel& k, uk::Process& p,
                           const uk::Kernel::SysArgs& a);
  static SysRet sysc_enter(void* ctx, uk::Kernel& k, uk::Process& p,
                           const uk::Kernel::SysArgs& a);

  Result<std::shared_ptr<Ring>> ring_of(uk::Process& p, int fd);
  void charge(std::uint64_t units);

  /// Drain + parked wait; `classic` decomposes through the full gateway
  /// (one crossing per op) instead of dispatch_nested. Returns CQEs
  /// posted; `violation` reports drain-level misbehavior (corrupt SQE,
  /// dropped completion, quota) for the supervisor.
  SysRet do_enter(uk::Process& p, Ring& r, std::uint32_t to_submit,
                  std::uint32_t min_complete, int timeout_ms, bool classic,
                  sup::InvocationGuard* guard, Errno* violation);
  /// One drain pass under r.drain_mu_. Returns SQEs consumed; posted
  /// CQEs are added to *posted. Sets *stop when draining must end
  /// (quota trip or CQ backpressure).
  std::size_t drain(uk::Process& p, Ring& r, std::size_t budget, bool classic,
                    sup::InvocationGuard* guard, Errno* violation,
                    std::size_t* posted, bool* stop);
  void exec_chain(uk::Process& p, Ring& r, const std::vector<Sqe>& chain,
                  bool classic, Errno* violation, std::vector<Cqe>& out);
  SysRet exec_sqe(uk::Process& p, Ring& r, const Sqe& e, int fd, bool classic);
  std::size_t post_cqes(Ring& r, std::vector<Cqe>& cqes, bool classic,
                        Errno* violation);
  void close_ring(const std::shared_ptr<Ring>& r);

  uk::Kernel& k_;
  net::Net& net_;
  RingFs ringfs_;
  mutable std::mutex tab_mu_;
  std::map<fs::InodeNum, std::shared_ptr<Ring>> rings_;
  fs::InodeNum next_ino_ = 1;
  RingStats retired_;  ///< stats of closed rings (under tab_mu_)
};

}  // namespace usk::ring
