// User-space buffered I/O: the stdio-style crossing amortizer.
//
// The classic 2005 alternative to running code in the kernel was buffering
// in user space -- fgetc() costs one syscall per BUFSIZ, not per byte.
// BufferedFile implements that technique over the simulated kernel so the
// benchmarks can compare all three regimes fairly: raw syscalls, user-side
// buffering, and Cosy kernel offload. Buffering wins exactly where the
// paper concedes it should (sequential byte-wise data access) and cannot
// help where Cosy does (metadata sequences, random access with small
// reuse, anything needing per-call kernel work).
#pragma once

#include <cstring>
#include <vector>

#include "uk/userlib.hpp"

namespace usk::uk {

class BufferedFile {
 public:
  static constexpr std::size_t kBufSize = 4096;

  /// Open for reading or writing (one direction per stream, like fopen
  /// "r"/"w"). Check ok() before use.
  BufferedFile(Proc& proc, const char* path, int flags,
               std::uint32_t mode = 0644)
      : proc_(proc), writable_((flags & fs::kAccessMode) != fs::kORdOnly) {
    fd_ = proc.open(path, flags, mode);
    buf_.resize(kBufSize);
  }

  ~BufferedFile() { close(); }

  BufferedFile(const BufferedFile&) = delete;
  BufferedFile& operator=(const BufferedFile&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  /// One byte, or -1 at EOF/error. The hot path touches no syscalls.
  int getc() {
    if (pos_ >= fill_) {
      if (!refill()) return -1;
    }
    return static_cast<int>(static_cast<unsigned char>(buf_[pos_++]));
  }

  std::size_t read(void* dst, std::size_t n) {
    auto* out = static_cast<char*>(dst);
    std::size_t done = 0;
    while (done < n) {
      if (pos_ >= fill_) {
        if (!refill()) break;
      }
      std::size_t take = std::min(n - done, fill_ - pos_);
      std::memcpy(out + done, buf_.data() + pos_, take);
      pos_ += take;
      done += take;
    }
    return done;
  }

  /// Buffered write; bytes reach the kernel on flush/close or when the
  /// buffer fills.
  std::size_t write(const void* src, std::size_t n) {
    const auto* in = static_cast<const char*>(src);
    std::size_t done = 0;
    while (done < n) {
      std::size_t room = kBufSize - fill_;
      if (room == 0) {
        if (!flush()) break;
        room = kBufSize;
      }
      std::size_t take = std::min(n - done, room);
      std::memcpy(buf_.data() + fill_, in + done, take);
      fill_ += take;
      done += take;
    }
    return done;
  }

  bool putc(char c) { return write(&c, 1) == 1; }

  bool flush() {
    if (!writable_ || fill_ == 0) return true;
    SysRet w = proc_.write(fd_, buf_.data(), fill_);
    bool ok_write = w == static_cast<SysRet>(fill_);
    fill_ = 0;
    return ok_write;
  }

  /// Seek; drops the read buffer / flushes the write buffer.
  bool seek(std::int64_t off, int whence = fs::kSeekSet) {
    if (writable_) {
      if (!flush()) return false;
    } else {
      // Position the fd where the CONSUMER is, not where the buffer ends.
      proc_.lseek(fd_, -static_cast<std::int64_t>(fill_ - pos_),
                  fs::kSeekCur);
      pos_ = fill_ = 0;
    }
    return proc_.lseek(fd_, off, whence) >= 0;
  }

  void close() {
    if (fd_ >= 0) {
      flush();
      proc_.close(fd_);
      fd_ = -1;
    }
  }

  [[nodiscard]] int fd() const { return fd_; }

 private:
  bool refill() {
    if (writable_) return false;
    SysRet n = proc_.read(fd_, buf_.data(), kBufSize);
    if (n <= 0) return false;
    fill_ = static_cast<std::size_t>(n);
    pos_ = 0;
    return true;
  }

  Proc& proc_;
  int fd_ = -1;
  bool writable_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;   // read cursor
  std::size_t fill_ = 0;  // valid bytes (read) / pending bytes (write)
};

}  // namespace usk::uk
