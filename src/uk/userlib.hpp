// User-side convenience library ("libc") for simulated user programs.
//
// Examples, workloads, and benchmarks act as user processes through Proc:
// every method is a real system call through the boundary (crossing +
// copies). Proc also exposes charge_user() so workloads can model the
// user-mode compute between calls (parsing, formatting, business logic).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "uk/kernel.hpp"

namespace usk::uk {

struct UserDirent {
  std::uint64_t ino;
  fs::FileType type;
  std::string name;
};

/// Decode a packed sys_readdir buffer into user-side entries.
std::size_t decode_dirents(std::span<const std::byte> buf,
                           std::vector<UserDirent>* out);

/// Decode a packed readdirplus buffer into (entry, stat) pairs.
std::size_t decode_dirents_plus(
    std::span<const std::byte> buf,
    std::vector<std::pair<UserDirent, fs::StatBuf>>* out);

class Proc {
 public:
  Proc(Kernel& k, std::string name) : k_(k), p_(k.spawn(std::move(name))) {}

  // --- POSIX-flavoured wrappers ---------------------------------------------
  int open(const char* path, int flags, std::uint32_t mode = 0644) {
    return static_cast<int>(k_.sys_open(p_, path, flags, mode));
  }
  SysRet close(int fd) { return k_.sys_close(p_, fd); }
  int dup(int fd) { return static_cast<int>(k_.sys_dup(p_, fd)); }
  SysRet read(int fd, void* buf, std::size_t n) {
    return k_.sys_read(p_, fd, buf, n);
  }
  SysRet write(int fd, const void* buf, std::size_t n) {
    return k_.sys_write(p_, fd, buf, n);
  }
  SysRet lseek(int fd, std::int64_t off, int whence) {
    return k_.sys_lseek(p_, fd, off, whence);
  }
  SysRet stat(const char* path, fs::StatBuf* st) {
    return k_.sys_stat(p_, path, st);
  }
  SysRet fstat(int fd, fs::StatBuf* st) { return k_.sys_fstat(p_, fd, st); }
  SysRet readdir(int fd, void* buf, std::size_t n) {
    return k_.sys_readdir(p_, fd, buf, n);
  }
  SysRet unlink(const char* path) { return k_.sys_unlink(p_, path); }
  SysRet mkdir(const char* path, std::uint32_t mode = 0755) {
    return k_.sys_mkdir(p_, path, mode);
  }
  SysRet rmdir(const char* path) { return k_.sys_rmdir(p_, path); }
  SysRet rename(const char* from, const char* to) {
    return k_.sys_rename(p_, from, to);
  }
  SysRet truncate(const char* path, std::uint64_t size) {
    return k_.sys_truncate(p_, path, size);
  }
  SysRet getpid() { return k_.sys_getpid(p_); }
  SysRet sync() { return k_.sys_sync(p_); }
  SysRet fsync(int fd) { return k_.sys_fsync(p_, fd); }
  SysRet fdatasync(int fd) { return k_.sys_fdatasync(p_, fd); }
  SysRet link(const char* from, const char* to) {
    return k_.sys_link(p_, from, to);
  }
  SysRet chmod(const char* path, std::uint32_t mode) {
    return k_.sys_chmod(p_, path, mode);
  }

  /// List a whole directory the classic way (readdir loop).
  std::vector<UserDirent> list_dir(const char* path,
                                   std::size_t bufsize = 4096);

  /// Model user-mode computation between system calls.
  void charge_user(std::uint64_t units) {
    k_.engine().alu(units);
    p_.task.charge_user(units);
  }

  [[nodiscard]] Kernel& kernel() { return k_; }
  [[nodiscard]] Process& process() { return p_; }
  [[nodiscard]] sched::Task& task() { return p_.task; }

 private:
  Kernel& k_;
  Process& p_;
};

}  // namespace usk::uk
