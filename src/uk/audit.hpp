// System-call audit log (the strace / Linux 2.6 audit analogue).
//
// Paper §2.2: "The first step in finding system call patterns was to
// collect logs of system calls ... using a combination of strace and the
// system call auditing support in Linux 2.6." Every dispatched syscall is
// recorded here; the consolidation module mines these records into the
// weighted syscall graph.
#pragma once

#include <cstdint>
#include <vector>

#include "base/errno.hpp"

namespace usk::uk {

/// System call numbers. Includes both the classic calls and the new
/// consolidated calls this reproduction adds (§2.2) plus the Cosy entry
/// point (§2.3).
enum class Sys : std::uint16_t {
  kOpen = 1,
  kClose = 2,
  kRead = 3,
  kWrite = 4,
  kLseek = 5,
  kStat = 6,
  kFstat = 7,
  kReaddir = 8,  // getdents-style
  kUnlink = 9,
  kMkdir = 10,
  kRmdir = 11,
  kRename = 12,
  kTruncate = 13,
  kGetpid = 14,
  kSync = 15,
  kLink = 16,
  kChmod = 17,
  // Consolidated calls:
  kReaddirPlus = 32,
  kOpenReadClose = 33,
  kOpenWriteClose = 34,
  kOpenFstat = 35,
  // Compound execution:
  kCosy = 48,
  kMaxSys = 64,
};

const char* sys_name(Sys nr);

struct AuditRecord {
  std::uint32_t pid = 0;
  Sys nr = Sys::kGetpid;
  SysRet ret = 0;
  std::uint32_t bytes_in = 0;   ///< copied from user for this call
  std::uint32_t bytes_out = 0;  ///< copied to user for this call
};

class Audit {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(const AuditRecord& r) {
    if (enabled_) records_.push_back(r);
  }

  [[nodiscard]] const std::vector<AuditRecord>& records() const {
    return records_;
  }
  void clear() { records_.clear(); }

  /// Total user<->kernel bytes across all recorded calls.
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& r : records_) sum += r.bytes_in + r.bytes_out;
    return sum;
  }

 private:
  bool enabled_ = false;
  std::vector<AuditRecord> records_;
};

}  // namespace usk::uk
