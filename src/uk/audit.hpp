// System-call audit log (the strace / Linux 2.6 audit analogue).
//
// Paper §2.2: "The first step in finding system call patterns was to
// collect logs of system calls ... using a combination of strace and the
// system call auditing support in Linux 2.6." Every dispatched syscall is
// recorded here; the consolidation module mines these records into the
// weighted syscall graph.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "base/errno.hpp"
#include "base/percpu.hpp"

namespace usk::uk {

/// System call numbers. Includes both the classic calls and the new
/// consolidated calls this reproduction adds (§2.2) plus the Cosy entry
/// point (§2.3).
enum class Sys : std::uint16_t {
  kOpen = 1,
  kClose = 2,
  kRead = 3,
  kWrite = 4,
  kLseek = 5,
  kStat = 6,
  kFstat = 7,
  kReaddir = 8,  // getdents-style
  kUnlink = 9,
  kMkdir = 10,
  kRmdir = 11,
  kRename = 12,
  kTruncate = 13,
  kGetpid = 14,
  kSync = 15,
  kLink = 16,
  kChmod = 17,
  kDup = 18,
  kFsync = 19,
  kFdatasync = 20,
  // Consolidated calls:
  kReaddirPlus = 32,
  kOpenReadClose = 33,
  kOpenWriteClose = 34,
  kOpenFstat = 35,
  // Server-side consolidated calls (src/net + src/consolidation):
  kAcceptRecv = 36,
  kSendfile = 37,
  // Compound execution:
  kCosy = 48,
  // Network family (src/net):
  kSocket = 50,
  kBind = 51,
  kListen = 52,
  kAccept = 53,
  kConnect = 54,
  kSend = 55,
  kRecv = 56,
  kShutdown = 57,
  kEpollCreate = 58,
  kEpollCtl = 59,
  kEpollWait = 60,
  // Ring syscalls (src/ring): batched submission, the third vehicle.
  kRingSetup = 61,
  kRingEnter = 62,
  kMaxSys = 64,
};

const char* sys_name(Sys nr);

struct AuditRecord {
  std::uint32_t pid = 0;
  Sys nr = Sys::kGetpid;
  SysRet ret = 0;
  std::uint32_t bytes_in = 0;   ///< copied from user for this call
  std::uint32_t bytes_out = 0;  ///< copied to user for this call
};

/// SMP note: each dispatching thread appends to its own per-CPU buffer
/// (no lock, no shared cache line on the syscall path); records() merges
/// the buffers at a quiescent point -- after worker threads joined --
/// exactly like a real kernel draining per-CPU audit backlogs. On a single
/// thread everything lands in one slot, so record order is preserved and
/// the consolidation miner still sees the paper's ordered syscall stream.
class Audit {
 public:
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(const AuditRecord& r) {
    if (enabled()) buffers_.local().push_back(r);
  }

  /// Merged view of every CPU's buffer (rebuilt per call; the reference
  /// stays valid until the next records()/clear()). Quiescent-point read.
  [[nodiscard]] const std::vector<AuditRecord>& records() const {
    merged_.clear();
    buffers_.for_each([&](const std::vector<AuditRecord>& b) {
      merged_.insert(merged_.end(), b.begin(), b.end());
    });
    return merged_;
  }

  void clear() {
    buffers_.for_each([](std::vector<AuditRecord>& b) { b.clear(); });
    merged_.clear();
  }

  /// Total user<->kernel bytes across all recorded calls.
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    buffers_.for_each([&](const std::vector<AuditRecord>& b) {
      for (const auto& r : b) sum += r.bytes_in + r.bytes_out;
    });
    return sum;
  }

 private:
  std::atomic<bool> enabled_{false};
  base::PerCpu<std::vector<AuditRecord>> buffers_;
  mutable std::vector<AuditRecord> merged_;
};

}  // namespace usk::uk
