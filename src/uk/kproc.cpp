#include "uk/kproc.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "dl/dl.hpp"
#include "fault/kfail.hpp"
#include "fs/vfs.hpp"
#include "metrics/metrics.hpp"
#include "mm/kmalloc.hpp"
#include "trace/ktrace.hpp"
#include "trace/span.hpp"
#include "uk/audit.hpp"
#include "uk/kernel.hpp"

namespace usk::uk {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

const char* state_name(sched::TaskState s) {
  switch (s) {
    case sched::TaskState::kRunnable: return "runnable";
    case sched::TaskState::kRunning: return "running";
    case sched::TaskState::kParked: return "parked";
    case sched::TaskState::kExited: return "exited";
    case sched::TaskState::kKilled: return "killed";
  }
  return "?";
}

/// One histogram as text: header line, then one `[lo, hi) count #bar`
/// line per occupied bucket (the bpftrace / bcc "hist()" rendering).
void append_hist(std::string& out, const trace::HistogramSnapshot& h) {
  appendf(out,
          "count %" PRIu64 " avg_ns %" PRIu64 " p50_ns %" PRIu64
          " p99_ns %" PRIu64 " max_ns %" PRIu64 "\n",
          h.count, h.avg(), h.percentile(50.0), h.percentile(99.0), h.max);
  std::uint64_t peak = 0;
  for (std::uint64_t b : h.buckets) peak = std::max(peak, b);
  for (std::size_t i = 0; i < trace::HistogramSnapshot::kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    int stars = peak == 0 ? 0
                          : static_cast<int>((h.buckets[i] * 40 + peak - 1) /
                                             peak);
    appendf(out, "  [%" PRIu64 ", %" PRIu64 "] %" PRIu64 " |%.*s|\n",
            trace::HistogramSnapshot::bucket_lo(i),
            trace::HistogramSnapshot::bucket_hi(i), h.buckets[i], stars,
            "****************************************");
  }
}

}  // namespace

void register_kernel_proc(Kernel& k, fs::ProcFs& pfs) {
  pfs.add_file("/self/stat", [&k] {
    std::string out;
    sched::Task* t = k.scheduler().current();
    if (t == nullptr) return std::string("no current task\n");
    appendf(out, "pid %u\nname %s\nstate %s\n", t->pid(), t->name().c_str(),
            state_name(t->state()));
    appendf(out, "syscalls %" PRIu64 "\npreemptions %" PRIu64 "\n",
            t->syscalls, t->preemptions);
    appendf(out,
            "user_units %" PRIu64 "\nkernel_units %" PRIu64
            "\nkernel_wall_ns %" PRIu64 "\n",
            t->times().user, t->times().kernel, t->kernel_wall_ns);
    appendf(out, "bytes_from_user %" PRIu64 "\nbytes_to_user %" PRIu64 "\n",
            t->bytes_from_user, t->bytes_to_user);
    return out;
  });

  pfs.add_file("/vfs/stats", [&k] {
    const fs::VfsStats& s = k.vfs().stats();
    std::string out;
    appendf(out, "opens %" PRIu64 "\ncloses %" PRIu64 "\nreads %" PRIu64 "\n",
            s.opens.load(), s.closes.load(), s.reads.load());
    appendf(out, "writes %" PRIu64 "\nstats %" PRIu64 "\n", s.writes.load(),
            s.stats_.load());
    appendf(out,
            "path_components %" PRIu64 "\nmount_crossings %" PRIu64 "\n",
            s.path_components.load(), s.mount_crossings.load());
    return out;
  });

  pfs.add_file("/vfs/dcache", [&k] {
    fs::DcacheStats s = k.vfs().dcache().stats();
    std::string out;
    appendf(out, "lookups %" PRIu64 "\nhits %" PRIu64 "\nmisses %" PRIu64 "\n",
            s.lookups, s.hits, s.lookups - s.hits);
    appendf(out,
            "inserts %" PRIu64 "\ninvalidations %" PRIu64
            "\nevictions %" PRIu64 "\n",
            s.inserts, s.invalidations, s.evictions);
    return out;
  });

  pfs.add_file("/kernel/boundary", [&k] {
    BoundaryStats s = k.boundary().stats();
    std::string out;
    appendf(out, "crossings %" PRIu64 "\n", s.crossings);
    appendf(out,
            "copies_from_user %" PRIu64 "\ncopies_to_user %" PRIu64 "\n",
            s.copies_from_user, s.copies_to_user);
    appendf(out, "bytes_from_user %" PRIu64 "\nbytes_to_user %" PRIu64 "\n",
            s.bytes_from_user, s.bytes_to_user);
    return out;
  });

  pfs.add_file("/kernel/ratelimits", [] {
    std::string out;
    appendf(out, "# site suppressed\n");
    for (const auto& s : base::klog_ratelimits().report()) {
      appendf(out, "%s %" PRIu64 "\n", s.name.c_str(), s.suppressed);
    }
    return out;
  });

  pfs.add_file("/mm/kmalloc", [&k] {
    const mm::AllocatorStats& s = k.kmalloc().stats();
    std::string out;
    appendf(out,
            "alloc_calls %" PRIu64 "\nfree_calls %" PRIu64
            "\nfailed_allocs %" PRIu64 "\n",
            s.alloc_calls, s.free_calls, s.failed_allocs);
    appendf(out,
            "bytes_requested %" PRIu64 "\noutstanding_allocs %" PRIu64
            "\noutstanding_bytes %" PRIu64 "\n",
            s.bytes_requested, s.outstanding_allocs, s.outstanding_bytes);
    return out;
  });

  pfs.add_file("/sched/stats", [&k] {
    const sched::SchedStats& s = k.scheduler().stats();
    const sched::WaitStats& w = sched::waitqueue_stats();
    std::string out;
    appendf(out,
            "tasks %zu\npreempt_points %" PRIu64 "\nschedules %" PRIu64
            "\nwatchdog_kills %" PRIu64 "\n",
            k.scheduler().task_count(), s.preempt_points.load(),
            s.schedules.load(), s.watchdog_kills.load());
    appendf(out,
            "enqueues %" PRIu64 "\npicks %" PRIu64 "\nsteals %" PRIu64
            "\nsteal_misses %" PRIu64 "\nmigrations %" PRIu64
            "\nyields %" PRIu64 "\nparks %" PRIu64 "\nkills %" PRIu64 "\n",
            s.enqueues.load(), s.picks.load(), s.steals.load(),
            s.steal_misses.load(), s.migrations.load(), s.yields.load(),
            s.parks.load(), s.kills.load());
    appendf(out,
            "wait_parks %" PRIu64 "\nwait_wakeups %" PRIu64
            "\nwait_stale_tokens %" PRIu64 "\nwait_kills %" PRIu64
            "\nwait_timeouts %" PRIu64 "\nparked_now %" PRId64 "\n",
            w.parks.load(), w.wakeups.load(), w.stale_tokens.load(),
            w.kills_while_parked.load(), w.timeouts.load(),
            w.parked_now.load());
    return out;
  });

  // Per-CPU runqueue view: one row per runqueue that has seen any
  // traffic (64 all-zero rows would drown the signal in ktop).
  pfs.add_file("/sched/runqueues", [&k] {
    std::string out;
    appendf(out, "# cpu depth current pushes stolen_from steals "
                 "migrations_in picks\n");
    for (const sched::Scheduler::CpuSnapshot& c :
         k.scheduler().snapshot_cpus()) {
      if (c.pushes == 0 && c.picks == 0 && c.steals == 0 &&
          c.current_pid == 0 && c.depth == 0) {
        continue;
      }
      appendf(out,
              "%zu %zu %u %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
              " %" PRIu64 "\n",
              c.cpu, c.depth, c.current_pid, c.pushes, c.stolen_from,
              c.steals, c.migrations_in, c.picks);
    }
    return out;
  });

  // --- tracing control + views ----------------------------------------------
  pfs.add_file(
      "/trace/enable",
      [] { return std::string(trace::enabled() ? "1\n" : "0\n"); },
      [](std::string_view in) {
        // Accept "0"/"1" with optional trailing whitespace (echo's \n).
        std::size_t end = in.find_last_not_of(" \t\n");
        if (end == std::string_view::npos) return Errno::kEINVAL;
        std::string_view v = in.substr(0, end + 1);
        if (v == "1") {
          trace::ktrace().enable();
        } else if (v == "0") {
          trace::ktrace().disable();
        } else {
          return Errno::kEINVAL;
        }
        return Errno::kOk;
      });

  pfs.add_file("/trace/events", [] {
    std::string out;
    appendf(out, "enabled %d\nemitted %" PRIu64 "\ndropped %" PRIu64 "\n",
            trace::enabled() ? 1 : 0, trace::ktrace().emitted(),
            trace::ktrace().dropped());
    for (const trace::SiteInfo& s : trace::ktrace().sites()) {
      appendf(out, "%s:%s %" PRIu64 "\n", s.subsys, s.name, s.hits);
    }
    return out;
  });

  pfs.add_file("/trace/hist/syscall", [] {
    std::string out;
    for (std::uint16_t nr = 0; nr < trace::Ktrace::kMaxSyscalls; ++nr) {
      trace::HistogramSnapshot h =
          trace::ktrace().syscall_hist(nr).snapshot();
      if (h.count == 0) continue;
      appendf(out, "%s ", sys_name(static_cast<Sys>(nr)));
      append_hist(out, h);
    }
    return out;
  });

  pfs.add_file("/trace/hist/ops", [] {
    std::string out;
    for (const trace::OpHistInfo& o : trace::ktrace().op_hists()) {
      if (o.hist.count == 0) continue;
      appendf(out, "%s:%s ", o.subsys, o.name);
      append_hist(out, o.hist);
    }
    return out;
  });

  // Ring accounting: totals plus one row per CPU that has emitted, so a
  // wraparound on one hot CPU is visible even when the totals look tame.
  pfs.add_file("/trace/stats", [] {
    std::string out;
    appendf(out, "enabled %d\nemitted %" PRIu64 "\ndropped %" PRIu64 "\n",
            trace::enabled() ? 1 : 0, trace::ktrace().emitted(),
            trace::ktrace().dropped());
    appendf(out, "# cpu emitted dropped capacity\n");
    for (const auto& c : trace::ktrace().per_cpu_stats()) {
      appendf(out, "%zu %" PRIu64 " %" PRIu64 " %zu\n", c.cpu, c.emitted,
              c.dropped, c.capacity);
    }
    return out;
  });

  // --- spans ----------------------------------------------------------------
  pfs.add_file(
      "/span/enable",
      [] { return std::string(trace::span_enabled() ? "1\n" : "0\n"); },
      [](std::string_view in) {
        std::size_t end = in.find_last_not_of(" \t\n");
        if (end == std::string_view::npos) return Errno::kEINVAL;
        std::string_view v = in.substr(0, end + 1);
        if (v == "1") {
          trace::kspan().enable();
        } else if (v == "0") {
          trace::kspan().disable();
        } else {
          return Errno::kEINVAL;
        }
        return Errno::kOk;
      });

  pfs.add_file("/span/stats", [] {
    const trace::SpanStats s = trace::kspan().stats();
    std::string out;
    appendf(out,
            "enabled %d\nstarted %" PRIu64 "\nfinished %" PRIu64
            "\ndropped %" PRIu64 "\nactive %" PRIu64 "\n",
            trace::span_enabled() ? 1 : 0, s.started, s.finished, s.dropped,
            s.active);
    return out;
  });

  pfs.add_file("/span/spans", [] {
    std::string out;
    appendf(out,
            "# id parent pid ext vehicle name dur_ns crossings bytes_in "
            "bytes_out kernel_units status\n");
    for (const trace::SpanRecord& s : trace::kspan().snapshot()) {
      appendf(out,
              "%" PRIu64 " %" PRIu64 " %u %d %s %s %" PRIu64 " %" PRIu64
              " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRId64 "\n",
              s.id, s.parent, s.pid, s.ext,
              trace::span_vehicle_name(s.vehicle), s.name,
              s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0,
              s.crossings, s.bytes_in, s.bytes_out, s.kernel_units,
              s.status);
    }
    return out;
  });

  // --- metrics ---------------------------------------------------------------
  // Bridge the counters other subsystems own into kmetrics once (the
  // registry replaces callbacks on re-registration, so multi-Kernel
  // tests don't duplicate series), then expose the whole registry.
  metrics::kmetrics().gauge_fn(
      "usk_trace_events_emitted", "ktrace events emitted since reset", {},
      [] { return static_cast<std::int64_t>(trace::ktrace().emitted()); });
  metrics::kmetrics().gauge_fn(
      "usk_trace_events_dropped",
      "ktrace events lost to full per-CPU rings", {},
      [] { return static_cast<std::int64_t>(trace::ktrace().dropped()); });
  metrics::kmetrics().gauge_fn(
      "usk_sched_steals", "runqueue picks served by work stealing", {}, [&k] {
        return static_cast<std::int64_t>(k.scheduler().stats().steals.load());
      });
  metrics::kmetrics().gauge_fn(
      "usk_sched_migrations", "tasks entered on a CPU other than their last",
      {}, [&k] {
        return static_cast<std::int64_t>(
            k.scheduler().stats().migrations.load());
      });
  metrics::kmetrics().gauge_fn(
      "usk_sched_wakeups", "WaitQueue wake_one/wake_all calls", {}, [] {
        return static_cast<std::int64_t>(
            sched::waitqueue_stats().wakeups.load());
      });
  metrics::kmetrics().gauge_fn(
      "usk_sched_parks", "tasks parked on WaitQueues (cumulative)", {}, [] {
        return static_cast<std::int64_t>(sched::waitqueue_stats().parks.load());
      });
  metrics::kmetrics().gauge_fn(
      "usk_sched_parked_tasks", "tasks parked on WaitQueues right now", {},
      [] { return sched::waitqueue_stats().parked_now.load(); });
  metrics::kmetrics().gauge_fn(
      "usk_sched_wait_timeouts",
      "parked waits ended by a user-requested deadline", {}, [] {
        return static_cast<std::int64_t>(
            sched::waitqueue_stats().timeouts.load());
      });
  metrics::kmetrics().gauge_fn(
      "usk_spans_started", "spans opened since reset", {},
      [] { return static_cast<std::int64_t>(trace::kspan().stats().started); });
  metrics::kmetrics().gauge_fn(
      "usk_spans_dropped", "finished spans evicted from the store", {},
      [] { return static_cast<std::int64_t>(trace::kspan().stats().dropped); });
  metrics::kmetrics().add_scrape_fn("ktrace.syscall_latency", [](std::string&
                                                                     out) {
    // Per-syscall latency quantiles computed from the SAME histograms
    // /proc/trace/hist/syscall renders, so the two surfaces agree.
    out +=
        "# HELP usk_syscall_latency_ns syscall wall latency (ktrace log2 "
        "histograms)\n# TYPE usk_syscall_latency_ns gauge\n";
    for (std::uint16_t nr = 0; nr < trace::Ktrace::kMaxSyscalls; ++nr) {
      trace::HistogramSnapshot h = trace::ktrace().syscall_hist(nr).snapshot();
      if (h.count == 0) continue;
      const char* name = sys_name(static_cast<Sys>(nr));
      appendf(out, "usk_syscall_latency_ns{syscall=\"%s\",quantile=\"0.5\"} %" PRIu64 "\n",
              name, h.percentile(50.0));
      appendf(out, "usk_syscall_latency_ns{syscall=\"%s\",quantile=\"0.99\"} %" PRIu64 "\n",
              name, h.percentile(99.0));
      appendf(out, "usk_syscall_latency_ns_count{syscall=\"%s\"} %" PRIu64 "\n",
              name, h.count);
    }
  });

  // --- /proc/dl: deadlines, cancellation, admission (dl/dl.hpp) -------------
  pfs.add_file(
      "/dl/enable",
      [] {
        return std::string(dl::Kdl::instance().enabled() ? "1\n" : "0\n");
      },
      [](std::string_view in) {
        std::size_t end = in.find_last_not_of(" \t\n");
        if (end == std::string_view::npos) return Errno::kEINVAL;
        std::string_view v = in.substr(0, end + 1);
        if (v == "1") {
          dl::Kdl::instance().set_enabled(true);
        } else if (v == "0") {
          dl::Kdl::instance().set_enabled(false);
        } else {
          return Errno::kEINVAL;
        }
        return Errno::kOk;
      });
  pfs.add_file(
      "/dl/stats", [] { return dl::Kdl::instance().format_stats(); },
      [](std::string_view) {
        dl::Kdl::instance().reset();
        return Errno::kOk;
      });
  pfs.add_file("/dl/tenants",
               [] { return dl::Kdl::instance().format_tenants(); });

  metrics::kmetrics().gauge_fn(
      "usk_dl_active", "live DeadlineScopes (requests in flight under kdl)",
      {}, [] { return dl::Kdl::instance().stats().active.load(); });
  metrics::kmetrics().gauge_fn(
      "usk_dl_expired", "requests retired past their deadline", {}, [] {
        return static_cast<std::int64_t>(
            dl::Kdl::instance().stats().retired_expired.load());
      });
  metrics::kmetrics().gauge_fn(
      "usk_dl_canceled", "requests retired by cooperative cancel", {}, [] {
        return static_cast<std::int64_t>(
            dl::Kdl::instance().stats().retired_canceled.load());
      });
  metrics::kmetrics().gauge_fn(
      "usk_dl_sheds", "requests shed by admission control", {}, [] {
        return static_cast<std::int64_t>(
            dl::Kdl::instance().stats().sheds.load());
      });
  metrics::kmetrics().gauge_fn(
      "usk_dl_gateway_failfast",
      "syscalls refused at the gateway (expired + canceled)", {}, [] {
        const dl::DlStats& s = dl::Kdl::instance().stats();
        return static_cast<std::int64_t>(s.gateway_expired.load() +
                                         s.gateway_canceled.load());
      });

  pfs.add_file("/metrics", [] { return metrics::kmetrics().expose(); });

  // --- /proc/fail: runtime fault-injection control (see fault/kfail.hpp) ----
  // Reading /proc/fail/spec shows the armed configuration; writing a spec
  // string ("kmalloc:p=0.01:transient", "off", ...) applies it live.
  pfs.add_file(
      "/fail/spec", [] { return fault::kfail().format_spec(); },
      [](std::string_view in) {
        // Trim the trailing newline an `echo >` writer appends.
        while (!in.empty() && (in.back() == '\n' || in.back() == ' ')) {
          in.remove_suffix(1);
        }
        Result<void> r = fault::kfail().apply_spec(in);
        return r.ok() ? Errno::kOk : r.error();
      });
  pfs.add_file("/fail/stats",
               [] { return fault::kfail().format_stats(); },
               [](std::string_view) {
                 fault::kfail().reset_stats();
                 return Errno::kOk;
               });
  pfs.add_file(
      "/fail/seed",
      [] {
        std::string out;
        appendf(out, "%" PRIu64 "\n", fault::kfail().seed());
        return out;
      },
      [](std::string_view in) {
        std::uint64_t seed = 0;
        bool any = false;
        for (char ch : in) {
          if (ch < '0' || ch > '9') break;
          seed = seed * 10 + static_cast<std::uint64_t>(ch - '0');
          any = true;
        }
        if (!any) return Errno::kEINVAL;
        fault::kfail().set_seed(seed);
        return Errno::kOk;
      });
}

void register_storage_proc(fs::ProcFs& pfs, store::Store* store,
                           blockdev::BufferCache* cache) {
  if (cache != nullptr) {
    pfs.add_file("/blockdev/cache", [cache] {
      const blockdev::CacheStats s = cache->stats();
      std::string out;
      appendf(out,
              "lookups %" PRIu64 "\nhits %" PRIu64 "\nmisses %" PRIu64 "\n",
              s.lookups, s.hits, s.misses);
      appendf(out, "hit_rate_pct %" PRIu64 "\n",
              static_cast<std::uint64_t>(s.hit_rate() * 100.0));
      appendf(out,
              "writebacks %" PRIu64 "\nbg_writebacks %" PRIu64
              "\nevictions %" PRIu64 "\ngate_rejects %" PRIu64 "\n",
              s.writebacks, s.bg_writebacks, s.evictions, s.gate_rejects);
      appendf(out, "cached %zu\ndirty %zu\ncapacity %zu\nflusher %d\n",
              cache->size(), cache->dirty_count(), cache->capacity(),
              cache->writeback_running() ? 1 : 0);
      return out;
    });
    metrics::kmetrics().gauge_fn(
        "usk_cache_hits", "buffer cache lookup hits", {},
        [cache] { return static_cast<std::int64_t>(cache->stats().hits); });
    metrics::kmetrics().gauge_fn(
        "usk_cache_misses", "buffer cache lookup misses", {},
        [cache] { return static_cast<std::int64_t>(cache->stats().misses); });
    metrics::kmetrics().gauge_fn(
        "usk_cache_writebacks", "dirty blocks written back", {}, [cache] {
          return static_cast<std::int64_t>(cache->stats().writebacks);
        });
    metrics::kmetrics().gauge_fn(
        "usk_cache_bg_writebacks", "writebacks by the flusher thread", {},
        [cache] {
          return static_cast<std::int64_t>(cache->stats().bg_writebacks);
        });
    metrics::kmetrics().gauge_fn(
        "usk_cache_dirty_blocks", "currently dirty cached blocks", {},
        [cache] { return static_cast<std::int64_t>(cache->dirty_count()); });
    metrics::kmetrics().gauge_fn(
        "usk_cache_gate_rejects", "writes refused by the dirty gate", {},
        [cache] {
          return static_cast<std::int64_t>(cache->stats().gate_rejects);
        });
  }
  if (store == nullptr) return;

  pfs.add_file("/store/stats", [store] {
    const store::StoreStats ss = store->stats();
    const store::ImageStats is = store->image().stats();
    std::string out;
    appendf(out,
            "checkpoints %" PRIu64 "\nenospc_retries %" PRIu64
            "\nrecoveries %" PRIu64 "\nstable_seq %" PRIu64 "\n",
            ss.checkpoints, ss.enospc_retries, ss.recoveries,
            store->stable_seq());
    appendf(out,
            "image_preads %" PRIu64 "\nimage_pwrites %" PRIu64
            "\nimage_fsyncs %" PRIu64 "\n",
            is.preads, is.pwrites, is.fsyncs);
    appendf(out, "image_bytes_read %" PRIu64 "\nimage_bytes_written %" PRIu64 "\n",
            is.bytes_read, is.bytes_written);
    appendf(out, "short_writes %" PRIu64 "\nfsync_failures %" PRIu64 "\n",
            is.short_writes, is.fsync_failures);
    return out;
  });

  pfs.add_file("/store/journal", [store] {
    std::string out;
    store::GroupCommitJournal* j = store->journal();
    if (j == nullptr) return std::string("no journal\n");
    const store::JournalStats s = j->stats();
    appendf(out,
            "txns_committed %" PRIu64 "\ncommit_units %" PRIu64
            "\nrecords_written %" PRIu64 "\nbytes_written %" PRIu64 "\n",
            s.txns_committed, s.commit_units, s.records_written,
            s.bytes_written);
    appendf(out,
            "max_batch_txns %" PRIu64 "\ntorn_headers %" PRIu64
            "\nresets %" PRIu64 "\n",
            s.max_batch_txns, s.torn_headers, s.resets);
    appendf(out, "txns_per_flush_x100 %" PRIu64 "\n",
            static_cast<std::uint64_t>(s.txns_per_flush() * 100.0));
    appendf(out, "tail_bytes %" PRIu64 "\nregion_bytes %" PRIu64 "\n",
            j->tail_bytes(), j->region_bytes());
    return out;
  });

  metrics::kmetrics().gauge_fn(
      "usk_store_checkpoints", "store checkpoints completed", {},
      [store] { return static_cast<std::int64_t>(store->stats().checkpoints); });
  metrics::kmetrics().gauge_fn(
      "usk_store_stable_seq", "last checkpointed commit-unit seq", {},
      [store] { return static_cast<std::int64_t>(store->stable_seq()); });
  metrics::kmetrics().gauge_fn(
      "usk_store_image_fsyncs", "backing-image fsync calls", {}, [store] {
        return static_cast<std::int64_t>(store->image().stats().fsyncs);
      });
  metrics::kmetrics().gauge_fn(
      "usk_journal_commit_units", "group-commit units written (fsyncs)", {},
      [store] {
        store::GroupCommitJournal* j = store->journal();
        return j != nullptr
                   ? static_cast<std::int64_t>(j->stats().commit_units)
                   : 0;
      });
  metrics::kmetrics().gauge_fn(
      "usk_journal_txns_committed", "transactions made durable", {},
      [store] {
        store::GroupCommitJournal* j = store->journal();
        return j != nullptr
                   ? static_cast<std::int64_t>(j->stats().txns_committed)
                   : 0;
      });
  metrics::kmetrics().gauge_fn(
      "usk_journal_txns_per_flush_x100",
      "group-commit amortization (txns per fsync, x100)", {}, [store] {
        store::GroupCommitJournal* j = store->journal();
        return j != nullptr
                   ? static_cast<std::int64_t>(j->stats().txns_per_flush() *
                                               100.0)
                   : 0;
      });
}

}  // namespace usk::uk
