#include "uk/kernel.hpp"

#include <algorithm>
#include <cstring>

#include "dl/dl.hpp"
#include "fs/procfs.hpp"
#include "trace/span.hpp"
#include "trace/tracepoint.hpp"
#include "uk/kproc.hpp"

namespace usk::uk {

Kernel::Kernel(fs::FileSystem& rootfs, KernelConfig cfg)
    : phys_(cfg.phys_frames),
      kernel_as_(phys_, "kernel"),
      kmalloc_(phys_, cfg.kmalloc_per_cpu_cache),
      vmalloc_(kernel_as_, cfg.vmalloc_base, cfg.vmalloc_pages),
      sched_(cfg.sched_quantum),
      boundary_(engine_, cfg.boundary),
      vfs_(rootfs, cfg.dcache_capacity, cfg.dcache_shards) {}

Kernel::~Kernel() = default;

// --- supervisor gateway -------------------------------------------------------

namespace {
std::atomic<SupGatewayFn> g_sup_fn{nullptr};
std::atomic<void*> g_sup_ctx{nullptr};
}  // namespace

void set_sup_gateway(SupGatewayFn fn, void* ctx) {
  if (fn == nullptr) {
    // Disarm first so in-flight Scopes stop consulting the pointer pair
    // before it is cleared.
    supdetail::g_armed.store(false, std::memory_order_release);
    g_sup_fn.store(nullptr, std::memory_order_release);
    g_sup_ctx.store(nullptr, std::memory_order_release);
    return;
  }
  g_sup_ctx.store(ctx, std::memory_order_release);
  g_sup_fn.store(fn, std::memory_order_release);
  supdetail::g_armed.store(true, std::memory_order_release);
}

fs::ProcFs& Kernel::mount_procfs() {
  std::lock_guard lk(spawn_mu_);
  if (!procfs_) {
    procfs_ = std::make_unique<fs::ProcFs>();
    register_kernel_proc(*this, *procfs_);
    // EEXIST is fine: the root filesystem may already have a /proc dir.
    vfs_.mkdir("/proc", 0555);
    vfs_.mount("/proc", *procfs_);
  }
  return *procfs_;
}

Process& Kernel::spawn(std::string name) {
  sched::Task& t = sched_.spawn(std::move(name));
  std::lock_guard lk(spawn_mu_);
  // Round-robin affinity: pooled dispatchers enqueue onto the task's home
  // runqueue; direct dispatch ignores it (enter() runs wherever called).
  sched_.bind(t, procs_.size() % sched_.cpu_count());
  procs_.push_back(std::make_unique<Process>(t));
  return *procs_.back();
}

// --- Scope ------------------------------------------------------------------

Kernel::Scope::Scope(Kernel& k, Process& p, Sys nr)
    : k_(k), p_(p), nr_(nr), wall0_(std::chrono::steady_clock::now()) {
  // Per-task copy counters: the audit byte deltas stay correct when other
  // tasks dispatch concurrently on sibling CPUs.
  in0_ = p_.task.bytes_from_user;
  out0_ = p_.task.bytes_to_user;
  kunits0_ = p_.task.times().kernel;
  trace::set_current_pid(p_.task.pid());
  USK_TRACEPOINT("syscall", "enter", static_cast<std::uint64_t>(nr));
  k_.boundary_.enter_kernel(p_.task);
  ++p_.task.syscalls;
  k_.sched_.enter(p_.task);
  // kdl gateway: an expired or canceled request fails fast here instead
  // of spending kernel units on work whose answer nobody will take.
  // Disarmed, this whole block is one relaxed load.
  if (dl::dl_enabled()) gate_err_ = dl::gate_check(&p_.task);
}

Kernel::Scope::~Scope() {
  k_.boundary_.exit_kernel(p_.task);
  const std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall0_)
          .count());
  p_.task.kernel_wall_ns += wall_ns;
  // Always-on log2 latency histogram (the wall time is already in hand,
  // so this is one relaxed increment -- see trace::Ktrace).
  trace::ktrace().record_syscall(static_cast<std::uint16_t>(nr_), wall_ns);
  USK_TRACEPOINT("syscall", "exit", static_cast<std::uint64_t>(nr_),
                 static_cast<std::uint64_t>(ret_));
  AuditRecord r;
  r.pid = p_.task.pid();
  r.nr = nr_;
  r.ret = ret_;
  r.bytes_in = static_cast<std::uint32_t>(p_.task.bytes_from_user - in0_);
  r.bytes_out = static_cast<std::uint32_t>(p_.task.bytes_to_user - out0_);
  k_.audit_.record(r);
  // Span attribution: the innermost open span (if any) absorbs this
  // call's crossing and its byte/unit deltas. No span -> one
  // thread-local load, same discipline as the gateway check below.
  if (trace::SpanScope* sp = trace::SpanScope::current()) {
    sp->attribute_syscall(r.bytes_in, r.bytes_out,
                          p_.task.times().kernel - kunits0_, ret_);
  }
  // Supervisor gateway: one relaxed load when no supervisor is registered.
  if (sup_gateway_armed()) {
    if (SupGatewayFn fn = g_sup_fn.load(std::memory_order_acquire)) {
      fn(g_sup_ctx.load(std::memory_order_acquire), p_, nr_, ret_,
         p_.task.times().kernel - kunits0_);
    }
  }
}

// --- helpers ----------------------------------------------------------------

namespace {
template <typename T>
T* uptr(std::uint64_t v) {
  return reinterpret_cast<T*>(static_cast<std::uintptr_t>(v));
}
}  // namespace

std::int64_t Kernel::get_user_path(Process& p, const char* upath,
                                   char* kpath) {
  if (upath == nullptr) return sysret_err(Errno::kEFAULT);
  Result<std::size_t> len =
      boundary_.strncpy_from_user(p.task, kpath, upath, kMaxPath);
  if (!len) return sysret_err(len.error());
  return static_cast<std::int64_t>(len.value());
}

// --- the gateway --------------------------------------------------------------

const Kernel::HandlerTable& Kernel::handlers() {
  static const HandlerTable table = [] {
    HandlerTable t{};
    auto set = [&t](Sys nr, SysHandler h) {
      t[static_cast<std::size_t>(nr)] = h;
    };
    set(Sys::kOpen, &Kernel::do_open);
    set(Sys::kClose, &Kernel::do_close);
    set(Sys::kDup, &Kernel::do_dup);
    set(Sys::kRead, &Kernel::do_read);
    set(Sys::kWrite, &Kernel::do_write);
    set(Sys::kLseek, &Kernel::do_lseek);
    set(Sys::kStat, &Kernel::do_stat);
    set(Sys::kFstat, &Kernel::do_fstat);
    set(Sys::kReaddir, &Kernel::do_readdir);
    set(Sys::kUnlink, &Kernel::do_unlink);
    set(Sys::kMkdir, &Kernel::do_mkdir);
    set(Sys::kRmdir, &Kernel::do_rmdir);
    set(Sys::kRename, &Kernel::do_rename);
    set(Sys::kTruncate, &Kernel::do_truncate);
    set(Sys::kGetpid, &Kernel::do_getpid);
    set(Sys::kSync, &Kernel::do_sync);
    set(Sys::kFsync, &Kernel::do_fsync);
    set(Sys::kFdatasync, &Kernel::do_fdatasync);
    set(Sys::kLink, &Kernel::do_link);
    set(Sys::kChmod, &Kernel::do_chmod);
    return t;
  }();
  return table;
}

SysRet Kernel::syscall(Process& p, Sys nr, const SysArgs& a) {
  const std::size_t idx = static_cast<std::size_t>(nr);
  const SysHandler h = idx < handlers().size() ? handlers()[idx] : nullptr;
  if (h != nullptr) {
    // The Scope is constructed HERE for every table-dispatched call: one
    // crossing, one audit record, one ktrace sample per entry.
    Scope scope(*this, p, nr);
    if (SysRet g = scope.gate(); g != 0) return g;
    return scope.done((this->*h)(p, a));
  }
  if (idx < external_.size()) {
    if (ExternalSysFn fn = external_[idx].fn.load(std::memory_order_acquire)) {
      // Runtime-registered slot: the handler owns its Scope discipline.
      return fn(external_[idx].ctx.load(std::memory_order_acquire), *this, p,
                a);
    }
  }
  Scope scope(*this, p, nr);
  return scope.fail(Errno::kENOSYS);
}

void Kernel::register_syscall(Sys nr, ExternalSysFn fn, void* ctx) {
  const std::size_t idx = static_cast<std::size_t>(nr);
  if (idx >= external_.size() || handlers()[idx] != nullptr) return;
  if (fn == nullptr) {
    // Disarm the function first so a racing dispatch never pairs the old
    // fn with a cleared ctx.
    external_[idx].fn.store(nullptr, std::memory_order_release);
    external_[idx].ctx.store(nullptr, std::memory_order_release);
    return;
  }
  external_[idx].ctx.store(ctx, std::memory_order_release);
  external_[idx].fn.store(fn, std::memory_order_release);
}

SysRet Kernel::dispatch_nested(Process& p, Sys nr, const SysArgs& a) {
  const std::size_t idx = static_cast<std::size_t>(nr);
  const SysHandler h = idx < handlers().size() ? handlers()[idx] : nullptr;
  if (h == nullptr) return sysret_err(Errno::kENOSYS);
  return (this->*h)(p, a);
}

// --- typed wrappers (the userlib-facing ABI) ----------------------------------

SysRet Kernel::sys_open(Process& p, const char* upath, int flags,
                        std::uint32_t mode) {
  return syscall(p, Sys::kOpen,
                 {uarg(upath), static_cast<std::uint64_t>(flags), mode, 0});
}
SysRet Kernel::sys_close(Process& p, int fd) {
  return syscall(p, Sys::kClose, {static_cast<std::uint64_t>(fd)});
}
SysRet Kernel::sys_dup(Process& p, int fd) {
  return syscall(p, Sys::kDup, {static_cast<std::uint64_t>(fd)});
}
SysRet Kernel::sys_read(Process& p, int fd, void* ubuf, std::size_t n) {
  return syscall(p, Sys::kRead,
                 {static_cast<std::uint64_t>(fd), uarg(ubuf), n, 0});
}
SysRet Kernel::sys_write(Process& p, int fd, const void* ubuf,
                         std::size_t n) {
  return syscall(p, Sys::kWrite,
                 {static_cast<std::uint64_t>(fd), uarg(ubuf), n, 0});
}
SysRet Kernel::sys_lseek(Process& p, int fd, std::int64_t off, int whence) {
  return syscall(p, Sys::kLseek,
                 {static_cast<std::uint64_t>(fd),
                  static_cast<std::uint64_t>(off),
                  static_cast<std::uint64_t>(whence), 0});
}
SysRet Kernel::sys_stat(Process& p, const char* upath, fs::StatBuf* ust) {
  return syscall(p, Sys::kStat, {uarg(upath), uarg(ust), 0, 0});
}
SysRet Kernel::sys_fstat(Process& p, int fd, fs::StatBuf* ust) {
  return syscall(p, Sys::kFstat,
                 {static_cast<std::uint64_t>(fd), uarg(ust), 0, 0});
}
SysRet Kernel::sys_readdir(Process& p, int fd, void* ubuf, std::size_t n) {
  return syscall(p, Sys::kReaddir,
                 {static_cast<std::uint64_t>(fd), uarg(ubuf), n, 0});
}
SysRet Kernel::sys_unlink(Process& p, const char* upath) {
  return syscall(p, Sys::kUnlink, {uarg(upath)});
}
SysRet Kernel::sys_mkdir(Process& p, const char* upath, std::uint32_t mode) {
  return syscall(p, Sys::kMkdir, {uarg(upath), mode, 0, 0});
}
SysRet Kernel::sys_rmdir(Process& p, const char* upath) {
  return syscall(p, Sys::kRmdir, {uarg(upath)});
}
SysRet Kernel::sys_rename(Process& p, const char* ufrom, const char* uto) {
  return syscall(p, Sys::kRename, {uarg(ufrom), uarg(uto), 0, 0});
}
SysRet Kernel::sys_truncate(Process& p, const char* upath,
                            std::uint64_t size) {
  return syscall(p, Sys::kTruncate, {uarg(upath), size, 0, 0});
}
SysRet Kernel::sys_getpid(Process& p) { return syscall(p, Sys::kGetpid); }
SysRet Kernel::sys_sync(Process& p) { return syscall(p, Sys::kSync); }
SysRet Kernel::sys_fsync(Process& p, int fd) {
  return syscall(p, Sys::kFsync, {static_cast<std::uint64_t>(fd)});
}
SysRet Kernel::sys_fdatasync(Process& p, int fd) {
  return syscall(p, Sys::kFdatasync, {static_cast<std::uint64_t>(fd)});
}
SysRet Kernel::sys_link(Process& p, const char* ufrom, const char* uto) {
  return syscall(p, Sys::kLink, {uarg(ufrom), uarg(uto), 0, 0});
}
SysRet Kernel::sys_chmod(Process& p, const char* upath, std::uint32_t mode) {
  return syscall(p, Sys::kChmod, {uarg(upath), mode, 0, 0});
}

// --- handlers -----------------------------------------------------------------
// Error-path discipline (audited, regression-tested in test_uk.cpp):
// descriptor validity (EBADF) is decided BEFORE any user-memory copy or
// kernel buffer allocation, and user copies are fallible -- a faulted
// copy-out rewinds file position so no data is silently consumed.

SysRet Kernel::do_open(Process& p, const SysArgs& a) {
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, uptr<const char>(a.a0), kpath);
  if (len < 0) return len;
  Result<int> r = vfs_.open(
      p.fds, std::string_view(kpath, static_cast<std::size_t>(len)),
      static_cast<int>(a.a1), static_cast<std::uint32_t>(a.a2));
  if (!r) return sysret_err(r.error());
  return r.value();
}

SysRet Kernel::do_close(Process& p, const SysArgs& a) {
  Result<void> r = vfs_.close(p.fds, static_cast<int>(a.a0));
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_dup(Process& p, const SysArgs& a) {
  Result<int> r = vfs_.dup(p.fds, static_cast<int>(a.a0));
  if (!r) return sysret_err(r.error());
  return r.value();
}

SysRet Kernel::do_read(Process& p, const SysArgs& a) {
  const int fd = static_cast<int>(a.a0);
  void* ubuf = uptr<void>(a.a1);
  std::size_t n = std::min(static_cast<std::size_t>(a.a2), kMaxIo);
  // EBADF before EFAULT, and before any buffer allocation: a bad
  // descriptor must not cost a kernel allocation or touch user memory.
  fs::OpenFile* f = p.fds.get(fd);
  if (f == nullptr || (f->flags & fs::kAccessMode) == fs::kOWrOnly) {
    return sysret_err(Errno::kEBADF);
  }
  if (ubuf == nullptr) return sysret_err(Errno::kEFAULT);
  std::vector<std::byte> kbuf(n);
  Result<std::size_t> r = vfs_.read(p.fds, fd, std::span(kbuf.data(), n));
  if (!r) return sysret_err(r.error());
  if (r.value() > 0) {
    if (Result<std::size_t> c =
            boundary_.copy_to_user(p.task, ubuf, kbuf.data(), r.value());
        !c) {
      // The user never saw the bytes: rewind the position the VFS
      // advanced so the data is not silently consumed.
      f->pos -= r.value();
      return sysret_err(c.error());
    }
  }
  return static_cast<SysRet>(r.value());
}

SysRet Kernel::do_write(Process& p, const SysArgs& a) {
  const int fd = static_cast<int>(a.a0);
  const void* ubuf = uptr<const void>(a.a1);
  std::size_t n = std::min(static_cast<std::size_t>(a.a2), kMaxIo);
  // Validate the descriptor before paying for the copy-in: a bad or
  // read-only fd must fail without charging the caller for user->kernel
  // bytes (parity with do_read, which never copies on EBADF).
  fs::OpenFile* f = p.fds.get(fd);
  if (f == nullptr || (f->flags & fs::kAccessMode) == fs::kORdOnly) {
    return sysret_err(Errno::kEBADF);
  }
  if (ubuf == nullptr) return sysret_err(Errno::kEFAULT);
  std::vector<std::byte> kbuf(n);
  if (Result<std::size_t> c =
          boundary_.copy_from_user(p.task, kbuf.data(), ubuf, n);
      !c) {
    return sysret_err(c.error());
  }
  Result<std::size_t> r = vfs_.write(p.fds, fd, std::span(kbuf.data(), n));
  if (!r) return sysret_err(r.error());
  return static_cast<SysRet>(r.value());
}

SysRet Kernel::do_lseek(Process& p, const SysArgs& a) {
  Result<std::uint64_t> r =
      vfs_.lseek(p.fds, static_cast<int>(a.a0),
                 static_cast<std::int64_t>(a.a1), static_cast<int>(a.a2));
  if (!r) return sysret_err(r.error());
  return static_cast<SysRet>(r.value());
}

SysRet Kernel::do_stat(Process& p, const SysArgs& a) {
  fs::StatBuf* ust = uptr<fs::StatBuf>(a.a1);
  if (ust == nullptr) return sysret_err(Errno::kEFAULT);
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, uptr<const char>(a.a0), kpath);
  if (len < 0) return len;
  fs::StatBuf st;
  Result<void> r = vfs_.stat(
      std::string_view(kpath, static_cast<std::size_t>(len)), &st);
  if (!r.ok()) return sysret_err(r.error());
  if (Result<std::size_t> c =
          boundary_.copy_to_user(p.task, ust, &st, sizeof(st));
      !c) {
    return sysret_err(c.error());
  }
  return 0;
}

SysRet Kernel::do_fstat(Process& p, const SysArgs& a) {
  fs::StatBuf* ust = uptr<fs::StatBuf>(a.a1);
  // EBADF before EFAULT: descriptor validity is decided first, like
  // Linux's fstat (fdget before copy_to_user can fault).
  fs::StatBuf st;
  Result<void> r = vfs_.fstat(p.fds, static_cast<int>(a.a0), &st);
  if (!r.ok()) return sysret_err(r.error());
  if (ust == nullptr) return sysret_err(Errno::kEFAULT);
  if (Result<std::size_t> c =
          boundary_.copy_to_user(p.task, ust, &st, sizeof(st));
      !c) {
    return sysret_err(c.error());
  }
  return 0;
}

SysRet Kernel::do_readdir(Process& p, const SysArgs& a) {
  const int fd = static_cast<int>(a.a0);
  void* ubuf = uptr<void>(a.a1);
  std::size_t n = std::min(static_cast<std::size_t>(a.a2), kMaxIo);
  // EBADF before EFAULT (see do_read).
  fs::OpenFile* f = p.fds.get(fd);
  if (f == nullptr) return sysret_err(Errno::kEBADF);
  if (ubuf == nullptr) return sysret_err(Errno::kEFAULT);

  // Estimate how many entries can fit, fetch a window, pack what fits.
  std::size_t max_entries = std::max<std::size_t>(1, n / sizeof(DirentHdr));
  Result<std::vector<fs::DirEntry>> win =
      vfs_.readdir_window(p.fds, fd, f->pos, max_entries);
  if (!win) return sysret_err(win.error());

  std::vector<std::byte> kbuf(n);
  std::size_t off = 0;
  std::size_t taken = 0;
  for (const fs::DirEntry& de : win.value()) {
    std::size_t rec = sizeof(DirentHdr) + de.name.size();
    if (off + rec > n) break;
    DirentHdr hdr{de.ino, static_cast<std::uint8_t>(de.type),
                  static_cast<std::uint8_t>(de.name.size())};
    std::memcpy(kbuf.data() + off, &hdr, sizeof(hdr));
    std::memcpy(kbuf.data() + off + sizeof(hdr), de.name.data(),
                de.name.size());
    off += rec;
    ++taken;
  }
  if (off > 0) {
    if (Result<std::size_t> c =
            boundary_.copy_to_user(p.task, ubuf, kbuf.data(), off);
        !c) {
      // Position was not advanced yet: the faulted batch is re-readable.
      return sysret_err(c.error());
    }
  }
  f->pos += taken;
  return static_cast<SysRet>(off);
}

SysRet Kernel::do_unlink(Process& p, const SysArgs& a) {
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, uptr<const char>(a.a0), kpath);
  if (len < 0) return len;
  Result<void> r =
      vfs_.unlink(std::string_view(kpath, static_cast<std::size_t>(len)));
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_mkdir(Process& p, const SysArgs& a) {
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, uptr<const char>(a.a0), kpath);
  if (len < 0) return len;
  Result<void> r =
      vfs_.mkdir(std::string_view(kpath, static_cast<std::size_t>(len)),
                 static_cast<std::uint32_t>(a.a1));
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_rmdir(Process& p, const SysArgs& a) {
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, uptr<const char>(a.a0), kpath);
  if (len < 0) return len;
  Result<void> r =
      vfs_.rmdir(std::string_view(kpath, static_cast<std::size_t>(len)));
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_rename(Process& p, const SysArgs& a) {
  char kfrom[kMaxPath];
  char kto[kMaxPath];
  std::int64_t fl = get_user_path(p, uptr<const char>(a.a0), kfrom);
  if (fl < 0) return fl;
  std::int64_t tl = get_user_path(p, uptr<const char>(a.a1), kto);
  if (tl < 0) return tl;
  Result<void> r =
      vfs_.rename(std::string_view(kfrom, static_cast<std::size_t>(fl)),
                  std::string_view(kto, static_cast<std::size_t>(tl)));
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_truncate(Process& p, const SysArgs& a) {
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, uptr<const char>(a.a0), kpath);
  if (len < 0) return len;
  Result<void> r = vfs_.truncate(
      std::string_view(kpath, static_cast<std::size_t>(len)), a.a1);
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_getpid(Process& p, const SysArgs& /*a*/) {
  return static_cast<SysRet>(p.task.pid());
}

SysRet Kernel::do_sync(Process& /*p*/, const SysArgs& /*a*/) {
  Result<void> r = vfs_.filesystem().sync();
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_fsync(Process& p, const SysArgs& a) {
  Result<void> r = vfs_.fsync(p.fds, static_cast<int>(a.a0),
                              /*datasync=*/false);
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_fdatasync(Process& p, const SysArgs& a) {
  Result<void> r = vfs_.fsync(p.fds, static_cast<int>(a.a0),
                              /*datasync=*/true);
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_link(Process& p, const SysArgs& a) {
  char kfrom[kMaxPath];
  char kto[kMaxPath];
  std::int64_t fl = get_user_path(p, uptr<const char>(a.a0), kfrom);
  if (fl < 0) return fl;
  std::int64_t tl = get_user_path(p, uptr<const char>(a.a1), kto);
  if (tl < 0) return tl;
  Result<void> r =
      vfs_.link(std::string_view(kfrom, static_cast<std::size_t>(fl)),
                std::string_view(kto, static_cast<std::size_t>(tl)));
  return r.ok() ? 0 : sysret_err(r.error());
}

SysRet Kernel::do_chmod(Process& p, const SysArgs& a) {
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, uptr<const char>(a.a0), kpath);
  if (len < 0) return len;
  Result<void> r =
      vfs_.chmod(std::string_view(kpath, static_cast<std::size_t>(len)),
                 static_cast<std::uint32_t>(a.a1));
  return r.ok() ? 0 : sysret_err(r.error());
}

}  // namespace usk::uk
