#include "uk/kernel.hpp"

#include <algorithm>
#include <cstring>

#include "fs/procfs.hpp"
#include "trace/tracepoint.hpp"
#include "uk/kproc.hpp"

namespace usk::uk {

Kernel::Kernel(fs::FileSystem& rootfs, KernelConfig cfg)
    : phys_(cfg.phys_frames),
      kernel_as_(phys_, "kernel"),
      kmalloc_(phys_, cfg.kmalloc_per_cpu_cache),
      vmalloc_(kernel_as_, cfg.vmalloc_base, cfg.vmalloc_pages),
      sched_(cfg.sched_quantum),
      boundary_(engine_, cfg.boundary),
      vfs_(rootfs, cfg.dcache_capacity, cfg.dcache_shards) {}

Kernel::~Kernel() = default;

fs::ProcFs& Kernel::mount_procfs() {
  std::lock_guard lk(spawn_mu_);
  if (!procfs_) {
    procfs_ = std::make_unique<fs::ProcFs>();
    register_kernel_proc(*this, *procfs_);
    // EEXIST is fine: the root filesystem may already have a /proc dir.
    vfs_.mkdir("/proc", 0555);
    vfs_.mount("/proc", *procfs_);
  }
  return *procfs_;
}

Process& Kernel::spawn(std::string name) {
  sched::Task& t = sched_.spawn(std::move(name));
  std::lock_guard lk(spawn_mu_);
  procs_.push_back(std::make_unique<Process>(t));
  return *procs_.back();
}

// --- Scope ------------------------------------------------------------------

Kernel::Scope::Scope(Kernel& k, Process& p, Sys nr)
    : k_(k), p_(p), nr_(nr), wall0_(std::chrono::steady_clock::now()) {
  // Per-task copy counters: the audit byte deltas stay correct when other
  // tasks dispatch concurrently on sibling CPUs.
  in0_ = p_.task.bytes_from_user;
  out0_ = p_.task.bytes_to_user;
  trace::set_current_pid(p_.task.pid());
  USK_TRACEPOINT("syscall", "enter", static_cast<std::uint64_t>(nr));
  k_.boundary_.enter_kernel(p_.task);
  ++p_.task.syscalls;
  k_.sched_.set_current(p_.task);
}

Kernel::Scope::~Scope() {
  k_.boundary_.exit_kernel(p_.task);
  const std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall0_)
          .count());
  p_.task.kernel_wall_ns += wall_ns;
  // Always-on log2 latency histogram (the wall time is already in hand,
  // so this is one relaxed increment -- see trace::Ktrace).
  trace::ktrace().record_syscall(static_cast<std::uint16_t>(nr_), wall_ns);
  USK_TRACEPOINT("syscall", "exit", static_cast<std::uint64_t>(nr_),
                 static_cast<std::uint64_t>(ret_));
  AuditRecord r;
  r.pid = p_.task.pid();
  r.nr = nr_;
  r.ret = ret_;
  r.bytes_in = static_cast<std::uint32_t>(p_.task.bytes_from_user - in0_);
  r.bytes_out = static_cast<std::uint32_t>(p_.task.bytes_to_user - out0_);
  k_.audit_.record(r);
}

// --- helpers ----------------------------------------------------------------

std::int64_t Kernel::get_user_path(Process& p, const char* upath,
                                   char* kpath) {
  if (upath == nullptr) return sysret_err(Errno::kEFAULT);
  std::int64_t len = boundary_.strncpy_from_user(p.task, kpath, upath,
                                                 kMaxPath);
  if (len < 0) return sysret_err(Errno::kENAMETOOLONG);
  return len;
}

// --- classic syscalls ---------------------------------------------------------

SysRet Kernel::sys_open(Process& p, const char* upath, int flags,
                        std::uint32_t mode) {
  Scope scope(*this, p, Sys::kOpen);
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, upath, kpath);
  if (len < 0) return scope.done(len);
  Result<int> r = vfs_.open(p.fds, std::string_view(kpath,
                                                    static_cast<std::size_t>(len)),
                            flags, mode);
  if (!r) return scope.fail(r.error());
  return scope.done(r.value());
}

SysRet Kernel::sys_close(Process& p, int fd) {
  Scope scope(*this, p, Sys::kClose);
  Errno e = vfs_.close(p.fds, fd);
  return e == Errno::kOk ? scope.done(0) : scope.fail(e);
}

SysRet Kernel::sys_dup(Process& p, int fd) {
  Scope scope(*this, p, Sys::kDup);
  Result<int> r = vfs_.dup(p.fds, fd);
  if (!r) return scope.fail(r.error());
  return scope.done(r.value());
}

SysRet Kernel::sys_read(Process& p, int fd, void* ubuf, std::size_t n) {
  Scope scope(*this, p, Sys::kRead);
  if (ubuf == nullptr) return scope.fail(Errno::kEFAULT);
  n = std::min(n, kMaxIo);
  std::vector<std::byte> kbuf(n);
  Result<std::size_t> r = vfs_.read(p.fds, fd, std::span(kbuf.data(), n));
  if (!r) return scope.fail(r.error());
  if (r.value() > 0) {
    boundary_.copy_to_user(p.task, ubuf, kbuf.data(), r.value());
  }
  return scope.done(static_cast<SysRet>(r.value()));
}

SysRet Kernel::sys_write(Process& p, int fd, const void* ubuf,
                         std::size_t n) {
  Scope scope(*this, p, Sys::kWrite);
  if (ubuf == nullptr) return scope.fail(Errno::kEFAULT);
  // Validate the descriptor before paying for the copy-in: a bad or
  // read-only fd must fail without charging the caller for user->kernel
  // bytes (parity with sys_read, which never copies on EBADF).
  fs::OpenFile* f = p.fds.get(fd);
  if (f == nullptr || (f->flags & fs::kAccessMode) == fs::kORdOnly) {
    return scope.fail(Errno::kEBADF);
  }
  n = std::min(n, kMaxIo);
  std::vector<std::byte> kbuf(n);
  boundary_.copy_from_user(p.task, kbuf.data(), ubuf, n);
  Result<std::size_t> r = vfs_.write(p.fds, fd, std::span(kbuf.data(), n));
  if (!r) return scope.fail(r.error());
  return scope.done(static_cast<SysRet>(r.value()));
}

SysRet Kernel::sys_lseek(Process& p, int fd, std::int64_t off, int whence) {
  Scope scope(*this, p, Sys::kLseek);
  Result<std::uint64_t> r = vfs_.lseek(p.fds, fd, off, whence);
  if (!r) return scope.fail(r.error());
  return scope.done(static_cast<SysRet>(r.value()));
}

SysRet Kernel::sys_stat(Process& p, const char* upath, fs::StatBuf* ust) {
  Scope scope(*this, p, Sys::kStat);
  if (ust == nullptr) return scope.fail(Errno::kEFAULT);
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, upath, kpath);
  if (len < 0) return scope.done(len);
  fs::StatBuf st;
  Errno e = vfs_.stat(std::string_view(kpath, static_cast<std::size_t>(len)),
                      &st);
  if (e != Errno::kOk) return scope.fail(e);
  boundary_.copy_to_user(p.task, ust, &st, sizeof(st));
  return scope.done(0);
}

SysRet Kernel::sys_fstat(Process& p, int fd, fs::StatBuf* ust) {
  Scope scope(*this, p, Sys::kFstat);
  if (ust == nullptr) return scope.fail(Errno::kEFAULT);
  fs::StatBuf st;
  Errno e = vfs_.fstat(p.fds, fd, &st);
  if (e != Errno::kOk) return scope.fail(e);
  boundary_.copy_to_user(p.task, ust, &st, sizeof(st));
  return scope.done(0);
}

SysRet Kernel::sys_readdir(Process& p, int fd, void* ubuf, std::size_t n) {
  Scope scope(*this, p, Sys::kReaddir);
  if (ubuf == nullptr) return scope.fail(Errno::kEFAULT);
  fs::OpenFile* f = p.fds.get(fd);
  if (f == nullptr) return scope.fail(Errno::kEBADF);
  n = std::min(n, kMaxIo);

  // Estimate how many entries can fit, fetch a window, pack what fits.
  std::size_t max_entries = std::max<std::size_t>(1, n / sizeof(DirentHdr));
  Result<std::vector<fs::DirEntry>> win =
      vfs_.readdir_window(p.fds, fd, f->pos, max_entries);
  if (!win) return scope.fail(win.error());

  std::vector<std::byte> kbuf(n);
  std::size_t off = 0;
  std::size_t taken = 0;
  for (const fs::DirEntry& de : win.value()) {
    std::size_t rec = sizeof(DirentHdr) + de.name.size();
    if (off + rec > n) break;
    DirentHdr hdr{de.ino, static_cast<std::uint8_t>(de.type),
                  static_cast<std::uint8_t>(de.name.size())};
    std::memcpy(kbuf.data() + off, &hdr, sizeof(hdr));
    std::memcpy(kbuf.data() + off + sizeof(hdr), de.name.data(),
                de.name.size());
    off += rec;
    ++taken;
  }
  f->pos += taken;
  if (off > 0) boundary_.copy_to_user(p.task, ubuf, kbuf.data(), off);
  return scope.done(static_cast<SysRet>(off));
}

SysRet Kernel::sys_unlink(Process& p, const char* upath) {
  Scope scope(*this, p, Sys::kUnlink);
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, upath, kpath);
  if (len < 0) return scope.done(len);
  Errno e =
      vfs_.unlink(std::string_view(kpath, static_cast<std::size_t>(len)));
  return e == Errno::kOk ? scope.done(0) : scope.fail(e);
}

SysRet Kernel::sys_mkdir(Process& p, const char* upath, std::uint32_t mode) {
  Scope scope(*this, p, Sys::kMkdir);
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, upath, kpath);
  if (len < 0) return scope.done(len);
  Errno e = vfs_.mkdir(std::string_view(kpath, static_cast<std::size_t>(len)),
                       mode);
  return e == Errno::kOk ? scope.done(0) : scope.fail(e);
}

SysRet Kernel::sys_rmdir(Process& p, const char* upath) {
  Scope scope(*this, p, Sys::kRmdir);
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, upath, kpath);
  if (len < 0) return scope.done(len);
  Errno e = vfs_.rmdir(std::string_view(kpath, static_cast<std::size_t>(len)));
  return e == Errno::kOk ? scope.done(0) : scope.fail(e);
}

SysRet Kernel::sys_rename(Process& p, const char* ufrom, const char* uto) {
  Scope scope(*this, p, Sys::kRename);
  char kfrom[kMaxPath];
  char kto[kMaxPath];
  std::int64_t fl = get_user_path(p, ufrom, kfrom);
  if (fl < 0) return scope.done(fl);
  std::int64_t tl = get_user_path(p, uto, kto);
  if (tl < 0) return scope.done(tl);
  Errno e = vfs_.rename(std::string_view(kfrom, static_cast<std::size_t>(fl)),
                        std::string_view(kto, static_cast<std::size_t>(tl)));
  return e == Errno::kOk ? scope.done(0) : scope.fail(e);
}

SysRet Kernel::sys_truncate(Process& p, const char* upath,
                            std::uint64_t size) {
  Scope scope(*this, p, Sys::kTruncate);
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, upath, kpath);
  if (len < 0) return scope.done(len);
  Errno e = vfs_.truncate(
      std::string_view(kpath, static_cast<std::size_t>(len)), size);
  return e == Errno::kOk ? scope.done(0) : scope.fail(e);
}

SysRet Kernel::sys_link(Process& p, const char* ufrom, const char* uto) {
  Scope scope(*this, p, Sys::kLink);
  char kfrom[kMaxPath];
  char kto[kMaxPath];
  std::int64_t fl = get_user_path(p, ufrom, kfrom);
  if (fl < 0) return scope.done(fl);
  std::int64_t tl = get_user_path(p, uto, kto);
  if (tl < 0) return scope.done(tl);
  Errno e = vfs_.link(std::string_view(kfrom, static_cast<std::size_t>(fl)),
                      std::string_view(kto, static_cast<std::size_t>(tl)));
  return e == Errno::kOk ? scope.done(0) : scope.fail(e);
}

SysRet Kernel::sys_chmod(Process& p, const char* upath, std::uint32_t mode) {
  Scope scope(*this, p, Sys::kChmod);
  char kpath[kMaxPath];
  std::int64_t len = get_user_path(p, upath, kpath);
  if (len < 0) return scope.done(len);
  Errno e = vfs_.chmod(std::string_view(kpath, static_cast<std::size_t>(len)),
                       mode);
  return e == Errno::kOk ? scope.done(0) : scope.fail(e);
}

SysRet Kernel::sys_getpid(Process& p) {
  Scope scope(*this, p, Sys::kGetpid);
  return scope.done(static_cast<SysRet>(p.task.pid()));
}

SysRet Kernel::sys_sync(Process& p) {
  Scope scope(*this, p, Sys::kSync);
  Errno e = vfs_.filesystem().sync();
  return e == Errno::kOk ? scope.done(0) : scope.fail(e);
}

}  // namespace usk::uk
