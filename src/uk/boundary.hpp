// The user/kernel boundary: crossing costs and user-memory copies.
//
// Everything the paper optimizes lives here. A system call pays:
//   * a crossing (mode switch + register save + cache/TLB pollution),
//     modelled as real ALU + cache-touching work so measurements are
//     genuine CPU time, and
//   * copy_{from,to}_user for each buffer, a real memcpy plus a per-call
//     and per-KiB charge approximating access_ok checks and cache traffic.
//
// Consolidated system calls (§2.2) win by crossing once instead of N
// times; Cosy (§2.3) wins by crossing once per *compound* and sharing
// buffers to skip copies entirely.
#pragma once

#include <cstdint>
#include <cstring>

#include "base/errno.hpp"
#include "base/percpu.hpp"
#include "base/work.hpp"
#include "fault/kfail.hpp"
#include "sched/task.hpp"
#include "trace/tracepoint.hpp"

namespace usk::uk {

/// Tunable boundary costs in work units. Defaults approximate a 2005-era
/// x86 syscall (~1-2 us) relative to the filesystem costs in fs::FsCosts.
struct CostModel {
  std::uint64_t crossing_alu = 450;    ///< trap + register save/restore
  std::uint64_t crossing_cache = 16;   ///< cache lines disturbed per entry
  std::uint64_t copy_setup = 40;       ///< access_ok & setup per copy call
  std::uint64_t copy_per_kib = 80;     ///< per-KiB charge on top of memcpy
};

struct BoundaryStats {
  std::uint64_t crossings = 0;  ///< user->kernel entries
  std::uint64_t copies_from_user = 0;
  std::uint64_t copies_to_user = 0;
  std::uint64_t bytes_from_user = 0;
  std::uint64_t bytes_to_user = 0;
  std::uint64_t copy_faults = 0;  ///< kfail-injected EFAULTs
};

class Boundary {
 public:
  Boundary(base::WorkEngine& engine, CostModel model = CostModel{})
      : engine_(engine), model_(model) {}

  /// Enter the kernel on behalf of `task` (one crossing). Counters are
  /// per-CPU so concurrent dispatchers (SMP mode) never bounce a shared
  /// cache line on the syscall hot path; stats() merges the slots.
  void enter_kernel(sched::Task& task) {
    USK_TRACEPOINT("boundary", "enter");
    ++stats_.local().crossings;
    task.enter_kernel();
    engine_.alu(model_.crossing_alu);
    engine_.cache_touch(model_.crossing_cache);
    task.charge_kernel(model_.crossing_alu + model_.crossing_cache);
  }

  /// Return to user mode (the return half of the same crossing).
  void exit_kernel(sched::Task& task) {
    engine_.alu(model_.crossing_alu / 2);
    task.charge_kernel(model_.crossing_alu / 2);
    task.exit_kernel();
  }

  /// Copy user memory into the kernel. Fallible, like the real thing: the
  /// user page can be gone by the time the kernel touches it. kfail's
  /// copy_in site injects that EFAULT (the access_ok/page-fault path);
  /// otherwise returns the bytes copied. Charging happens before the
  /// fault check: a faulting copy paid for its setup and the partial walk.
  [[nodiscard]] Result<std::size_t> copy_from_user(sched::Task& task,
                                                   void* kdst,
                                                   const void* usrc,
                                                   std::size_t n) {
    USK_TRACEPOINT("boundary", "copy_from_user", n);
    BoundaryStats& s = stats_.local();
    ++s.copies_from_user;
    charge_copy(task, n);
    if (auto f = USK_FAIL_POINT(fault::Site::kCopyIn); f.fail) {
      ++s.copy_faults;
      return f.err;
    }
    s.bytes_from_user += n;
    task.bytes_from_user += n;
    // n == 0 may come with null buffers (e.g. zero-length recv): memcpy
    // requires non-null pointers even then.
    if (n != 0) std::memcpy(kdst, usrc, n);
    return n;
  }

  [[nodiscard]] Result<std::size_t> copy_to_user(sched::Task& task,
                                                 void* udst, const void* ksrc,
                                                 std::size_t n) {
    USK_TRACEPOINT("boundary", "copy_to_user", n);
    BoundaryStats& s = stats_.local();
    ++s.copies_to_user;
    charge_copy(task, n);
    if (auto f = USK_FAIL_POINT(fault::Site::kCopyOut); f.fail) {
      ++s.copy_faults;
      return f.err;
    }
    s.bytes_to_user += n;
    task.bytes_to_user += n;
    if (n != 0) std::memcpy(udst, ksrc, n);
    return n;
  }

  /// Copy a NUL-terminated user string (strncpy_from_user). Returns the
  /// string length, kENAMETOOLONG if it exceeds `max`, or the copy's
  /// injected fault.
  [[nodiscard]] Result<std::size_t> strncpy_from_user(sched::Task& task,
                                                      char* kdst,
                                                      const char* usrc,
                                                      std::size_t max) {
    std::size_t len = strnlen(usrc, max);
    if (len == max) return Errno::kENAMETOOLONG;
    USK_TRY(copy_from_user(task, kdst, usrc, len + 1));
    return len;
  }

  /// Merged snapshot of every CPU's counters. Quiescent-point read: each
  /// slot is written by its owning thread only, so merge after workers
  /// joined (single-threaded callers see exact live values as before).
  [[nodiscard]] BoundaryStats stats() const {
    BoundaryStats sum;
    stats_.for_each([&](const BoundaryStats& s) {
      sum.crossings += s.crossings;
      sum.copies_from_user += s.copies_from_user;
      sum.copies_to_user += s.copies_to_user;
      sum.bytes_from_user += s.bytes_from_user;
      sum.bytes_to_user += s.bytes_to_user;
      sum.copy_faults += s.copy_faults;
    });
    return sum;
  }
  [[nodiscard]] const CostModel& model() const { return model_; }
  [[nodiscard]] base::WorkEngine& engine() { return engine_; }

  void reset_stats() {
    stats_.for_each([](BoundaryStats& s) { s = BoundaryStats{}; });
  }

 private:
  void charge_copy(sched::Task& task, std::size_t n) {
    std::uint64_t units =
        model_.copy_setup + model_.copy_per_kib * ((n + 1023) / 1024);
    engine_.alu(units);
    task.charge_kernel(units);
  }

  base::WorkEngine& engine_;
  CostModel model_;
  base::PerCpu<BoundaryStats> stats_;
};

}  // namespace usk::uk
