#include "uk/userlib.hpp"

#include <cstring>

namespace usk::uk {

std::size_t decode_dirents(std::span<const std::byte> buf,
                           std::vector<UserDirent>* out) {
  std::size_t off = 0;
  std::size_t count = 0;
  while (off + sizeof(DirentHdr) <= buf.size()) {
    DirentHdr hdr;
    std::memcpy(&hdr, buf.data() + off, sizeof(hdr));
    if (off + sizeof(hdr) + hdr.namelen > buf.size()) break;
    UserDirent de;
    de.ino = hdr.ino;
    de.type = static_cast<fs::FileType>(hdr.type);
    de.name.assign(reinterpret_cast<const char*>(buf.data() + off +
                                                 sizeof(hdr)),
                   hdr.namelen);
    out->push_back(std::move(de));
    off += sizeof(hdr) + hdr.namelen;
    ++count;
  }
  return count;
}

std::size_t decode_dirents_plus(
    std::span<const std::byte> buf,
    std::vector<std::pair<UserDirent, fs::StatBuf>>* out) {
  std::size_t off = 0;
  std::size_t count = 0;
  while (off + sizeof(DirentPlusHdr) <= buf.size()) {
    DirentPlusHdr hdr;
    std::memcpy(&hdr, buf.data() + off, sizeof(hdr));
    if (off + sizeof(hdr) + hdr.namelen > buf.size()) break;
    UserDirent de;
    de.ino = hdr.st.ino;
    de.type = hdr.st.type;
    de.name.assign(reinterpret_cast<const char*>(buf.data() + off +
                                                 sizeof(hdr)),
                   hdr.namelen);
    out->emplace_back(std::move(de), hdr.st);
    off += sizeof(hdr) + hdr.namelen;
    ++count;
  }
  return count;
}

std::vector<UserDirent> Proc::list_dir(const char* path,
                                       std::size_t bufsize) {
  std::vector<UserDirent> entries;
  int fd = open(path, fs::kORdOnly);
  if (fd < 0) return entries;
  std::vector<std::byte> buf(bufsize);
  for (;;) {
    SysRet n = readdir(fd, buf.data(), buf.size());
    if (n <= 0) break;
    decode_dirents(std::span(buf.data(), static_cast<std::size_t>(n)),
                   &entries);
  }
  close(fd);
  return entries;
}

}  // namespace usk::uk
