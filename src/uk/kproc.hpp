// Kernel /proc registration: maps kernel state onto ProcFs files.
//
// register_kernel_proc() installs the standard tree:
//
//   /self/stat           current task: pid, state, syscalls, times
//   /vfs/stats           VFS operation counters
//   /vfs/dcache          dcache hit/miss/eviction counters
//   /kernel/boundary     crossing + copy-byte counters
//   /mm/kmalloc          allocator counters
//   /sched/stats         preemption/schedule/watchdog counters
//   /trace/enable        0|1; writable -- echo 1 > /proc/trace/enable
//   /trace/events        registered tracepoint sites with hit counts
//   /trace/hist/syscall  per-syscall log2 latency histograms
//   /trace/hist/ops      per-operation (vfs:open, ...) latency histograms
//
// Everything is rendered live at open() time from the Kernel the file was
// registered against; Kernel::mount_procfs() grafts the result at /proc.
#pragma once

#include "blockdev/buffer_cache.hpp"
#include "fs/procfs.hpp"
#include "store/store.hpp"

namespace usk::uk {

class Kernel;

/// Populate `pfs` with the standard kernel proc tree backed by `k`.
/// Both must outlive the filesystem's readers.
void register_kernel_proc(Kernel& k, fs::ProcFs& pfs);

/// Storage-tier proc tree (PR-8), for kernels with a persistent store:
///
///   /blockdev/cache   page-cache counters: hits, misses, writebacks,
///                     dirty count, gate rejects, hit rate
///   /store/stats      store + backing-image counters, stable seq
///   /store/journal    group-commit journal counters, txns/flush, tail
///
/// Also bridges the same counters into kmetrics as gauges (usk_cache_*,
/// usk_store_*, usk_journal_*). `store` may be null (cache-only setups
/// register /blockdev/cache alone). Pointers must outlive the readers.
void register_storage_proc(fs::ProcFs& pfs, store::Store* store,
                           blockdev::BufferCache* cache);

}  // namespace usk::uk
