// Kernel /proc registration: maps kernel state onto ProcFs files.
//
// register_kernel_proc() installs the standard tree:
//
//   /self/stat           current task: pid, state, syscalls, times
//   /vfs/stats           VFS operation counters
//   /vfs/dcache          dcache hit/miss/eviction counters
//   /kernel/boundary     crossing + copy-byte counters
//   /mm/kmalloc          allocator counters
//   /sched/stats         preemption/schedule/watchdog counters
//   /trace/enable        0|1; writable -- echo 1 > /proc/trace/enable
//   /trace/events        registered tracepoint sites with hit counts
//   /trace/hist/syscall  per-syscall log2 latency histograms
//   /trace/hist/ops      per-operation (vfs:open, ...) latency histograms
//
// Everything is rendered live at open() time from the Kernel the file was
// registered against; Kernel::mount_procfs() grafts the result at /proc.
#pragma once

#include "fs/procfs.hpp"

namespace usk::uk {

class Kernel;

/// Populate `pfs` with the standard kernel proc tree backed by `k`.
/// Both must outlive the filesystem's readers.
void register_kernel_proc(Kernel& k, fs::ProcFs& pfs);

}  // namespace usk::uk
