#include "uk/audit.hpp"

namespace usk::uk {

const char* sys_name(Sys nr) {
  switch (nr) {
    case Sys::kOpen: return "open";
    case Sys::kClose: return "close";
    case Sys::kRead: return "read";
    case Sys::kWrite: return "write";
    case Sys::kLseek: return "lseek";
    case Sys::kStat: return "stat";
    case Sys::kFstat: return "fstat";
    case Sys::kReaddir: return "readdir";
    case Sys::kUnlink: return "unlink";
    case Sys::kMkdir: return "mkdir";
    case Sys::kRmdir: return "rmdir";
    case Sys::kRename: return "rename";
    case Sys::kTruncate: return "truncate";
    case Sys::kGetpid: return "getpid";
    case Sys::kSync: return "sync";
    case Sys::kLink: return "link";
    case Sys::kChmod: return "chmod";
    case Sys::kDup: return "dup";
    case Sys::kFsync: return "fsync";
    case Sys::kFdatasync: return "fdatasync";
    case Sys::kReaddirPlus: return "readdirplus";
    case Sys::kOpenReadClose: return "open_read_close";
    case Sys::kOpenWriteClose: return "open_write_close";
    case Sys::kOpenFstat: return "open_fstat";
    case Sys::kAcceptRecv: return "accept_recv";
    case Sys::kSendfile: return "sendfile";
    case Sys::kCosy: return "cosy";
    case Sys::kSocket: return "socket";
    case Sys::kBind: return "bind";
    case Sys::kListen: return "listen";
    case Sys::kAccept: return "accept";
    case Sys::kConnect: return "connect";
    case Sys::kSend: return "send";
    case Sys::kRecv: return "recv";
    case Sys::kShutdown: return "shutdown";
    case Sys::kEpollCreate: return "epoll_create";
    case Sys::kEpollCtl: return "epoll_ctl";
    case Sys::kEpollWait: return "epoll_wait";
    case Sys::kRingSetup: return "ring_setup";
    case Sys::kRingEnter: return "ring_enter";
    case Sys::kMaxSys: break;
  }
  return "sys?";
}

}  // namespace usk::uk
