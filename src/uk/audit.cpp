#include "uk/audit.hpp"

namespace usk::uk {

const char* sys_name(Sys nr) {
  switch (nr) {
    case Sys::kOpen: return "open";
    case Sys::kClose: return "close";
    case Sys::kRead: return "read";
    case Sys::kWrite: return "write";
    case Sys::kLseek: return "lseek";
    case Sys::kStat: return "stat";
    case Sys::kFstat: return "fstat";
    case Sys::kReaddir: return "readdir";
    case Sys::kUnlink: return "unlink";
    case Sys::kMkdir: return "mkdir";
    case Sys::kRmdir: return "rmdir";
    case Sys::kRename: return "rename";
    case Sys::kTruncate: return "truncate";
    case Sys::kGetpid: return "getpid";
    case Sys::kSync: return "sync";
    case Sys::kLink: return "link";
    case Sys::kChmod: return "chmod";
    case Sys::kReaddirPlus: return "readdirplus";
    case Sys::kOpenReadClose: return "open_read_close";
    case Sys::kOpenWriteClose: return "open_write_close";
    case Sys::kOpenFstat: return "open_fstat";
    case Sys::kCosy: return "cosy";
    case Sys::kMaxSys: break;
  }
  return "sys?";
}

}  // namespace usk::uk
