// The simulated kernel: boundary + scheduler + memory + VFS + syscalls.
//
// A Kernel is assembled around a caller-provided root FileSystem (so
// benchmarks can stack WrapFs/JournalFs/MemFs as the paper's experiments
// require). Classic system calls are implemented here; the consolidated
// calls (§2.2) live in src/consolidation and the compound executor (§2.3)
// in src/cosy, both built on the same Scope discipline so every call pays
// exactly one boundary crossing and its copies are accounted.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/work.hpp"
#include "fs/memfs.hpp"
#include "fs/vfs.hpp"
#include "mm/kmalloc.hpp"
#include "mm/vmalloc.hpp"
#include "sched/scheduler.hpp"
#include "uk/audit.hpp"
#include "uk/boundary.hpp"
#include "vm/address_space.hpp"
#include "vm/phys.hpp"

namespace usk::fs {
class ProcFs;
}

namespace usk::uk {

struct KernelConfig {
  std::size_t phys_frames = 1 << 16;  ///< 256 MiB of simulated RAM
  CostModel boundary;
  std::size_t dcache_capacity = 8192;
  /// Dcache lock sharding. 1 = the paper's single global dcache_lock
  /// (what bench_evmon's E6 reproduction measures); the default spreads
  /// the namespace across independent locks for parallel dispatch.
  std::size_t dcache_shards = fs::Dcache::kDefaultShards;
  /// Put per-CPU magazine caches in front of kmalloc's shared free lists
  /// (SLUB-style). Off by default: the single-allocator configuration is
  /// what the paper's experiments model.
  bool kmalloc_per_cpu_cache = false;
  std::uint32_t sched_quantum = 32;
  /// Base of the vmalloc virtual area and its size in pages.
  vm::VAddr vmalloc_base = 0xFFFF800000000000ull;
  std::size_t vmalloc_pages = 1 << 15;
};

/// A user process: one task plus its file-descriptor table.
struct Process {
  explicit Process(sched::Task& t) : task(t) {}
  sched::Task& task;
  fs::FdTable fds;
};

/// Packed wire format for sys_readdir (getdents): header + name bytes.
struct DirentHdr {
  std::uint64_t ino;
  std::uint8_t type;
  std::uint8_t namelen;
} __attribute__((packed));

/// Wire format for sys_readdirplus: stat + header + name bytes.
struct DirentPlusHdr {
  fs::StatBuf st;
  std::uint8_t namelen;
};

// --- supervisor gateway hook --------------------------------------------------
// The extension supervisor (src/sup) watches every syscall from the Scope
// epilogue: the per-call kernel work units feed the rolling-window quotas
// of whatever extension invocation is bound to the calling thread. The
// layering runs uk <- sup, so sup registers a raw function here instead of
// the kernel naming it. Disarmed (no supervisor registered), the check is
// ONE relaxed load -- the same discipline as USK_TRACEPOINT and
// USK_FAIL_POINT, so an unsupervised kernel measures identically.
using SupGatewayFn = void (*)(void* ctx, Process& p, Sys nr, SysRet ret,
                              std::uint64_t kernel_units);

namespace supdetail {
inline std::atomic<bool> g_armed{false};
}  // namespace supdetail

/// Register (fn != nullptr) or clear (fn == nullptr) the gateway hook.
/// One registration at a time; the registrant must outlive its arming.
void set_sup_gateway(SupGatewayFn fn, void* ctx);

[[nodiscard]] inline bool sup_gateway_armed() {
  return supdetail::g_armed.load(std::memory_order_relaxed);
}

class Kernel {
 public:
  explicit Kernel(fs::FileSystem& rootfs, KernelConfig cfg = KernelConfig{});
  ~Kernel();  // defined in kernel.cpp where ProcFs is complete

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Create a process (and its scheduler task). Thread-safe; processes
  /// are normally spawned before parallel dispatch starts.
  Process& spawn(std::string name);

  // --- subsystem access ----------------------------------------------------
  [[nodiscard]] fs::Vfs& vfs() { return vfs_; }
  [[nodiscard]] Boundary& boundary() { return boundary_; }
  [[nodiscard]] Audit& audit() { return audit_; }
  [[nodiscard]] base::WorkEngine& engine() { return engine_; }
  [[nodiscard]] sched::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] vm::PhysMem& phys() { return phys_; }
  [[nodiscard]] vm::AddressSpace& kernel_as() { return kernel_as_; }
  [[nodiscard]] mm::Kmalloc& kmalloc() { return kmalloc_; }
  [[nodiscard]] mm::Vmalloc& vmalloc() { return vmalloc_; }

  /// Create (once) a kernel-backed ProcFs -- see uk/kproc.hpp for the
  /// file tree -- make the /proc directory on the root filesystem, and
  /// mount it there. Idempotent; returns the filesystem so callers can
  /// register extra entries.
  fs::ProcFs& mount_procfs();

  /// Hook suitable for fs::MemFs::set_cost_hook: executes the units on the
  /// kernel work engine and charges them to the current task's kernel time.
  [[nodiscard]] std::function<void(std::uint64_t)> charge_hook() {
    return [this](std::uint64_t units) {
      engine_.alu(units);
      if (sched::Task* t = sched_.current()) t->charge_kernel(units);
    };
  }

  /// RAII syscall prologue/epilogue: one crossing, audit record with the
  /// copy-byte deltas. Shared with the consolidation and Cosy modules.
  class Scope {
   public:
    Scope(Kernel& k, Process& p, Sys nr);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Record the result; returns it for `return scope.done(x);` chains.
    SysRet done(SysRet ret) {
      ret_ = ret;
      return ret;
    }
    SysRet fail(Errno e) { return done(sysret_err(e)); }

    /// kdl gateway gate. The constructor evaluates the dispatching
    /// request's deadline/cancel state once at entry (one relaxed load
    /// when kdl is disarmed); a non-zero return is the recorded failure
    /// (-ECANCELED / -ETIMEDOUT) and the handler must not run. Usage:
    /// `if (SysRet g = scope.gate(); g != 0) return g;`.
    [[nodiscard]] SysRet gate() {
      return gate_err_ == Errno::kOk ? 0 : done(sysret_err(gate_err_));
    }

    [[nodiscard]] Kernel& kernel() { return k_; }
    [[nodiscard]] Process& process() { return p_; }

   private:
    Kernel& k_;
    Process& p_;
    Sys nr_;
    Errno gate_err_ = Errno::kOk;
    SysRet ret_ = 0;
    std::uint64_t in0_, out0_;
    std::uint64_t kunits0_;  ///< kernel units at entry (supervisor delta)
    std::chrono::steady_clock::time_point wall0_;
  };

  // --- the syscall gateway -----------------------------------------------------
  /// Register-file argument block, the simulated ABI: up to four u64s,
  /// pointers reinterpreted. Every classic call funnels through
  /// syscall() -- ONE place owns the Scope (crossing, audit, ktrace), one
  /// numbered table routes to handlers, unknown numbers get ENOSYS. The
  /// typed sys_* wrappers below are the "userlib-facing" ABI and just
  /// pack arguments.
  struct SysArgs {
    std::uint64_t a0;
    std::uint64_t a1;
    std::uint64_t a2;
    std::uint64_t a3;
  };

  /// Pack a user pointer into a syscall argument register.
  static std::uint64_t uarg(const void* p) {
    return reinterpret_cast<std::uint64_t>(p);
  }

  SysRet syscall(Process& p, Sys nr, const SysArgs& a = SysArgs{});

  // --- external syscall slots ---------------------------------------------------
  /// Subsystems layered above uk (net-like modules such as src/ring) can
  /// claim unused syscall numbers at runtime so their calls route through
  /// the same numbered gateway. An external handler owns its own Scope
  /// discipline -- exactly like net::Net's syscall family, which
  /// constructs Kernel::Scope directly -- because some of them (ring's
  /// quarantine fallback) must decompose into nested full syscalls
  /// instead of paying one crossing up front.
  using ExternalSysFn = SysRet (*)(void* ctx, Kernel& k, Process& p,
                                   const SysArgs& a);
  /// Claim `nr` (must not collide with a table handler). Passing
  /// fn == nullptr releases the slot. The registrant must outlive its
  /// registration window.
  void register_syscall(Sys nr, ExternalSysFn fn, void* ctx);
  void unregister_syscall(Sys nr) { register_syscall(nr, nullptr, nullptr); }

  /// Dispatch a table handler WITHOUT constructing a Scope: no boundary
  /// crossing, no audit record -- the caller's enclosing Scope owns both.
  /// This is how the ring submission engine executes N queued syscalls
  /// for the cost of one crossing. Unknown numbers return ENOSYS;
  /// externally registered numbers are NOT reachable here (an external
  /// handler expects to manage its own crossing).
  SysRet dispatch_nested(Process& p, Sys nr, const SysArgs& a = SysArgs{});

  // --- classic system calls (typed wrappers over syscall()) --------------------
  SysRet sys_open(Process& p, const char* upath, int flags,
                  std::uint32_t mode);
  SysRet sys_close(Process& p, int fd);
  /// dup(2): duplicate `fd` into the lowest free descriptor slot.
  SysRet sys_dup(Process& p, int fd);
  SysRet sys_read(Process& p, int fd, void* ubuf, std::size_t n);
  SysRet sys_write(Process& p, int fd, const void* ubuf, std::size_t n);
  SysRet sys_lseek(Process& p, int fd, std::int64_t off, int whence);
  SysRet sys_stat(Process& p, const char* upath, fs::StatBuf* ust);
  SysRet sys_fstat(Process& p, int fd, fs::StatBuf* ust);
  /// getdents-style: fills `ubuf` with packed DirentHdr+name records;
  /// returns bytes written, 0 at end of directory.
  SysRet sys_readdir(Process& p, int fd, void* ubuf, std::size_t n);
  SysRet sys_unlink(Process& p, const char* upath);
  SysRet sys_mkdir(Process& p, const char* upath, std::uint32_t mode);
  SysRet sys_rmdir(Process& p, const char* upath);
  SysRet sys_rename(Process& p, const char* ufrom, const char* uto);
  SysRet sys_truncate(Process& p, const char* upath, std::uint64_t size);
  SysRet sys_getpid(Process& p);
  SysRet sys_sync(Process& p);
  SysRet sys_fsync(Process& p, int fd);
  SysRet sys_fdatasync(Process& p, int fd);
  SysRet sys_link(Process& p, const char* ufrom, const char* uto);
  SysRet sys_chmod(Process& p, const char* upath, std::uint32_t mode);

  static constexpr std::size_t kMaxPath = 4096;
  static constexpr std::size_t kMaxIo = 1 << 20;

 private:
  /// Copy a user path into `kpath`; returns length or negative errno.
  std::int64_t get_user_path(Process& p, const char* upath, char* kpath);

  // --- numbered syscall table ------------------------------------------------
  // Handlers are Scope-free: they take the process and the packed args
  // and return a SysRet. syscall() wraps the call in a Scope (crossing +
  // audit); dispatch_nested() calls them bare so a batched submitter
  // (src/ring) re-uses the exact same code with zero extra crossings.
  using SysHandler = SysRet (Kernel::*)(Process&, const SysArgs&);
  using HandlerTable =
      std::array<SysHandler, static_cast<std::size_t>(Sys::kMaxSys)>;
  static const HandlerTable& handlers();

  SysRet do_open(Process& p, const SysArgs& a);
  SysRet do_close(Process& p, const SysArgs& a);
  SysRet do_dup(Process& p, const SysArgs& a);
  SysRet do_read(Process& p, const SysArgs& a);
  SysRet do_write(Process& p, const SysArgs& a);
  SysRet do_lseek(Process& p, const SysArgs& a);
  SysRet do_stat(Process& p, const SysArgs& a);
  SysRet do_fstat(Process& p, const SysArgs& a);
  SysRet do_readdir(Process& p, const SysArgs& a);
  SysRet do_unlink(Process& p, const SysArgs& a);
  SysRet do_mkdir(Process& p, const SysArgs& a);
  SysRet do_rmdir(Process& p, const SysArgs& a);
  SysRet do_rename(Process& p, const SysArgs& a);
  SysRet do_truncate(Process& p, const SysArgs& a);
  SysRet do_getpid(Process& p, const SysArgs& a);
  SysRet do_sync(Process& p, const SysArgs& a);
  SysRet do_fsync(Process& p, const SysArgs& a);
  SysRet do_fdatasync(Process& p, const SysArgs& a);
  SysRet do_link(Process& p, const SysArgs& a);
  SysRet do_chmod(Process& p, const SysArgs& a);

  /// One runtime-registered slot; fn/ctx are read on the syscall hot path
  /// (two acquire loads only when the static table misses).
  struct ExternalSys {
    std::atomic<ExternalSysFn> fn{nullptr};
    std::atomic<void*> ctx{nullptr};
  };

  base::WorkEngine engine_;
  vm::PhysMem phys_;
  vm::AddressSpace kernel_as_;
  mm::Kmalloc kmalloc_;
  mm::Vmalloc vmalloc_;
  sched::Scheduler sched_;
  Boundary boundary_;
  Audit audit_;
  fs::Vfs vfs_;
  std::array<ExternalSys, static_cast<std::size_t>(Sys::kMaxSys)> external_{};
  std::unique_ptr<fs::ProcFs> procfs_;  ///< created by mount_procfs()
  std::mutex spawn_mu_;
  std::vector<std::unique_ptr<Process>> procs_;
};

}  // namespace usk::uk
