#include "fault/kfail.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "base/klog.hpp"
#include "trace/tracepoint.hpp"

namespace usk::fault {

namespace {

struct SiteDesc {
  const char* name;
  Errno err;
};

constexpr SiteDesc kSiteDesc[kNumSites] = {
    {"kmalloc", Errno::kENOMEM},      {"vmalloc", Errno::kENOMEM},
    {"disk.read", Errno::kEIO},       {"disk.write", Errno::kEIO},
    {"disk.torn", Errno::kEIO},       {"disk.latency", Errno::kOk},
    {"copy_in", Errno::kEFAULT},      {"copy_out", Errno::kEFAULT},
    {"net.accept", Errno::kECONNRESET},
    {"net.recv", Errno::kECONNRESET}, {"net.send", Errno::kECONNRESET},
    {"cosy", Errno::kEINTR},          {"cosy_fuel", Errno::kEDQUOT},
    {"sup.probe", Errno::kEIO},       {"sup.fallback", Errno::kEIO},
    {"ring.sqe_corrupt", Errno::kEFAULT}, {"ring.cqe_drop", Errno::kEIO},
    {"store.short_write", Errno::kEIO},
    {"store.torn_commit_header", Errno::kEIO},
    {"store.fsync_fail", Errno::kEIO},
    {"dl.clock_skew", Errno::kETIMEDOUT},
    {"dl.spurious_wake", Errno::kEAGAIN},
};

/// SplitMix64: the per-check decision hash. Statistically uniform, cheap,
/// and a pure function of its input so schedules replay from the seed.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// p in [0,1] -> threshold on a uniform u64 draw.
std::uint64_t p_to_threshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ull;
  return static_cast<std::uint64_t>(p * 18446744073709551616.0);
}

Errno errno_from_name(std::string_view n) {
  struct Pair {
    const char* name;
    Errno e;
  };
  static constexpr Pair kMap[] = {
      {"EPERM", Errno::kEPERM},   {"ENOENT", Errno::kENOENT},
      {"EINTR", Errno::kEINTR},   {"EIO", Errno::kEIO},
      {"EBADF", Errno::kEBADF},   {"EAGAIN", Errno::kEAGAIN},
      {"ENOMEM", Errno::kENOMEM}, {"EACCES", Errno::kEACCES},
      {"EFAULT", Errno::kEFAULT}, {"EBUSY", Errno::kEBUSY},
      {"ENOSPC", Errno::kENOSPC}, {"EPIPE", Errno::kEPIPE},
      {"ECONNRESET", Errno::kECONNRESET},
      {"EDQUOT", Errno::kEDQUOT}, {"ETIME", Errno::kETIME},
      {"ETIMEDOUT", Errno::kETIMEDOUT},
      {"ECANCELED", Errno::kECANCELED},
  };
  for (const Pair& p : kMap) {
    if (n == p.name) return p.e;
  }
  return Errno::kOk;
}

}  // namespace

const char* site_name(Site s) {
  auto i = static_cast<std::size_t>(s);
  return i < kNumSites ? kSiteDesc[i].name : "?";
}

Errno site_default_errno(Site s) {
  auto i = static_cast<std::size_t>(s);
  return i < kNumSites ? kSiteDesc[i].err : Errno::kEIO;
}

Kfail::Kfail() {
  // One-shot environment arming: lets `ctest -L faults` (and any user
  // shell) run unmodified binaries under injection.
  if (const char* spec = std::getenv("USK_FAIL_SPEC")) {
    if (Result<void> r = apply_spec(spec); !r.ok()) {
      base::klogf(base::LogLevel::kErr, "kfail: bad USK_FAIL_SPEC '%s' (%.*s)",
                  spec, static_cast<int>(errno_name(r.error()).size()),
                  errno_name(r.error()).data());
    }
  }
}

Kfail& Kfail::instance() {
  static Kfail k;
  return k;
}

Outcome Kfail::check(Site s) {
  SiteState& st = sites_[static_cast<std::size_t>(s)];
  if (!st.armed.load(std::memory_order_relaxed)) return Outcome{};
  st.checks.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n = st.counter.fetch_add(1, std::memory_order_relaxed) + 1;

  bool hit = false;
  const std::uint64_t nth = st.nth.load(std::memory_order_relaxed);
  if (nth != 0 && n == nth) hit = true;
  if (!hit) {
    const std::uint64_t thr = st.threshold.load(std::memory_order_relaxed);
    if (thr != 0) {
      const std::uint64_t draw = splitmix64(
          seed_.load(std::memory_order_relaxed) ^
          (static_cast<std::uint64_t>(s) << 56) ^ n);
      // thr == ~0 means p=1: always inject (a < comparison would miss the
      // single draw equal to ~0).
      hit = thr == ~0ull || draw < thr;
    }
  }
  if (!hit) return Outcome{};

  // Budget: injections remaining (-1 = unlimited). Decrement on use.
  std::int64_t b = st.budget.load(std::memory_order_relaxed);
  while (b >= 0) {
    if (b == 0) return Outcome{};
    if (st.budget.compare_exchange_weak(b, b - 1,
                                        std::memory_order_relaxed)) {
      break;
    }
  }

  Outcome out;
  out.err = static_cast<Errno>(st.err.load(std::memory_order_relaxed));
  if (out.err == Errno::kOk) out.err = site_default_errno(s);
  if (st.transient.load(std::memory_order_relaxed)) {
    out.transient = true;
    st.transients.fetch_add(1, std::memory_order_relaxed);
  } else {
    out.fail = true;
    st.injected.fetch_add(1, std::memory_order_relaxed);
  }
  USK_TRACEPOINT("fault", "inject", static_cast<std::uint64_t>(s), n);
  return out;
}

void Kfail::arm(Site s, const SiteConfig& cfg) {
  std::lock_guard lk(mu_);
  SiteState& st = sites_[static_cast<std::size_t>(s)];
  st.threshold.store(p_to_threshold(cfg.p), std::memory_order_relaxed);
  st.nth.store(cfg.nth, std::memory_order_relaxed);
  st.budget.store(cfg.budget, std::memory_order_relaxed);
  st.transient.store(cfg.transient, std::memory_order_relaxed);
  st.err.store(static_cast<std::int32_t>(cfg.err), std::memory_order_relaxed);
  st.counter.store(0, std::memory_order_relaxed);
  if (!st.armed.exchange(true, std::memory_order_relaxed)) {
    detail::g_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

void Kfail::disarm(Site s) {
  std::lock_guard lk(mu_);
  SiteState& st = sites_[static_cast<std::size_t>(s)];
  if (st.armed.exchange(false, std::memory_order_relaxed)) {
    detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Kfail::disarm_all() {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    disarm(static_cast<Site>(i));
  }
}

bool Kfail::site_armed(Site s) const {
  return sites_[static_cast<std::size_t>(s)].armed.load(
      std::memory_order_relaxed);
}

void Kfail::set_seed(std::uint64_t seed) {
  std::lock_guard lk(mu_);
  seed_.store(seed, std::memory_order_relaxed);
  for (SiteState& st : sites_) {
    st.counter.store(0, std::memory_order_relaxed);
  }
}

Result<void> Kfail::apply_spec(std::string_view spec) {
  // Parse into staged (site, config) pairs first so a malformed clause
  // leaves the current arming untouched.
  struct Staged {
    Site site;
    SiteConfig cfg;
  };
  std::vector<Staged> staged;
  bool want_disarm_all = false;
  std::uint64_t new_seed = 0;
  bool have_seed = false;

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim spaces.
    while (!clause.empty() && clause.front() == ' ') clause.remove_prefix(1);
    while (!clause.empty() && clause.back() == ' ') clause.remove_suffix(1);
    if (clause.empty()) {
      if (pos > spec.size()) break;
      continue;
    }

    if (clause == "off") {
      want_disarm_all = true;
      continue;
    }
    if (clause.substr(0, 5) == "seed=") {
      char* end = nullptr;
      std::string v(clause.substr(5));
      new_seed = std::strtoull(v.c_str(), &end, 0);
      if (end == nullptr || *end != '\0') return Errno::kEINVAL;
      have_seed = true;
      continue;
    }

    // <site>:<opt>[:<opt>...]
    std::size_t colon = clause.find(':');
    std::string_view name =
        colon == std::string_view::npos ? clause : clause.substr(0, colon);
    SiteConfig cfg;
    std::string_view rest =
        colon == std::string_view::npos ? std::string_view{}
                                        : clause.substr(colon + 1);
    while (!rest.empty()) {
      std::size_t c2 = rest.find(':');
      std::string_view opt =
          c2 == std::string_view::npos ? rest : rest.substr(0, c2);
      rest = c2 == std::string_view::npos ? std::string_view{}
                                          : rest.substr(c2 + 1);
      if (opt == "transient") {
        cfg.transient = true;
      } else if (opt.substr(0, 2) == "p=") {
        char* end = nullptr;
        std::string v(opt.substr(2));
        cfg.p = std::strtod(v.c_str(), &end);
        if (end == nullptr || *end != '\0' || cfg.p < 0.0 || cfg.p > 1.0) {
          return Errno::kEINVAL;
        }
      } else if (opt.substr(0, 4) == "nth=") {
        char* end = nullptr;
        std::string v(opt.substr(4));
        cfg.nth = std::strtoull(v.c_str(), &end, 0);
        if (end == nullptr || *end != '\0') return Errno::kEINVAL;
      } else if (opt.substr(0, 7) == "budget=") {
        char* end = nullptr;
        std::string v(opt.substr(7));
        cfg.budget = std::strtoll(v.c_str(), &end, 0);
        if (end == nullptr || *end != '\0') return Errno::kEINVAL;
      } else if (opt.substr(0, 6) == "errno=") {
        cfg.err = errno_from_name(opt.substr(6));
        if (cfg.err == Errno::kOk) return Errno::kEINVAL;
      } else {
        return Errno::kEINVAL;
      }
    }

    // Site name, `prefix.*`, or `*`.
    bool matched = false;
    for (std::size_t i = 0; i < kNumSites; ++i) {
      std::string_view sn = kSiteDesc[i].name;
      bool match = name == "*" || sn == name;
      if (!match && name.size() >= 2 && name.back() == '*' &&
          name[name.size() - 2] == '.') {
        match = sn.substr(0, name.size() - 1) == name.substr(0, name.size() - 1);
      }
      if (match) {
        staged.push_back(Staged{static_cast<Site>(i), cfg});
        matched = true;
      }
    }
    if (!matched) return Errno::kEINVAL;
  }

  if (want_disarm_all) disarm_all();
  if (have_seed) set_seed(new_seed);
  for (const Staged& s : staged) arm(s.site, s.cfg);
  return Errno::kOk;
}

SiteStats Kfail::stats(Site s) const {
  const SiteState& st = sites_[static_cast<std::size_t>(s)];
  SiteStats out;
  out.checks = st.checks.load(std::memory_order_relaxed);
  out.injected = st.injected.load(std::memory_order_relaxed);
  out.transients = st.transients.load(std::memory_order_relaxed);
  return out;
}

void Kfail::reset_stats() {
  for (SiteState& st : sites_) {
    st.checks.store(0, std::memory_order_relaxed);
    st.injected.store(0, std::memory_order_relaxed);
    st.transients.store(0, std::memory_order_relaxed);
  }
}

std::string Kfail::format_stats() const {
  std::string out;
  char buf[192];
  for (std::size_t i = 0; i < kNumSites; ++i) {
    const SiteState& st = sites_[i];
    int n = std::snprintf(
        buf, sizeof buf,
        "%-12s armed %d checks %" PRIu64 " injected %" PRIu64
        " transient %" PRIu64 "\n",
        kSiteDesc[i].name, st.armed.load(std::memory_order_relaxed) ? 1 : 0,
        st.checks.load(std::memory_order_relaxed),
        st.injected.load(std::memory_order_relaxed),
        st.transients.load(std::memory_order_relaxed));
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::string Kfail::format_spec() const {
  std::string out = "seed=" + std::to_string(seed());
  char buf[160];
  for (std::size_t i = 0; i < kNumSites; ++i) {
    const SiteState& st = sites_[i];
    if (!st.armed.load(std::memory_order_relaxed)) continue;
    const double p =
        static_cast<double>(st.threshold.load(std::memory_order_relaxed)) /
        18446744073709551616.0;
    int n = std::snprintf(buf, sizeof buf, ",%s:p=%g", kSiteDesc[i].name,
                          st.threshold.load(std::memory_order_relaxed) == ~0ull
                              ? 1.0
                              : p);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
    if (std::uint64_t nth = st.nth.load(std::memory_order_relaxed)) {
      out += ":nth=" + std::to_string(nth);
    }
    if (std::int64_t b = st.budget.load(std::memory_order_relaxed); b >= 0) {
      out += ":budget=" + std::to_string(b);
    }
    if (st.transient.load(std::memory_order_relaxed)) out += ":transient";
  }
  out += "\n";
  return out;
}

}  // namespace usk::fault
