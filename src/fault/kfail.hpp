// kfail: deterministic, seed-reproducible fault injection.
//
// Every resource-acquiring layer of the simulated kernel carries a fault
// point -- kmalloc/vmalloc (ENOMEM), the disk (EIO, latency spikes, torn
// journal writes), the user/kernel copy routines (EFAULT), the network
// (ECONNRESET/EAGAIN storms), and the Cosy executor (abort between ops).
// A disarmed fault point costs ONE relaxed atomic load and a predicted
// branch, the same discipline as USK_TRACEPOINT, so instrumented hot
// paths measure identically with injection compiled in.
//
// Determinism: each site keeps a check counter; the injection decision for
// check #n is a pure function of (global seed, site, n), so a failing
// schedule replays exactly from the same seed -- the failure analogue of
// the workload generators' seeded RNGs.
//
// Faults come in two severities:
//   * hard (`fail`): the site returns its errno to the caller, exercising
//     the real error path (test_fault's p=1 sweeps assert errno + no
//     leaked fds/inodes/pages/locks).
//   * transient: the site records a simulated first-attempt failure,
//     charges its recovery cost (allocator direct-reclaim, disk retry)
//     and then succeeds. This is the soak mode the `faults` ctest label
//     uses to re-run the whole tier-1 suite at p=0.01 with zero
//     user-visible failures while still driving the injection plumbing.
//
// Control: programmatic (arm/disarm), the USK_FAIL_SPEC environment
// variable (read once at process start), and /proc/fail/** write files
// (uk/kproc.cpp). Spec grammar, clauses comma-separated:
//
//   seed=<u64>                     reseed the decision function
//   off                            disarm every site
//   <site>:<opt>[:<opt>...]       arm one site (or <prefix>.* / *)
//     opts: p=<float 0..1>  per-check injection probability
//           nth=<N>         additionally fail exactly check #N (1-based)
//           budget=<M>      stop after M injections (default unlimited)
//           errno=<NAME>    override the site's default errno (e.g. EIO)
//           transient       recoverable mode (see above)
//
//   USK_FAIL_SPEC="seed=7,kmalloc:p=0.01:transient,disk.*:p=0.005:transient"
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "base/errno.hpp"

namespace usk::fault {

/// The injection-site inventory. Fixed and small so per-site state is an
/// array indexed without hashing on the (armed) slow path.
enum class Site : std::uint8_t {
  kKmalloc = 0,   ///< mm::Kmalloc::alloc        -> ENOMEM
  kVmalloc,       ///< mm::Vmalloc::alloc        -> ENOMEM
  kDiskRead,      ///< blockdev::Disk::read      -> EIO
  kDiskWrite,     ///< blockdev::Disk::write     -> EIO
  kDiskTorn,      ///< fs::JournalFs journal append -> torn record
  kDiskLatency,   ///< blockdev::Disk access     -> seek-storm latency spike
  kCopyIn,        ///< uk::Boundary::copy_from_user -> EFAULT
  kCopyOut,       ///< uk::Boundary::copy_to_user   -> EFAULT
  kNetAccept,     ///< net accept path           -> ECONNRESET
  kNetRecv,       ///< net recv path             -> ECONNRESET
  kNetSend,       ///< net send path             -> ECONNRESET (or EAGAIN)
  kCosyOp,        ///< cosy executor, between ops -> compound abort (EINTR)
  kCosyFuel,      ///< cosy executor, compound entry -> VM fuel exhausted (EDQUOT)
  kSupProbe,      ///< supervisor re-admission probe -> probe failure
  kSupFallback,   ///< supervisor classic-fallback path -> fallback error
  kRingSqeCorrupt, ///< ring SQE read from shared memory is corrupt -> EFAULT
  kRingCqeDrop,    ///< ring completion lost before posting -> EIO
  kStoreShortWrite,  ///< store::BackingImage::write_block -> short write (EIO)
  kStoreTornHeader,  ///< store journal commit-header write -> torn on media
  kStoreFsyncFail,   ///< store::BackingImage::flush (fsync) -> EIO
  kDlClockSkew,      ///< kdl deadline evaluation reads a skewed clock -> spurious ETIMEDOUT
  kDlSpuriousWake,   ///< kdl timed park wakes without event/expiry -> loop re-checks
  kMaxSite
};

inline constexpr std::size_t kNumSites =
    static_cast<std::size_t>(Site::kMaxSite);

const char* site_name(Site s);
/// The errno a hard injection at `s` surfaces by default.
Errno site_default_errno(Site s);

/// Result of a fault-point check. `fail` = hard failure: return `err` to
/// the caller. `transient` = simulated recovered failure: charge the
/// site's recovery cost and proceed.
struct Outcome {
  bool fail = false;
  bool transient = false;
  Errno err = Errno::kOk;
  explicit operator bool() const { return fail; }
};

/// Per-site arming parameters (see the spec grammar above).
struct SiteConfig {
  double p = 0.0;              ///< per-check injection probability
  std::uint64_t nth = 0;       ///< fail exactly check #nth (0 = off)
  std::int64_t budget = -1;    ///< max injections (-1 = unlimited)
  bool transient = false;      ///< recoverable mode
  Errno err = Errno::kOk;      ///< kOk = use site_default_errno
};

struct SiteStats {
  std::uint64_t checks = 0;      ///< fault-point evaluations while armed
  std::uint64_t injected = 0;    ///< hard failures injected
  std::uint64_t transients = 0;  ///< recovered (transient) injections
};

namespace detail {
/// THE disarmed-cost hot path: count of armed sites, read relaxed.
inline std::atomic<int> g_armed{0};
}  // namespace detail

[[nodiscard]] inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed) != 0;
}

class Kfail {
 public:
  /// The process-wide injector (one per simulated machine, like ktrace).
  static Kfail& instance();

  /// Slow path behind USK_FAIL_POINT: decide check #n for `s`.
  Outcome check(Site s);

  // --- control --------------------------------------------------------------
  void arm(Site s, const SiteConfig& cfg);
  void disarm(Site s);
  void disarm_all();
  [[nodiscard]] bool site_armed(Site s) const;

  /// Reseed the decision function and restart every site's check counter,
  /// so a schedule replays identically from the same seed.
  void set_seed(std::uint64_t seed);
  [[nodiscard]] std::uint64_t seed() const {
    return seed_.load(std::memory_order_relaxed);
  }

  /// Parse and apply a spec string (grammar in the header comment).
  Result<void> apply_spec(std::string_view spec);

  // --- observation -----------------------------------------------------------
  [[nodiscard]] SiteStats stats(Site s) const;
  void reset_stats();
  /// /proc/fail/stats rendering: one line per site.
  [[nodiscard]] std::string format_stats() const;
  /// /proc/fail/spec rendering: the currently armed configuration.
  [[nodiscard]] std::string format_spec() const;

 private:
  Kfail();

  struct SiteState {
    // Configuration, written under mu_ and read relaxed by check().
    std::atomic<bool> armed{false};
    std::atomic<std::uint64_t> threshold{0};  ///< p scaled to 2^64
    std::atomic<std::uint64_t> nth{0};
    std::atomic<std::int64_t> budget{-1};     ///< -1 = unlimited
    std::atomic<bool> transient{false};
    std::atomic<std::int32_t> err{0};
    // Live counters.
    std::atomic<std::uint64_t> counter{0};    ///< check sequence number
    std::atomic<std::uint64_t> checks{0};
    std::atomic<std::uint64_t> injected{0};
    std::atomic<std::uint64_t> transients{0};
  };

  SiteState sites_[kNumSites];
  std::atomic<std::uint64_t> seed_{0x9E3779B97F4A7C15ull};
  mutable std::mutex mu_;  ///< serialises arm/disarm/apply_spec
};

[[nodiscard]] inline Kfail& kfail() { return Kfail::instance(); }

}  // namespace usk::fault

/// A fault point: one relaxed load when nothing is armed. Use as
///   if (auto f = USK_FAIL_POINT(fault::Site::kKmalloc); f.fail)
///     return ...error path using f.err...;
///   // f.transient: simulated recovered failure -- charge retry cost.
#define USK_FAIL_POINT(site)                     \
  (::usk::fault::armed()                         \
       ? ::usk::fault::Kfail::instance().check(site) \
       : ::usk::fault::Outcome{})
