// The KGCC runtime: bounds checking, pointer validation, malloc/free
// checking, OOB peers, and dynamic deinstrumentation (paper §3.4).
//
// The compiler half of KGCC is replaced by checked_ptr<T> (checked_ptr.hpp)
// which emits exactly the calls a KGCC-instrumented dereference or pointer
// arithmetic would: check_access() before memory operations, check_arith()
// for pointer arithmetic (OOB peer creation), bcc_malloc/bcc_free for heap
// management.
//
// Optimizations reproduced from the paper:
//  * check caching ("common subexpression elimination allowed us to reduce
//    the number of checks inserted by more than half") -- a CheckSite
//    caches the bounds of the last object it validated; repeat hits skip
//    the splay-tree consultation.
//  * dynamic deinstrumentation ("instrumentation that can be deactivated
//    when it has executed a sufficient number of times") -- after a site
//    passes N checks with no error, the site disables itself.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bcc/object_map.hpp"

namespace usk::bcc {

enum class ErrorKind {
  kUnknownPointer,    ///< access through memory not in the map
  kOutOfBounds,       ///< access past an object's bounds
  kPeerDereference,   ///< dereference of a temporary OOB pointer
  kInvalidFree,       ///< free of a pointer that is not an allocation base
  kDoubleFree,
};

struct BccError {
  ErrorKind kind;
  std::uint64_t addr = 0;
  std::size_t size = 0;
  std::string where;  ///< allocation site of the object, if known
};

/// Per-check-site state: cached bounds + deinstrumentation counter.
struct CheckSite {
  std::uint64_t cached_base = 0;
  std::uint64_t cached_end = 0;
  std::uint64_t clean_checks = 0;
  bool disabled = false;
};

struct RuntimeOptions {
  bool cache_bounds = true;             ///< the CSE analogue
  std::uint64_t deinstrument_after = 0; ///< 0 = never self-disable
  bool collect_errors = true;           ///< store BccError records
};

struct RuntimeStats {
  std::uint64_t checks = 0;         ///< check_access calls (incl. fast path)
  std::uint64_t map_consults = 0;   ///< slow-path splay lookups
  std::uint64_t cache_hits = 0;
  std::uint64_t skipped_disabled = 0;
  std::uint64_t arith_checks = 0;
  std::uint64_t peers_created = 0;
  std::uint64_t errors = 0;
  std::uint64_t mallocs = 0;
  std::uint64_t frees = 0;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions opt = RuntimeOptions{},
                   std::unique_ptr<AddressMap> map = nullptr);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- object registration ----------------------------------------------------
  void* bcc_malloc(std::size_t n, const char* file = "?", int line = 0);
  void bcc_free(void* p);
  /// Register memory owned elsewhere (stack/global objects whose address
  /// is taken -- KGCC skips unaliased stack objects entirely).
  void register_object(const void* p, std::size_t n, const char* file = "?",
                       int line = 0);
  void unregister_object(const void* p);

  // --- checks (what instrumented code calls) --------------------------------
  /// Validate an access of `n` bytes at `p` through `site`. Returns true
  /// if the access is in bounds.
  bool check_access(const void* p, std::size_t n, CheckSite* site);

  /// Pointer arithmetic `base + delta` on a pointer currently inside (or
  /// peer of) some object. Creates/updates OOB peers as the paper
  /// describes. Returns true if the *resulting* pointer is legal to form.
  bool check_arith(const void* from, std::int64_t delta_bytes,
                   const void* result);

  /// Explicit per-site factory so all copies of one logical pointer share
  /// deinstrumentation state.
  CheckSite* make_site();

  [[nodiscard]] const RuntimeStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<BccError>& errors() const { return errors_; }
  [[nodiscard]] AddressMap& map() { return *map_; }
  [[nodiscard]] const RuntimeOptions& options() const { return opt_; }
  void set_options(const RuntimeOptions& o) { opt_ = o; }
  void clear_errors() { errors_.clear(); }

  /// Process-wide instance used by the BccPtrPolicy (JournalFs builds).
  static Runtime& instance();

 private:
  const MapEntry* owning_object(std::uint64_t addr);
  void report(ErrorKind kind, std::uint64_t addr, std::size_t n,
              const MapEntry* obj);

  RuntimeOptions opt_;
  std::unique_ptr<AddressMap> map_;
  std::vector<std::unique_ptr<CheckSite>> sites_;
  std::vector<BccError> errors_;
  RuntimeStats stats_;
};

}  // namespace usk::bcc
