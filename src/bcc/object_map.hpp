// Object map for the BCC/KGCC runtime (paper §3.4).
//
// "The checks are simply function calls to the BCC runtime environment,
// which maintains a map of currently allocated memory in a splay tree; the
// tree is consulted before any memory operation."
//
// Two entry kinds live in the map: real objects, and OOB *peer* objects --
// the paper's fix for temporary out-of-bounds pointers: "Whenever an
// out-of-bounds address is created by arithmetic on an object O, we insert
// a special out-of-bounds (OOB) object at the new address into the address
// map, and make it a peer of object O. Our KGCC runtime permits only
// pointer arithmetic on OOB objects, which can either generate another
// peer or return to O's bounds."
//
// The map interface is abstract so the multithreading ablation (§3.5) can
// compare the splay tree against a balanced tree under contention.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "base/splay_tree.hpp"

namespace usk::bcc {

enum class EntryKind : std::uint8_t {
  kObject,
  kOobPeer,
};

struct MapEntry {
  EntryKind kind = EntryKind::kObject;
  std::uint64_t base = 0;
  std::uint64_t size = 0;        ///< objects only
  std::uint64_t peer_of = 0;     ///< peers: base of the owning object
  const char* file = "?";
  int line = 0;
};

/// Abstract address->entry map keyed by base address.
class AddressMap {
 public:
  virtual ~AddressMap() = default;

  virtual void insert(const MapEntry& e) = 0;
  virtual bool erase(std::uint64_t base) = 0;
  /// Entry with the greatest base <= addr, or nullptr.
  virtual const MapEntry* floor(std::uint64_t addr) = 0;
  /// Exact-base lookup.
  virtual const MapEntry* find(std::uint64_t base) = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The paper's structure: splay tree (self-adjusting; recently touched
/// objects float to the root -- near-optimal with reference locality).
class SplayAddressMap final : public AddressMap {
 public:
  void insert(const MapEntry& e) override { tree_.insert(e.base, e); }
  bool erase(std::uint64_t base) override { return tree_.erase(base); }
  const MapEntry* floor(std::uint64_t addr) override {
    auto [key, v] = tree_.floor(addr);
    return v;
  }
  const MapEntry* find(std::uint64_t base) override {
    return tree_.find(base);
  }
  [[nodiscard]] std::size_t size() const override { return tree_.size(); }
  [[nodiscard]] const char* name() const override { return "splay"; }

  [[nodiscard]] const base::SplayStats& splay_stats() const {
    return tree_.stats();
  }

 private:
  base::SplayTree<MapEntry> tree_;
};

/// Balanced-tree alternative (std::map / red-black): no rotation on reads,
/// the structure the paper's future work considers for multithreaded use.
class BalancedAddressMap final : public AddressMap {
 public:
  void insert(const MapEntry& e) override { map_[e.base] = e; }
  bool erase(std::uint64_t base) override { return map_.erase(base) > 0; }
  const MapEntry* floor(std::uint64_t addr) override {
    auto it = map_.upper_bound(addr);
    if (it == map_.begin()) return nullptr;
    --it;
    return &it->second;
  }
  const MapEntry* find(std::uint64_t base) override {
    auto it = map_.find(base);
    return it == map_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t size() const override { return map_.size(); }
  [[nodiscard]] const char* name() const override { return "balanced"; }

 private:
  std::map<std::uint64_t, MapEntry> map_;
};

}  // namespace usk::bcc
