#include "bcc/runtime.hpp"

#include <cstdio>
#include <cstdlib>

#include "base/klog.hpp"

namespace usk::bcc {

namespace {
std::uint64_t addr_of(const void* p) {
  return reinterpret_cast<std::uint64_t>(p);
}
}  // namespace

Runtime::Runtime(RuntimeOptions opt, std::unique_ptr<AddressMap> map)
    : opt_(opt),
      map_(map != nullptr ? std::move(map)
                          : std::make_unique<SplayAddressMap>()) {}

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

void* Runtime::bcc_malloc(std::size_t n, const char* file, int line) {
  ++stats_.mallocs;
  void* p = ::operator new(n == 0 ? 1 : n);
  register_object(p, n == 0 ? 1 : n, file, line);
  return p;
}

void Runtime::bcc_free(void* p) {
  ++stats_.frees;
  if (p == nullptr) return;
  ++stats_.map_consults;
  const MapEntry* e = map_->find(addr_of(p));
  if (e == nullptr) {
    report(ErrorKind::kInvalidFree, addr_of(p), 0, nullptr);
    return;  // refuse to free unknown memory (the check saved us)
  }
  if (e->kind == EntryKind::kOobPeer) {
    report(ErrorKind::kInvalidFree, addr_of(p), 0, e);
    return;
  }
  map_->erase(addr_of(p));
  ::operator delete(p);
}

void Runtime::register_object(const void* p, std::size_t n, const char* file,
                              int line) {
  MapEntry e;
  e.kind = EntryKind::kObject;
  e.base = addr_of(p);
  e.size = n;
  e.file = file;
  e.line = line;
  map_->insert(e);
}

void Runtime::unregister_object(const void* p) { map_->erase(addr_of(p)); }

const MapEntry* Runtime::owning_object(std::uint64_t addr) {
  ++stats_.map_consults;
  const MapEntry* e = map_->floor(addr);
  if (e == nullptr) return nullptr;
  if (e->kind == EntryKind::kObject) {
    if (addr >= e->base && addr < e->base + e->size) return e;
    return nullptr;
  }
  // Peers are zero-sized markers: match only the exact address.
  return addr == e->base ? e : nullptr;
}

bool Runtime::check_access(const void* p, std::size_t n, CheckSite* site) {
  ++stats_.checks;
  std::uint64_t a = addr_of(p);

  if (site != nullptr) {
    if (site->disabled) {
      ++stats_.skipped_disabled;
      return true;
    }
    if (opt_.cache_bounds && a >= site->cached_base &&
        a + n <= site->cached_end) {
      ++stats_.cache_hits;
      if (opt_.deinstrument_after != 0 &&
          ++site->clean_checks >= opt_.deinstrument_after) {
        site->disabled = true;
      }
      return true;
    }
  }

  const MapEntry* obj = owning_object(a);
  if (obj == nullptr) {
    // Classify near-misses as bounds errors against the nearest object
    // below (e.g., one-past-the-end dereferences) for better diagnostics.
    const MapEntry* near_obj = map_->floor(a);
    if (near_obj != nullptr && near_obj->kind == EntryKind::kObject &&
        a >= near_obj->base && a < near_obj->base + near_obj->size + 4096) {
      report(ErrorKind::kOutOfBounds, a, n, near_obj);
    } else {
      report(ErrorKind::kUnknownPointer, a, n, nullptr);
    }
    return false;
  }
  if (obj->kind == EntryKind::kOobPeer) {
    report(ErrorKind::kPeerDereference, a, n, obj);
    return false;
  }
  if (a + n > obj->base + obj->size) {
    report(ErrorKind::kOutOfBounds, a, n, obj);
    return false;
  }

  if (site != nullptr) {
    site->cached_base = obj->base;
    site->cached_end = obj->base + obj->size;
    if (opt_.deinstrument_after != 0 &&
        ++site->clean_checks >= opt_.deinstrument_after) {
      site->disabled = true;
    }
  }
  return true;
}

bool Runtime::check_arith(const void* from, std::int64_t delta_bytes,
                          const void* result) {
  ++stats_.arith_checks;
  (void)delta_bytes;
  std::uint64_t src = addr_of(from);
  std::uint64_t dst = addr_of(result);

  const MapEntry* obj = owning_object(src);
  if (obj == nullptr) {
    report(ErrorKind::kUnknownPointer, src, 0, nullptr);
    return false;
  }
  std::uint64_t owner_base =
      obj->kind == EntryKind::kOobPeer ? obj->peer_of : obj->base;

  // Resolve the owner object to test the destination against its bounds.
  ++stats_.map_consults;
  const MapEntry* owner = map_->find(owner_base);
  if (owner == nullptr || owner->kind != EntryKind::kObject) {
    report(ErrorKind::kUnknownPointer, src, 0, nullptr);
    return false;
  }

  if (dst >= owner->base && dst <= owner->base + owner->size) {
    // Back in bounds (or one-past-end, which C allows to *form*). Note:
    // one-past-end still fails check_access when dereferenced.
    return true;
  }

  // Temporary out-of-bounds pointer: install a peer at the destination so
  // further arithmetic on it remains legal.
  MapEntry peer;
  peer.kind = EntryKind::kOobPeer;
  peer.base = dst;
  peer.peer_of = owner->base;
  peer.file = owner->file;
  peer.line = owner->line;
  map_->insert(peer);
  ++stats_.peers_created;
  return true;
}

CheckSite* Runtime::make_site() {
  sites_.push_back(std::make_unique<CheckSite>());
  return sites_.back().get();
}

void Runtime::report(ErrorKind kind, std::uint64_t addr, std::size_t n,
                     const MapEntry* obj) {
  ++stats_.errors;
  const char* kind_name = "?";
  switch (kind) {
    case ErrorKind::kUnknownPointer: kind_name = "unknown pointer"; break;
    case ErrorKind::kOutOfBounds: kind_name = "out-of-bounds access"; break;
    case ErrorKind::kPeerDereference:
      kind_name = "dereference of out-of-bounds pointer";
      break;
    case ErrorKind::kInvalidFree: kind_name = "invalid free"; break;
    case ErrorKind::kDoubleFree: kind_name = "double free"; break;
  }
  char site[160];
  if (obj != nullptr) {
    std::snprintf(site, sizeof(site), "%s:%d", obj->file, obj->line);
  } else {
    std::snprintf(site, sizeof(site), "<unknown>");
  }
  base::klogf(base::LogLevel::kErr,
              "bcc: %s at 0x%llx (%zu bytes); object from %s", kind_name,
              static_cast<unsigned long long>(addr), n, site);
  if (opt_.collect_errors) {
    errors_.push_back(BccError{kind, addr, n, site});
  }
}

}  // namespace usk::bcc
