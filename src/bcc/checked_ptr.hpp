// checked_ptr<T>: the KGCC-instrumented pointer.
//
// KGCC inserts a runtime check before "all operations that can potentially
// cause bounds violations, like pointer arithmetic, string operations,
// memory copying" (paper §3.4). We cannot patch the compiler, so this
// template emits the same calls at the same points:
//   * operator*/operator[]/operator->  ->  Runtime::check_access
//   * operator+/-/++/--               ->  Runtime::check_arith (OOB peers)
//
// A checked_ptr carries a CheckSite shared by all pointers derived from
// it, giving the bounds-cache (CSE analogue) and dynamic deinstrumentation
// their per-site state.
#pragma once

#include <cstddef>

#include "bcc/runtime.hpp"

namespace usk::bcc {

template <typename T>
class checked_ptr {
 public:
  checked_ptr() = default;
  checked_ptr(T* p, Runtime* rt, CheckSite* site)
      : p_(p), rt_(rt), site_(site) {}

  // --- dereference (bounds-checked) ---------------------------------------
  T& operator*() const {
    rt_->check_access(p_, sizeof(T), site_);
    return *p_;
  }
  T* operator->() const {
    rt_->check_access(p_, sizeof(T), site_);
    return p_;
  }
  T& operator[](std::size_t i) const {
    rt_->check_access(p_ + i, sizeof(T), site_);
    return p_[i];
  }

  // --- pointer arithmetic (peer-checked) -----------------------------------
  checked_ptr operator+(std::ptrdiff_t n) const {
    rt_->check_arith(p_, n * static_cast<std::ptrdiff_t>(sizeof(T)), p_ + n);
    return checked_ptr(p_ + n, rt_, site_);
  }
  checked_ptr operator-(std::ptrdiff_t n) const { return *this + (-n); }
  checked_ptr& operator+=(std::ptrdiff_t n) {
    *this = *this + n;
    return *this;
  }
  checked_ptr& operator++() { return *this += 1; }
  checked_ptr& operator--() { return *this += -1; }

  std::ptrdiff_t operator-(const checked_ptr& o) const { return p_ - o.p_; }

  // --- comparisons -----------------------------------------------------------
  bool operator==(const checked_ptr& o) const { return p_ == o.p_; }
  bool operator!=(const checked_ptr& o) const { return p_ != o.p_; }
  explicit operator bool() const { return p_ != nullptr; }

  /// Escape hatch for trusted code (frees, reinterpretation). Using raw()
  /// is exactly the "not compiled with BCC" boundary the paper discusses.
  [[nodiscard]] T* raw() const { return p_; }
  [[nodiscard]] Runtime* runtime() const { return rt_; }
  [[nodiscard]] CheckSite* site() const { return site_; }

 private:
  T* p_ = nullptr;
  Runtime* rt_ = nullptr;
  CheckSite* site_ = nullptr;
};

/// Pointer policy for KGCC-instrumented builds of JournalFs and other
/// policy-templated kernel modules.
struct BccPtrPolicy {
  template <typename T>
  using ptr = checked_ptr<T>;

  template <typename T>
  static checked_ptr<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "BccPtrPolicy arrays must be trivially copyable");
    Runtime& rt = Runtime::instance();
    void* mem = rt.bcc_malloc(n * sizeof(T), "bcc_policy", 0);
    __builtin_memset(mem, 0, n * sizeof(T));
    return checked_ptr<T>(static_cast<T*>(mem), &rt, rt.make_site());
  }

  template <typename T>
  static void free_array(checked_ptr<T> p, std::size_t /*n*/) {
    if (p.raw() != nullptr) Runtime::instance().bcc_free(p.raw());
  }

  /// Reinterpret a byte region as T[] within the same registered object;
  /// bounds checks still resolve to the owning allocation.
  template <typename T>
  static checked_ptr<T> cast_bytes(checked_ptr<std::uint8_t> p,
                                   std::size_t /*n*/) {
    Runtime& rt = Runtime::instance();
    return checked_ptr<T>(reinterpret_cast<T*>(p.raw()), &rt, rt.make_site());
  }

  static constexpr const char* kName = "kgcc";
};

}  // namespace usk::bcc
