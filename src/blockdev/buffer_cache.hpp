// Buffer cache: the kernel's LRU block cache over the simulated disk.
//
// Write-back semantics like the 2.6 page/buffer cache: a write dirties the
// cached block; the disk is touched only on misses, on dirty evictions,
// and on sync(). This is what stands between the filesystems and the Disk
// model, so cache-friendly access patterns (re-reads, sequential scans)
// behave the way the paper's testbeds did.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "blockdev/disk.hpp"

namespace usk::blockdev {

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;   ///< dirty evictions + sync flushes
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

class BufferCache {
 public:
  BufferCache(Disk& disk, std::size_t capacity_blocks)
      : disk_(disk), capacity_(capacity_blocks) {}

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Bring `lba` into the cache for reading.
  void read(Lba lba) { access(lba, /*dirty=*/false); }
  /// Bring `lba` into the cache and dirty it (write-back).
  void write(Lba lba) { access(lba, /*dirty=*/true); }

  /// Write every dirty block back to disk (sync(2) / journal commit).
  void flush() {
    for (auto& [lba, entry] : map_) {
      if (entry.dirty) {
        disk_.write(lba);
        entry.dirty = false;
        ++stats_.writebacks;
      }
    }
  }

  /// Drop everything (unmount); dirty blocks are written back first.
  void clear() {
    flush();
    map_.clear();
    lru_.clear();
  }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] Disk& disk() { return disk_; }

 private:
  struct Entry {
    std::list<Lba>::iterator lru_it;
    bool dirty = false;
  };

  void access(Lba lba, bool dirty) {
    ++stats_.lookups;
    auto it = map_.find(lba);
    if (it != map_.end()) {
      ++stats_.hits;
      lru_.erase(it->second.lru_it);
      lru_.push_front(lba);
      it->second.lru_it = lru_.begin();
      it->second.dirty |= dirty;
      return;
    }
    ++stats_.misses;
    if (map_.size() >= capacity_) evict_one();
    // A write of a whole block still reads it first in this model (the
    // filesystems do read-modify-write at sub-block granularity).
    disk_.read(lba);
    lru_.push_front(lba);
    map_.emplace(lba, Entry{lru_.begin(), dirty});
  }

  void evict_one() {
    Lba victim = lru_.back();
    lru_.pop_back();
    auto it = map_.find(victim);
    if (it->second.dirty) {
      disk_.write(victim);
      ++stats_.writebacks;
    }
    map_.erase(it);
    ++stats_.evictions;
  }

  Disk& disk_;
  std::size_t capacity_;
  std::unordered_map<Lba, Entry> map_;
  std::list<Lba> lru_;
  CacheStats stats_;
};

}  // namespace usk::blockdev
