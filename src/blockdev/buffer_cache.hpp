// Buffer cache: the kernel's LRU block cache over the simulated disk.
//
// Write-back semantics like the 2.6 page/buffer cache: a write dirties the
// cached block; the disk is touched only on misses, on dirty evictions,
// and on sync(). This is what stands between the filesystems and the Disk
// model, so cache-friendly access patterns (re-reads, sequential scans)
// behave the way the paper's testbeds did.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "blockdev/disk.hpp"

namespace usk::blockdev {

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;   ///< dirty evictions + sync flushes
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

class BufferCache {
 public:
  BufferCache(Disk& disk, std::size_t capacity_blocks)
      : disk_(disk), capacity_(capacity_blocks) {}

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Bring `lba` into the cache for reading. kEIO if the miss fill (or a
  /// dirty eviction making room for it) fails.
  [[nodiscard]] Result<void> read(Lba lba) {
    return access(lba, /*dirty=*/false);
  }
  /// Bring `lba` into the cache and dirty it (write-back).
  [[nodiscard]] Result<void> write(Lba lba) {
    return access(lba, /*dirty=*/true);
  }

  /// Write every dirty block back to disk (sync(2) / journal commit).
  /// A block whose writeback fails stays dirty -- sync can be retried --
  /// and the first error is returned after attempting every block.
  [[nodiscard]] Result<void> flush() {
    Result<void> rc{};
    for (auto& [lba, entry] : map_) {
      if (entry.dirty) {
        if (Result<void> r = disk_.write(lba); !r.ok()) {
          if (rc.ok()) rc = r;
          continue;
        }
        entry.dirty = false;
        ++stats_.writebacks;
      }
    }
    return rc;
  }

  /// Drop everything (unmount); dirty blocks are written back first. The
  /// cache empties even if a writeback failed (surfaced in the result) --
  /// unmount does not retry.
  Result<void> clear() {
    Result<void> r = flush();
    map_.clear();
    lru_.clear();
    return r;
  }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] Disk& disk() { return disk_; }

 private:
  struct Entry {
    std::list<Lba>::iterator lru_it;
    bool dirty = false;
  };

  Result<void> access(Lba lba, bool dirty) {
    ++stats_.lookups;
    auto it = map_.find(lba);
    if (it != map_.end()) {
      ++stats_.hits;
      lru_.erase(it->second.lru_it);
      lru_.push_front(lba);
      it->second.lru_it = lru_.begin();
      it->second.dirty |= dirty;
      return {};
    }
    ++stats_.misses;
    if (map_.size() >= capacity_) USK_TRY(evict_one());
    // A write of a whole block still reads it first in this model (the
    // filesystems do read-modify-write at sub-block granularity).
    USK_TRY(disk_.read(lba));
    lru_.push_front(lba);
    map_.emplace(lba, Entry{lru_.begin(), dirty});
    return {};
  }

  Result<void> evict_one() {
    Lba victim = lru_.back();
    auto it = map_.find(victim);
    if (it->second.dirty) {
      // Failed writeback: the victim stays cached and dirty (no data is
      // dropped on the floor); the access that needed the slot fails.
      USK_TRY(disk_.write(victim));
      it->second.dirty = false;
      ++stats_.writebacks;
    }
    lru_.pop_back();
    map_.erase(it);
    ++stats_.evictions;
    return {};
  }

  Disk& disk_;
  std::size_t capacity_;
  std::unordered_map<Lba, Entry> map_;
  std::list<Lba> lru_;
  CacheStats stats_;
};

}  // namespace usk::blockdev
