// Buffer cache: the kernel's writeback page cache over the simulated disk.
//
// Write-back semantics like the 2.6 page/buffer cache: a write dirties the
// cached block; the disk is touched only on misses, on dirty evictions,
// and on sync(). This is what stands between the filesystems and the Disk
// model, so cache-friendly access patterns (re-reads, sequential scans)
// behave the way the paper's testbeds did.
//
// The PR-8 storage tier upgraded this from a single-threaded LRU cost
// model to a real page cache:
//
//   * Data plane. With a BlockBackend attached (set_backend), each cached
//     block carries its 4 KiB payload: miss fills read real bytes from the
//     backend, writebacks push real bytes down, and read_data/write_data
//     are the payload-carrying access paths. Without a backend the cache
//     behaves exactly as before (cost model only), so MemFs and the
//     existing benches are untouched.
//
//   * Thread safety. One mutex guards the cache AND serialises Disk-model
//     charges (the Disk itself is not thread-safe). Lock order is
//     cache -> backend; nothing calls back up into the cache.
//
//   * Background writeback. start_writeback() launches a flusher thread
//     that wakes every interval and writes dirty blocks back, oldest
//     first, when the dirty ratio exceeds its threshold or a block's
//     dirty age exceeds max_age (the pdflush/bdi-writeback ratio+age
//     policy). sync_barrier() is the foreground barrier: all dirty blocks
//     written back and the backend flushed before it returns.
//
//   * Dirty accounting for ksup. Each clean->dirty transition consults a
//     process-wide dirty gate (set_dirty_gate) so the supervisor can
//     charge per-extension dirty-page budgets; a rejecting gate fails the
//     write with EDQUOT before any state changes. Registration is a raw
//     fn+ctx pair for the same reason as uk::set_sup_gateway: blockdev
//     cannot depend on sup.
//
// Writeback failure semantics are unchanged from the seed: a block whose
// writeback fails STAYS cached and dirty -- sync can be retried; no data
// is dropped on the floor -- and the first error is surfaced.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "blockdev/block_backend.hpp"
#include "blockdev/disk.hpp"

namespace usk::blockdev {

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;    ///< dirty evictions + sync flushes
  std::uint64_t bg_writebacks = 0; ///< of which: by the flusher thread
  std::uint64_t evictions = 0;
  std::uint64_t gate_rejects = 0;  ///< writes refused by the dirty gate

  [[nodiscard]] double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

/// Background-writeback policy (pdflush-style ratio + age).
struct WritebackConfig {
  std::uint32_t interval_ms = 50;     ///< flusher wakeup period
  std::uint32_t dirty_ratio_pct = 25; ///< start writing above this % of capacity
  std::uint32_t max_age_ms = 500;     ///< any dirty block older than this goes
  std::uint32_t max_batch = 64;       ///< blocks per wakeup
};

/// Process-wide dirty gate (supervisor dirty-page budgets). Called on
/// every clean->dirty transition with the number of blocks about to be
/// dirtied; a non-ok return fails the write (EDQUOT surfaces to the
/// caller). Raw fn+ctx: blockdev cannot depend on sup.
using DirtyGateFn = Result<void> (*)(void* ctx, std::uint64_t blocks);

namespace detail {
inline std::atomic<DirtyGateFn> g_dirty_gate{nullptr};
inline std::atomic<void*> g_dirty_gate_ctx{nullptr};
}  // namespace detail

inline void set_dirty_gate(DirtyGateFn fn, void* ctx) {
  detail::g_dirty_gate_ctx.store(ctx, std::memory_order_release);
  detail::g_dirty_gate.store(fn, std::memory_order_release);
}

class BufferCache {
 public:
  BufferCache(Disk& disk, std::size_t capacity_blocks)
      : disk_(disk), capacity_(capacity_blocks) {}

  ~BufferCache() { stop_writeback(); }

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Attach the data plane. Call before any payload-carrying access;
  /// blocks cached earlier (cost-model mode) have no payloads.
  void set_backend(BlockBackend* backend) {
    std::lock_guard lk(mu_);
    backend_ = backend;
  }

  /// Bring `lba` into the cache for reading. kEIO if the miss fill (or a
  /// dirty eviction making room for it) fails.
  [[nodiscard]] Result<void> read(Lba lba) {
    std::lock_guard lk(mu_);
    return access_locked(lba, /*dirty=*/false, /*fill=*/true).error();
  }
  /// Bring `lba` into the cache and dirty it (write-back).
  [[nodiscard]] Result<void> write(Lba lba) {
    std::lock_guard lk(mu_);
    return access_locked(lba, /*dirty=*/true, /*fill=*/true).error();
  }

  /// Payload read: bring `lba` in (filling from the backend on a miss)
  /// and copy its 4 KiB into `out`. Requires a backend.
  [[nodiscard]] Result<void> read_data(Lba lba, void* out) {
    std::lock_guard lk(mu_);
    if (backend_ == nullptr) return Errno::kEINVAL;
    auto r = access_locked(lba, /*dirty=*/false, /*fill=*/true);
    if (!r.ok()) return r.error();
    std::memcpy(out, r.value()->data.data(), kBlockBytes);
    return {};
  }

  /// Payload write of a FULL block: no read-modify-write fill is needed
  /// on a miss (the whole block is overwritten), matching real page-cache
  /// behaviour for full-page writes. Dirties the block.
  [[nodiscard]] Result<void> write_data(Lba lba, const void* in) {
    std::lock_guard lk(mu_);
    if (backend_ == nullptr) return Errno::kEINVAL;
    auto r = access_locked(lba, /*dirty=*/true, /*fill=*/false);
    if (!r.ok()) return r.error();
    std::memcpy(r.value()->data.data(), in, kBlockBytes);
    return {};
  }

  /// Write every dirty block back to disk (sync(2) / journal commit).
  /// A block whose writeback fails stays dirty -- sync can be retried --
  /// and the first error is returned after attempting every block.
  [[nodiscard]] Result<void> flush() {
    std::lock_guard lk(mu_);
    return flush_locked(/*background=*/false);
  }

  /// Foreground durability barrier: every dirty block written back AND
  /// the backend flushed (fsync). Any concurrent flusher pass completes
  /// first (it holds the same lock).
  [[nodiscard]] Result<void> sync_barrier() {
    std::lock_guard lk(mu_);
    Result<void> r = flush_locked(/*background=*/false);
    if (backend_ != nullptr) {
      if (Result<void> f = backend_->backend_flush(); !f.ok() && r.ok()) {
        r = f;
      }
    }
    return r;
  }

  /// Drop everything (unmount); dirty blocks are written back first. The
  /// cache empties even if a writeback failed (surfaced in the result) --
  /// unmount does not retry.
  Result<void> clear() {
    std::lock_guard lk(mu_);
    Result<void> r = flush_locked(/*background=*/false);
    map_.clear();
    lru_.clear();
    dirty_count_ = 0;
    return r;
  }

  // --- background writeback ---------------------------------------------------
  void start_writeback(const WritebackConfig& cfg = WritebackConfig{}) {
    stop_writeback();
    {
      std::lock_guard lk(mu_);
      wb_cfg_ = cfg;
      wb_stop_ = false;
    }
    flusher_ = std::thread([this] { flusher_loop(); });
  }

  void stop_writeback() {
    {
      std::lock_guard lk(mu_);
      wb_stop_ = true;
    }
    wb_cv_.notify_all();
    if (flusher_.joinable()) flusher_.join();
  }

  /// Nudge the flusher to run a pass now (e.g. after a burst of dirtying).
  void kick_writeback() { wb_cv_.notify_all(); }

  [[nodiscard]] bool writeback_running() const {
    return flusher_.joinable();
  }

  // --- observation ------------------------------------------------------------
  [[nodiscard]] CacheStats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(mu_);
    return map_.size();
  }
  [[nodiscard]] std::size_t dirty_count() const {
    std::lock_guard lk(mu_);
    return dirty_count_;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] Disk& disk() { return disk_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::list<Lba>::iterator lru_it;
    bool dirty = false;
    Clock::time_point dirty_since{};
    std::vector<std::uint8_t> data;  ///< payload (backend mode only)
  };

  /// Core access path. `fill`: on a miss, read the block in (Disk charge
  /// + backend payload). write_data passes fill=false -- a full-block
  /// overwrite needs no read-modify-write. Returns the entry.
  Result<Entry*> access_locked(Lba lba, bool dirty, bool fill) {
    ++stats_.lookups;
    auto it = map_.find(lba);
    if (it != map_.end()) {
      ++stats_.hits;
      lru_.erase(it->second.lru_it);
      lru_.push_front(lba);
      it->second.lru_it = lru_.begin();
      USK_TRY(mark_dirty_locked(it->second, dirty));
      return &it->second;
    }
    ++stats_.misses;
    if (map_.size() >= capacity_) USK_TRY(evict_one_locked());
    Entry e;
    if (backend_ != nullptr) e.data.resize(kBlockBytes);
    if (fill) {
      // A read (or sub-block write) brings the block in: charge the Disk
      // model and, in backend mode, fetch the real payload.
      USK_TRY(disk_.read(lba));
      if (backend_ != nullptr) {
        USK_TRY(backend_->backend_read(lba, e.data.data()));
      }
    }
    // The dirty gate runs BEFORE the entry is inserted so a rejected
    // write leaves no trace.
    if (dirty) {
      if (Result<void> g = gate_check(1); !g.ok()) {
        ++stats_.gate_rejects;
        return g.error();
      }
    }
    lru_.push_front(lba);
    auto pos = map_.emplace(lba, std::move(e)).first;
    pos->second.lru_it = lru_.begin();
    if (dirty) {
      pos->second.dirty = true;
      pos->second.dirty_since = Clock::now();
      ++dirty_count_;
    }
    return &pos->second;
  }

  Result<void> mark_dirty_locked(Entry& e, bool dirty) {
    if (!dirty || e.dirty) return {};
    if (Result<void> g = gate_check(1); !g.ok()) {
      ++stats_.gate_rejects;
      return g;
    }
    e.dirty = true;
    e.dirty_since = Clock::now();
    ++dirty_count_;
    return {};
  }

  static Result<void> gate_check(std::uint64_t blocks) {
    DirtyGateFn fn = detail::g_dirty_gate.load(std::memory_order_acquire);
    if (fn == nullptr) return {};
    return fn(detail::g_dirty_gate_ctx.load(std::memory_order_acquire),
              blocks);
  }

  /// Write one dirty block back: Disk-model charge first (cost + fault
  /// site), then the real payload to the backend. Failure leaves the
  /// block cached and dirty.
  Result<void> writeback_locked(Lba lba, Entry& e, bool background) {
    USK_TRY(disk_.write(lba));
    if (backend_ != nullptr && !e.data.empty()) {
      USK_TRY(backend_->backend_write(lba, e.data.data()));
    }
    e.dirty = false;
    --dirty_count_;
    ++stats_.writebacks;
    if (background) ++stats_.bg_writebacks;
    return {};
  }

  Result<void> flush_locked(bool background) {
    Result<void> rc{};
    for (auto& [lba, entry] : map_) {
      if (!entry.dirty) continue;
      if (Result<void> r = writeback_locked(lba, entry, background);
          !r.ok() && rc.ok()) {
        rc = r;
      }
    }
    return rc;
  }

  Result<void> evict_one_locked() {
    Lba victim = lru_.back();
    auto it = map_.find(victim);
    if (it->second.dirty) {
      // Failed writeback: the victim stays cached and dirty (no data is
      // dropped on the floor); the access that needed the slot fails.
      USK_TRY(writeback_locked(victim, it->second, /*background=*/false));
    }
    lru_.pop_back();
    map_.erase(it);
    ++stats_.evictions;
    return {};
  }

  void flusher_loop() {
    std::unique_lock lk(mu_);
    while (!wb_stop_) {
      wb_cv_.wait_for(lk, std::chrono::milliseconds(wb_cfg_.interval_ms),
                      [this] { return wb_stop_; });
      if (wb_stop_) break;
      // Ratio + age policy: collect dirty blocks oldest-first; write back
      // while over the dirty ratio, plus any block past max_age.
      std::vector<std::pair<Clock::time_point, Lba>> dirty;
      dirty.reserve(dirty_count_);
      for (const auto& [lba, e] : map_) {
        if (e.dirty) dirty.emplace_back(e.dirty_since, lba);
      }
      std::sort(dirty.begin(), dirty.end());
      const auto now = Clock::now();
      const std::size_t ratio_target =
          capacity_ * wb_cfg_.dirty_ratio_pct / 100;
      std::uint32_t written = 0;
      for (const auto& [since, lba] : dirty) {
        if (written >= wb_cfg_.max_batch) break;
        const bool over_ratio = dirty_count_ > ratio_target;
        const bool aged =
            now - since >= std::chrono::milliseconds(wb_cfg_.max_age_ms);
        if (!over_ratio && !aged) break;  // oldest-first: rest are younger
        auto it = map_.find(lba);
        if (it == map_.end() || !it->second.dirty) continue;
        // A failed background writeback is retried on the next pass.
        (void)writeback_locked(lba, it->second, /*background=*/true);
        ++written;
      }
    }
  }

  Disk& disk_;
  std::size_t capacity_;
  BlockBackend* backend_ = nullptr;
  std::unordered_map<Lba, Entry> map_;
  std::list<Lba> lru_;
  std::size_t dirty_count_ = 0;
  CacheStats stats_;

  mutable std::mutex mu_;
  std::condition_variable wb_cv_;
  WritebackConfig wb_cfg_{};
  bool wb_stop_ = false;
  std::thread flusher_;
};

}  // namespace usk::blockdev
