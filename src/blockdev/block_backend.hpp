// BlockBackend: the data plane under the buffer cache.
//
// The Disk in blockdev/disk.hpp is a COST model -- it charges simulated
// seek/transfer units and hosts the disk.* fault sites, but carries no
// bytes. A BlockBackend is where block PAYLOADS live: the persistent
// storage tier (store::BackingImage) implements it over a real image
// file. The buffer cache composes both -- every miss fill and writeback
// charges the Disk model AND moves real bytes through the backend -- so
// cost accounting and durability stay in lockstep without blockdev
// depending on the store layer (store depends on blockdev, never the
// reverse; this interface is the seam).
#pragma once

#include <cstdint>

#include "base/errno.hpp"

namespace usk::blockdev {

class BlockBackend {
 public:
  virtual ~BlockBackend() = default;
  /// Read/write one 4 KiB block payload. `lba` is in the same block
  /// address space the cache and Disk model use.
  [[nodiscard]] virtual Result<void> backend_read(std::uint64_t lba,
                                                  void* buf) = 0;
  [[nodiscard]] virtual Result<void> backend_write(std::uint64_t lba,
                                                   const void* buf) = 0;
  /// Durability barrier for everything written so far.
  [[nodiscard]] virtual Result<void> backend_flush() = 0;
};

}  // namespace usk::blockdev
