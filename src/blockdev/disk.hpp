// Simulated rotating disk: the I/O substrate behind the paper's testbeds.
//
// The paper's machines ran IDE and SCSI disks (a 7,200 RPM IDE disk for
// Kefence's Wrapfs tests, a Quantum Atlas 15K SCSI for log data), and its
// future work wants Cosy made "I/O conscious" by studying "typical disk
// access patterns" (§2.4). This model prices exactly the pattern
// difference that matters: sequential access costs transfer only, random
// access adds a head seek that grows with distance, plus rotational
// settle. Costs are executed on the work engine (real CPU time), the same
// discipline as the boundary model.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>

#include "base/errno.hpp"
#include "base/work.hpp"
#include "fault/kfail.hpp"

namespace usk::blockdev {

/// Logical block address; blocks are 4 KiB.
using Lba = std::uint64_t;
inline constexpr std::size_t kBlockBytes = 4096;

/// Cost parameters in work units. Defaults approximate a 2005 7,200 RPM
/// disk relative to the boundary model's ~450-unit syscall crossing: a
/// full-stroke seek is worth hundreds of syscalls, sequential transfer is
/// nearly free.
struct DiskModel {
  std::uint64_t seek_base = 1200;      ///< head settle once the move starts
  std::uint64_t seek_per_log2 = 900;   ///< per log2(distance) step
  std::uint64_t rotational = 1400;     ///< average rotational latency
  std::uint64_t transfer_per_block = 260;
  /// Consecutive LBAs after the head need no seek or rotation.
  std::uint64_t sequential_window = 1;
};

struct DiskStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t seeks = 0;
  std::uint64_t sequential_hits = 0;
  std::uint64_t total_seek_distance = 0;
  std::uint64_t units_charged = 0;
  std::uint64_t media_errors = 0;    ///< kfail hard EIO injections
  std::uint64_t retries = 0;         ///< kfail transient sector retries
  std::uint64_t latency_spikes = 0;  ///< kfail injected seek storms
};

class Disk {
 public:
  Disk(Lba blocks, DiskModel model = DiskModel{})
      : blocks_(blocks), model_(model) {}

  /// Charge hook (work engine + task kernel time), same contract as the
  /// filesystem cost hooks.
  void set_charge_hook(std::function<void(std::uint64_t)> hook) {
    charge_ = std::move(hook);
  }

  /// Fallible media access: kEIO under kfail's disk.read/disk.write sites,
  /// kOk otherwise. The cost model charges even on a failed access -- the
  /// head moved and the platter spun before the medium reported the error.
  [[nodiscard]] Result<void> read(Lba lba) {
    return access(lba, /*write=*/false);
  }
  [[nodiscard]] Result<void> write(Lba lba) {
    return access(lba, /*write=*/true);
  }

  [[nodiscard]] Lba size() const { return blocks_; }
  [[nodiscard]] Lba head() const { return head_; }
  [[nodiscard]] const DiskStats& stats() const { return stats_; }
  [[nodiscard]] const DiskModel& model() const { return model_; }

 private:
  Result<void> access(Lba lba, bool write) {
    if (write) {
      ++stats_.writes;
    } else {
      ++stats_.reads;
    }
    std::uint64_t units = model_.transfer_per_block;
    Lba lo = std::min(head_, lba);
    Lba hi = std::max(head_, lba);
    Lba distance = hi - lo;
    if (distance <= model_.sequential_window) {
      ++stats_.sequential_hits;
    } else {
      ++stats_.seeks;
      stats_.total_seek_distance += distance;
      // Seek time grows roughly with the square root / log of distance on
      // real disks; log2 keeps the model monotone and cheap.
      std::uint64_t steps = 0;
      while (distance > 1) {
        distance >>= 1;
        ++steps;
      }
      units += model_.seek_base + model_.seek_per_log2 * steps +
               model_.rotational;
    }
    head_ = lba + 1;  // transfer leaves the head after the block
    if (auto f = USK_FAIL_POINT(write ? fault::Site::kDiskWrite
                                      : fault::Site::kDiskRead);
        f.fail || f.transient) {
      if (f.fail) {
        ++stats_.media_errors;
        stats_.units_charged += units;
        if (charge_) charge_(units);
        return f.err;
      }
      // Transient media error: the sector reads clean on retry, one
      // rotation later.
      ++stats_.retries;
      units += model_.rotational;
    }
    if (auto f = USK_FAIL_POINT(fault::Site::kDiskLatency);
        f.fail || f.transient) {
      // Seek storm: the access completes, but only after a full-stroke
      // seek's worth of extra latency (e.g. thermal recalibration).
      ++stats_.latency_spikes;
      units +=
          model_.seek_base + model_.seek_per_log2 * 30 + model_.rotational;
    }
    stats_.units_charged += units;
    if (charge_) charge_(units);
    return {};
  }

  Lba blocks_;
  DiskModel model_;
  Lba head_ = 0;
  DiskStats stats_;
  std::function<void(std::uint64_t)> charge_;
};

}  // namespace usk::blockdev
