#include "seg/segment.hpp"

#include <cstring>

#include "base/klog.hpp"

namespace usk::seg {

Selector DescriptorTable::install(std::uint64_t size, bool readable,
                                  bool writable, bool executable,
                                  std::string name) {
  Entry e;
  e.desc = Descriptor{size, readable, writable, executable, true,
                      std::move(name)};
  e.bytes.assign(size, 0);
  entries_.push_back(std::move(e));
  return static_cast<Selector>(entries_.size());  // selector 0 is null
}

void DescriptorTable::remove(Selector sel) {
  if (sel == kNullSelector || sel > entries_.size()) return;
  Entry& e = entries_[sel - 1];
  e.desc.present = false;
  e.bytes.clear();
  e.bytes.shrink_to_fit();
}

Errno DescriptorTable::check(Selector sel, std::uint64_t offset,
                             std::size_t len, SegAccess access) {
  ++stats_.checks;
  if (sel == kNullSelector || sel > entries_.size()) {
    ++stats_.violations;
    return Errno::kEFAULT;
  }
  const Descriptor& d = entries_[sel - 1].desc;
  if (!d.present) {
    ++stats_.violations;
    return Errno::kEFAULT;
  }
  bool allowed = (access == SegAccess::kRead && d.readable) ||
                 (access == SegAccess::kWrite && d.writable) ||
                 (access == SegAccess::kExecute && d.executable);
  if (!allowed || offset > d.limit || len > d.limit - offset) {
    ++stats_.violations;
    base::klogf(base::LogLevel::kErr,
                "seg: protection fault in segment '%s' off=%llu len=%zu",
                d.name.c_str(), static_cast<unsigned long long>(offset), len);
    return Errno::kEFAULT;
  }
  return Errno::kOk;
}

Errno DescriptorTable::load(Selector sel, std::uint64_t offset, void* dst,
                            std::size_t n) {
  Errno e = check(sel, offset, n, SegAccess::kRead);
  if (e != Errno::kOk) return e;
  std::memcpy(dst, entries_[sel - 1].bytes.data() + offset, n);
  return Errno::kOk;
}

Errno DescriptorTable::store(Selector sel, std::uint64_t offset,
                             const void* src, std::size_t n) {
  Errno e = check(sel, offset, n, SegAccess::kWrite);
  if (e != Errno::kOk) return e;
  std::memcpy(entries_[sel - 1].bytes.data() + offset, src, n);
  return Errno::kOk;
}

Errno DescriptorTable::fetch(Selector sel, std::uint64_t offset, void* dst,
                             std::size_t n) {
  Errno e = check(sel, offset, n, SegAccess::kExecute);
  if (e != Errno::kOk) return e;
  std::memcpy(dst, entries_[sel - 1].bytes.data() + offset, n);
  return Errno::kOk;
}

const Descriptor* DescriptorTable::descriptor(Selector sel) const {
  if (sel == kNullSelector || sel > entries_.size()) return nullptr;
  return &entries_[sel - 1].desc;
}

std::uint8_t* DescriptorTable::raw(Selector sel) {
  if (sel == kNullSelector || sel > entries_.size()) return nullptr;
  return entries_[sel - 1].bytes.data();
}

}  // namespace usk::seg
