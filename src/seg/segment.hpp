// x86-style segmentation model.
//
// Cosy's strongest safety mode places a user function's code and data in
// isolated segments at kernel privilege: "any reference outside the
// isolated segment generates a protection fault" (§2.3). We model a
// descriptor table with base/limit/permission checks applied on every
// access; a violation raises a protection fault (EFAULT) and is counted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/errno.hpp"

namespace usk::seg {

using Selector = std::uint16_t;
inline constexpr Selector kNullSelector = 0;

enum class SegAccess { kRead, kWrite, kExecute };

struct Descriptor {
  std::uint64_t limit = 0;  ///< segment size in bytes (offsets < limit)
  bool readable = false;
  bool writable = false;
  bool executable = false;
  bool present = false;
  std::string name;
};

struct SegStats {
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  std::uint64_t far_calls = 0;  ///< cross-segment control transfers
};

/// Descriptor table ("GDT") plus the segment backing stores. Each segment
/// owns its bytes; all access goes through checked load/store.
class DescriptorTable {
 public:
  /// Install a segment of `size` bytes; returns its selector.
  Selector install(std::uint64_t size, bool readable, bool writable,
                   bool executable, std::string name);

  void remove(Selector sel);

  /// Pure permission/limit check (the hardware test). kOk or kEFAULT.
  Errno check(Selector sel, std::uint64_t offset, std::size_t len,
              SegAccess access);

  /// Checked data access through the segment.
  Errno load(Selector sel, std::uint64_t offset, void* dst, std::size_t n);
  Errno store(Selector sel, std::uint64_t offset, const void* src,
              std::size_t n);

  /// Checked instruction fetch (requires executable).
  Errno fetch(Selector sel, std::uint64_t offset, void* dst, std::size_t n);

  /// Record a cross-segment control transfer (far call). The *caller*
  /// charges the cost; this only keeps the count for the ablation bench.
  void note_far_call() { ++stats_.far_calls; }

  [[nodiscard]] const Descriptor* descriptor(Selector sel) const;
  [[nodiscard]] std::uint8_t* raw(Selector sel);  ///< for trusted setup only
  [[nodiscard]] const SegStats& stats() const { return stats_; }

 private:
  struct Entry {
    Descriptor desc;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Entry> entries_;  // index = selector - 1
  SegStats stats_;
};

}  // namespace usk::seg
