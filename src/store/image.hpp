// BackingImage: the persistent storage tier's on-disk image file.
//
// Everything below this line in the storage stack is REAL: a block written
// here lands in an actual file via pwrite (or a store into an mmap'd
// region), and flush() is a genuine fsync/msync. This is what makes the
// PR-4 torn-write/replay oracle honest -- recovery reads back whatever the
// simulated power cut left in the file, not an in-memory stand-in.
//
// Two access modes, chosen at open:
//   * kPread  -- pread/pwrite per block (the default; no address-space
//                cost, write sizes visible to the crash-capture log)
//   * kMmap   -- the whole image mapped once; block access is memcpy,
//                flush is msync. Same durability contract.
//
// Crash capture (enable_crash_capture) is the kill-9 oracle's substrate:
// while enabled, every write is appended to a write log (the stable
// snapshot is the file contents at enable time) and each fsync records a
// flush mark. simulate_crash(prefix, tear) rewrites the image file to the
// stable snapshot plus a PREFIX of the logged writes -- optionally tearing
// the last one mid-block, the way a dying disk tears a sector -- so
// recovery then runs against the actual mutilated file. Cuts can land
// anywhere, including before a commit's own fsync; flush marks let the
// oracle assert that acked barriers stay durable for cuts past them.
// Capture is off by default and costs nothing when off.
//
// Fault sites (kfail):
//   store.short_write  -- a block write persists only its first half, then
//                         reports EIO (hard) or succeeds after a retry
//                         that is charged but clean (transient)
//   store.fsync_fail   -- flush() reports EIO; dirty data keeps pending
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/errno.hpp"

namespace usk::store {

inline constexpr std::size_t kBlockBytes = 4096;

enum class ImageMode : std::uint8_t { kPread = 0, kMmap };

struct ImageStats {
  std::uint64_t preads = 0;
  std::uint64_t pwrites = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t short_writes = 0;   ///< kfail store.short_write injections
  std::uint64_t fsync_failures = 0; ///< kfail store.fsync_fail injections
};

/// One logged post-flush write (crash-capture mode).
struct LoggedWrite {
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> data;
};

class BackingImage {
 public:
  BackingImage() = default;
  ~BackingImage();
  BackingImage(const BackingImage&) = delete;
  BackingImage& operator=(const BackingImage&) = delete;

  /// Create-or-open `path` sized to `blocks` 4 KiB blocks. An existing
  /// file is kept (its contents are the persistent state); a new or short
  /// file is extended with zeroes.
  [[nodiscard]] Result<void> open(const std::string& path, std::uint64_t blocks,
                                  ImageMode mode = ImageMode::kPread);
  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t blocks() const { return blocks_; }
  [[nodiscard]] ImageMode mode() const { return mode_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Whole-block read/write. `buf` is kBlockBytes long.
  [[nodiscard]] Result<void> read_block(std::uint64_t lba, void* buf);
  [[nodiscard]] Result<void> write_block(std::uint64_t lba, const void* buf);
  /// Sub-block write at an absolute byte offset (commit headers).
  [[nodiscard]] Result<void> write_bytes(std::uint64_t offset, const void* buf,
                                         std::size_t len);
  [[nodiscard]] Result<void> read_bytes(std::uint64_t offset, void* buf,
                                        std::size_t len);

  /// Durability barrier: fsync (pread mode) or msync+fsync (mmap mode).
  [[nodiscard]] Result<void> flush();

  [[nodiscard]] ImageStats stats() const;

  // --- crash-capture (the kill-9 oracle) ------------------------------------
  /// Start logging post-flush writes; the current (flushed) file contents
  /// become the stable snapshot.
  void enable_crash_capture();
  void disable_crash_capture();
  /// Number of writes logged since capture was enabled. The log is NOT
  /// folded at flush -- cut points must be able to land before a commit's
  /// own fsync (mid-journal-write, mid-commit-header).
  [[nodiscard]] std::size_t pending_writes() const;
  /// Log length at each successful flush since capture was enabled, in
  /// order. A cut at prefix >= flush_marks()[k] must preserve every write
  /// the k-th barrier covered -- the oracle's durability assertion.
  [[nodiscard]] std::vector<std::size_t> flush_marks() const;
  /// Region tag of logged write #i (for cut-point coverage accounting):
  /// derived purely from the write's offset by the caller-provided
  /// classifier at simulate time; here we just expose offset/len.
  [[nodiscard]] LoggedWrite pending_write(std::size_t i) const;

  /// Kill -9 at a cut point: rewrite the image file to the stable
  /// snapshot plus the first `prefix` logged writes; if `tear_bytes` is
  /// nonzero and prefix < log size, additionally apply only the first
  /// `tear_bytes` bytes of logged write #prefix (a torn final write).
  /// The file on disk ends up exactly in that state (fsynced); the log
  /// and snapshot reset so recovery can re-enable capture cleanly.
  [[nodiscard]] Result<void> simulate_crash(std::size_t prefix,
                                            std::size_t tear_bytes);

  // --- debugfs-style raw corruption (forensics/tests) -----------------------
  [[nodiscard]] Result<void> corrupt_bytes(std::uint64_t offset,
                                           std::size_t len);

 private:
  Result<void> pwrite_raw(std::uint64_t offset, const void* buf,
                          std::size_t len);
  Result<void> pread_raw(std::uint64_t offset, void* buf, std::size_t len);
  void log_write(std::uint64_t offset, const void* buf, std::size_t len);
  Result<void> snapshot_stable_locked();

  mutable std::mutex mu_;
  std::string path_;
  int fd_ = -1;
  std::uint64_t blocks_ = 0;
  ImageMode mode_ = ImageMode::kPread;
  std::uint8_t* map_ = nullptr;  ///< mmap base (kMmap mode)
  ImageStats stats_;

  bool capture_ = false;
  std::vector<std::uint8_t> stable_;      ///< file contents at capture enable
  std::vector<LoggedWrite> write_log_;    ///< post-enable writes, in order
  std::vector<std::size_t> flush_marks_;  ///< log length at each fsync
};

}  // namespace usk::store
