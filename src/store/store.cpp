#include "store/store.hpp"

#include <cstring>

#include "trace/span.hpp"
#include "trace/tracepoint.hpp"

namespace usk::store {

namespace {

constexpr std::uint64_t kSuperMagic = 0x55534b53544f5231ull;  // "USKSTOR1"
constexpr std::uint64_t kSlotBytes = 128;  // two slots in block 0

struct SuperblockSlot {
  std::uint64_t magic;
  std::uint64_t seq;          ///< generation; highest valid slot wins
  std::uint64_t stable_seq;   ///< last checkpointed commit-unit seq
  std::uint64_t data_blocks;
  std::uint64_t journal_blocks;
  std::uint64_t checksum;     ///< FNV-1a over the preceding fields
};
static_assert(sizeof(SuperblockSlot) == 48, "on-media superblock format");
static_assert(sizeof(SuperblockSlot) <= kSlotBytes);

std::uint64_t slot_checksum(const SuperblockSlot& s) {
  std::uint64_t h = 14695981039346656037ull;
  const auto* p = reinterpret_cast<const std::uint8_t*>(&s);
  for (std::size_t i = 0; i < sizeof(SuperblockSlot) - sizeof(std::uint64_t);
       ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

bool slot_valid(const SuperblockSlot& s) {
  return s.magic == kSuperMagic && s.checksum == slot_checksum(s);
}

}  // namespace

Store::~Store() { close(); }

Result<void> Store::open(const std::string& path, const StoreConfig& cfg) {
  std::lock_guard lk(mu_);
  if (image_.is_open()) return Errno::kEBUSY;
  cfg_ = cfg;
  data_base_ = 1 + cfg_.journal_blocks;
  const std::uint64_t total = 1 + cfg_.journal_blocks + cfg_.data_blocks;
  USK_TRY(image_.open(path, total, cfg_.mode));

  // Adopt the surviving superblock, or format a fresh image.
  SuperblockSlot slots[2];
  USK_TRY(image_.read_bytes(0, &slots[0], sizeof(SuperblockSlot)));
  USK_TRY(image_.read_bytes(kSlotBytes, &slots[1], sizeof(SuperblockSlot)));
  int best = -1;
  for (int i = 0; i < 2; ++i) {
    if (slot_valid(slots[i]) && (best < 0 || slots[i].seq > slots[best].seq)) {
      best = i;
    }
  }
  if (best >= 0) {
    if (slots[best].data_blocks != cfg_.data_blocks ||
        slots[best].journal_blocks != cfg_.journal_blocks) {
      image_.close();
      return Errno::kEINVAL;  // geometry mismatch: not our image
    }
    sb_seq_ = slots[best].seq;
    stable_seq_ = slots[best].stable_seq;
  } else {
    sb_seq_ = 0;
    stable_seq_ = 0;
    USK_TRY(write_superblock_locked(0));
  }
  journal_ = std::make_unique<GroupCommitJournal>(
      image_, journal_region_off(), journal_region_bytes(), cfg_.journal);
  return {};
}

void Store::close() {
  std::lock_guard lk(mu_);
  journal_.reset();
  if (cache_ != nullptr) {
    cache_->set_backend(nullptr);
    cache_ = nullptr;
  }
  image_.close();
}

void Store::attach_cache(blockdev::BufferCache* cache) {
  std::lock_guard lk(mu_);
  cache_ = cache;
  if (cache_ != nullptr) cache_->set_backend(&backend_);
}

Result<void> Store::DataBackend::backend_read(std::uint64_t lba, void* buf) {
  if (lba >= s_.cfg_.data_blocks) return Errno::kEINVAL;
  return s_.image_.read_block(s_.data_base_ + lba, buf);
}

Result<void> Store::DataBackend::backend_write(std::uint64_t lba,
                                               const void* buf) {
  if (lba >= s_.cfg_.data_blocks) return Errno::kEINVAL;
  return s_.image_.write_block(s_.data_base_ + lba, buf);
}

Result<void> Store::DataBackend::backend_flush() { return s_.image_.flush(); }

Result<std::uint64_t> Store::commit_txn(
    JTxn&& txn, const std::function<Result<void>()>& post_commit) {
  if (journal_ == nullptr) return Errno::kEBADF;
  if (txn.empty()) return journal_->durable_seq();
  trace::SpanScope span("store.commit");
  // Keep the records so an ENOSPC round-trip through checkpoint can
  // rebuild and retry the transaction.
  const std::vector<JRecord> backup = txn.records;
  const std::uint64_t need = GroupCommitJournal::unit_bytes(txn);
  for (int attempt = 0; attempt < 3; ++attempt) {
    // Proactive reclaim: checkpoint before the region is actually full
    // so concurrent batches rarely see ENOSPC.
    if (journal_->tail_bytes() + need > journal_region_bytes() * 3 / 4) {
      USK_TRY(checkpoint());
      ++stats_.enospc_retries;
    }
    Result<std::uint64_t> r = Errno::kEIO;
    {
      // Shared side of the checkpoint exclusion: while a commit (and its
      // post-commit home application) is in flight the journal tail
      // cannot be reset under it.
      std::shared_lock sl(apply_mu_);
      r = journal_->commit(std::move(txn));
      if (r.ok() && post_commit) USK_TRY(post_commit());
    }
    if (r.ok()) {
      span.add_units(need);
      return r;
    }
    if (r.error() != Errno::kENOSPC) return r.error();
    ++stats_.enospc_retries;
    USK_TRY(checkpoint());
    txn.records = backup;
  }
  return Errno::kENOSPC;
}

Result<void> Store::checkpoint() {
  // Exclusive side: waits out every in-flight commit (and, for callers
  // using commit-then-apply, their home-location application) so nothing
  // lands in the journal between the cache barrier and the tail reset.
  std::unique_lock ul(apply_mu_);
  std::lock_guard lk(mu_);
  return checkpoint_locked();
}

Result<void> Store::checkpoint_locked() {
  if (journal_ == nullptr) return Errno::kEBADF;
  trace::SpanScope span("store.checkpoint");
  {
    // Push every dirty home block down and fsync: after this the data
    // region alone reproduces all checkpointed state.
    trace::SpanScope wb("store.writeback");
    if (cache_ != nullptr) {
      USK_TRY(cache_->sync_barrier());
    } else {
      USK_TRY(image_.flush());
    }
  }
  const std::uint64_t stable = journal_->durable_seq();
  USK_TRY(write_superblock_locked(stable));
  journal_->reset_tail();
  stable_seq_ = stable;
  ++stats_.checkpoints;
  USK_TRACEPOINT("store", "checkpoint", stable, 0);
  return {};
}

Result<void> Store::write_superblock_locked(std::uint64_t stable_seq) {
  SuperblockSlot s{};
  s.magic = kSuperMagic;
  s.seq = ++sb_seq_;
  s.stable_seq = stable_seq;
  s.data_blocks = cfg_.data_blocks;
  s.journal_blocks = cfg_.journal_blocks;
  s.checksum = slot_checksum(s);
  // Alternate slots so a torn superblock write leaves the previous
  // generation intact; the flush makes the new generation the winner.
  const std::uint64_t off = (s.seq % 2) * kSlotBytes;
  USK_TRY(image_.write_bytes(off, &s, sizeof(s)));
  return image_.flush();
}

Store::RecoveryReport Store::recover(
    const std::function<void(const JRecord&, std::uint64_t)>& apply) {
  std::lock_guard lk(mu_);
  RecoveryReport rep;
  if (journal_ == nullptr) return rep;
  rep.superblock_ok = true;  // open() already validated or formatted it
  rep.stable_seq = stable_seq_;
  rep.scan = journal_->scan(stable_seq_, apply);
  ++stats_.recoveries;
  USK_TRACEPOINT("store", "recover", rep.scan.units_applied,
                 rep.scan.units_discarded);
  return rep;
}

StoreStats Store::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::uint64_t Store::stable_seq() const {
  std::lock_guard lk(mu_);
  return stable_seq_;
}

Store::Region Store::classify_offset(std::uint64_t byte_off) const {
  if (byte_off < kBlockBytes) return Region::kSuperblock;
  if (byte_off < (1 + cfg_.journal_blocks) * kBlockBytes) {
    return Region::kJournal;
  }
  return Region::kData;
}

}  // namespace usk::store
