#include "store/image.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/kfail.hpp"
#include "trace/tracepoint.hpp"

namespace usk::store {

namespace {
/// Map a host errno from the real I/O syscalls onto the simulated one.
Errno host_errno() {
  switch (errno) {
    case ENOENT: return Errno::kENOENT;
    case EACCES: return Errno::kEACCES;
    case ENOSPC: return Errno::kENOSPC;
    case EBADF: return Errno::kEBADF;
    default: return Errno::kEIO;
  }
}
}  // namespace

BackingImage::~BackingImage() { close(); }

Result<void> BackingImage::open(const std::string& path, std::uint64_t blocks,
                                ImageMode mode) {
  std::lock_guard lk(mu_);
  if (fd_ >= 0) return Errno::kEBUSY;
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return host_errno();
  const std::uint64_t want = blocks * kBlockBytes;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return host_errno();
  }
  if (static_cast<std::uint64_t>(st.st_size) < want &&
      ::ftruncate(fd, static_cast<off_t>(want)) != 0) {
    ::close(fd);
    return host_errno();
  }
  if (mode == ImageMode::kMmap) {
    void* m = ::mmap(nullptr, want, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (m == MAP_FAILED) {
      ::close(fd);
      return Errno::kENOMEM;
    }
    map_ = static_cast<std::uint8_t*>(m);
  }
  fd_ = fd;
  path_ = path;
  blocks_ = blocks;
  mode_ = mode;
  return {};
}

void BackingImage::close() {
  std::lock_guard lk(mu_);
  if (map_ != nullptr) {
    ::munmap(map_, blocks_ * kBlockBytes);
    map_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  capture_ = false;
  stable_.clear();
  write_log_.clear();
}

Result<void> BackingImage::pread_raw(std::uint64_t offset, void* buf,
                                     std::size_t len) {
  if (mode_ == ImageMode::kMmap) {
    std::memcpy(buf, map_ + offset, len);
  } else {
    std::size_t done = 0;
    while (done < len) {
      ssize_t n = ::pread(fd_, static_cast<std::uint8_t*>(buf) + done,
                          len - done, static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return host_errno();
      }
      if (n == 0) {  // past EOF (shouldn't happen: file pre-sized)
        std::memset(static_cast<std::uint8_t*>(buf) + done, 0, len - done);
        break;
      }
      done += static_cast<std::size_t>(n);
    }
  }
  ++stats_.preads;
  stats_.bytes_read += len;
  return {};
}

Result<void> BackingImage::pwrite_raw(std::uint64_t offset, const void* buf,
                                      std::size_t len) {
  if (mode_ == ImageMode::kMmap) {
    std::memcpy(map_ + offset, buf, len);
  } else {
    std::size_t done = 0;
    while (done < len) {
      ssize_t n = ::pwrite(fd_, static_cast<const std::uint8_t*>(buf) + done,
                           len - done, static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return host_errno();
      }
      done += static_cast<std::size_t>(n);
    }
  }
  ++stats_.pwrites;
  stats_.bytes_written += len;
  return {};
}

void BackingImage::log_write(std::uint64_t offset, const void* buf,
                             std::size_t len) {
  if (!capture_) return;
  LoggedWrite w;
  w.offset = offset;
  w.data.assign(static_cast<const std::uint8_t*>(buf),
                static_cast<const std::uint8_t*>(buf) + len);
  write_log_.push_back(std::move(w));
}

Result<void> BackingImage::read_block(std::uint64_t lba, void* buf) {
  std::lock_guard lk(mu_);
  if (fd_ < 0) return Errno::kEBADF;
  if (lba >= blocks_) return Errno::kEINVAL;
  return pread_raw(lba * kBlockBytes, buf, kBlockBytes);
}

Result<void> BackingImage::write_block(std::uint64_t lba, const void* buf) {
  std::lock_guard lk(mu_);
  if (fd_ < 0) return Errno::kEBADF;
  if (lba >= blocks_) return Errno::kEINVAL;
  const std::uint64_t off = lba * kBlockBytes;
  if (auto f = USK_FAIL_POINT(fault::Site::kStoreShortWrite);
      f.fail || f.transient) {
    if (f.fail) {
      // Short write: the first half of the block hits the medium, the
      // rest never does, and the drive reports the error. The torn block
      // is REAL -- it is what a later read (or recovery) will see.
      ++stats_.short_writes;
      USK_TRY(pwrite_raw(off, buf, kBlockBytes / 2));
      log_write(off, buf, kBlockBytes / 2);
      return f.err;
    }
    // Transient: the first attempt was short, the retry completes. One
    // extra half-block write is charged to the stats.
    ++stats_.short_writes;
    USK_TRY(pwrite_raw(off, buf, kBlockBytes / 2));
  }
  USK_TRY(pwrite_raw(off, buf, kBlockBytes));
  log_write(off, buf, kBlockBytes);
  return {};
}

Result<void> BackingImage::write_bytes(std::uint64_t offset, const void* buf,
                                       std::size_t len) {
  std::lock_guard lk(mu_);
  if (fd_ < 0) return Errno::kEBADF;
  if (offset + len > blocks_ * kBlockBytes) return Errno::kEINVAL;
  USK_TRY(pwrite_raw(offset, buf, len));
  log_write(offset, buf, len);
  return {};
}

Result<void> BackingImage::read_bytes(std::uint64_t offset, void* buf,
                                      std::size_t len) {
  std::lock_guard lk(mu_);
  if (fd_ < 0) return Errno::kEBADF;
  if (offset + len > blocks_ * kBlockBytes) return Errno::kEINVAL;
  return pread_raw(offset, buf, len);
}

Result<void> BackingImage::flush() {
  std::lock_guard lk(mu_);
  if (fd_ < 0) return Errno::kEBADF;
  if (auto f = USK_FAIL_POINT(fault::Site::kStoreFsyncFail);
      f.fail || f.transient) {
    if (f.fail) {
      ++stats_.fsync_failures;
      return f.err;
    }
    // Transient: first fsync attempt failed, retry succeeds below.
    ++stats_.fsync_failures;
  }
  if (mode_ == ImageMode::kMmap) {
    if (::msync(map_, blocks_ * kBlockBytes, MS_SYNC) != 0) {
      return host_errno();
    }
  }
  if (::fsync(fd_) != 0) return host_errno();
  ++stats_.fsyncs;
  USK_TRACEPOINT("store", "fsync", stats_.fsyncs, 0);
  if (capture_) {
    // Keep the log growing across flushes -- a crash cut must be able to
    // land BEFORE a commit's own fsync (mid-journal-write, mid-header).
    // Record where the barrier fell so the oracle can assert durability:
    // any cut at or past this mark must preserve everything before it.
    flush_marks_.push_back(write_log_.size());
  }
  return {};
}

ImageStats BackingImage::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

// --- crash capture -----------------------------------------------------------

Result<void> BackingImage::snapshot_stable_locked() {
  stable_.resize(blocks_ * kBlockBytes);
  USK_TRY(pread_raw(0, stable_.data(), stable_.size()));
  write_log_.clear();
  flush_marks_.clear();
  return {};
}

void BackingImage::enable_crash_capture() {
  std::lock_guard lk(mu_);
  capture_ = true;
  (void)snapshot_stable_locked();
}

void BackingImage::disable_crash_capture() {
  std::lock_guard lk(mu_);
  capture_ = false;
  stable_.clear();
  write_log_.clear();
  flush_marks_.clear();
}

std::vector<std::size_t> BackingImage::flush_marks() const {
  std::lock_guard lk(mu_);
  return flush_marks_;
}

std::size_t BackingImage::pending_writes() const {
  std::lock_guard lk(mu_);
  return write_log_.size();
}

LoggedWrite BackingImage::pending_write(std::size_t i) const {
  std::lock_guard lk(mu_);
  return i < write_log_.size() ? write_log_[i] : LoggedWrite{};
}

Result<void> BackingImage::simulate_crash(std::size_t prefix,
                                          std::size_t tear_bytes) {
  std::lock_guard lk(mu_);
  if (!capture_ || fd_ < 0) return Errno::kEINVAL;
  // Reconstruct the post-crash file contents: last durable state plus a
  // prefix of the since-flush writes, possibly one torn.
  std::vector<std::uint8_t> img = stable_;
  img.resize(blocks_ * kBlockBytes);
  std::size_t n = std::min(prefix, write_log_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const LoggedWrite& w = write_log_[i];
    std::memcpy(img.data() + w.offset, w.data.data(), w.data.size());
  }
  if (tear_bytes > 0 && n < write_log_.size()) {
    const LoggedWrite& w = write_log_[n];
    std::memcpy(img.data() + w.offset, w.data.data(),
                std::min(tear_bytes, w.data.size()));
  }
  USK_TRY(pwrite_raw(0, img.data(), img.size()));
  if (mode_ == ImageMode::kMmap) {
    if (::msync(map_, blocks_ * kBlockBytes, MS_SYNC) != 0) {
      return host_errno();
    }
  }
  if (::fsync(fd_) != 0) return host_errno();
  // The crash state is the new reality; recovery re-enables capture.
  capture_ = false;
  stable_.clear();
  write_log_.clear();
  flush_marks_.clear();
  return {};
}

Result<void> BackingImage::corrupt_bytes(std::uint64_t offset,
                                         std::size_t len) {
  std::lock_guard lk(mu_);
  if (fd_ < 0) return Errno::kEBADF;
  if (offset + len > blocks_ * kBlockBytes) return Errno::kEINVAL;
  std::vector<std::uint8_t> junk(len);
  USK_TRY(pread_raw(offset, junk.data(), len));
  for (std::uint8_t& b : junk) b ^= 0xA5;
  return pwrite_raw(offset, junk.data(), len);
}

}  // namespace usk::store
