// Store: the persistent storage tier, composed.
//
// Image layout (4 KiB blocks):
//   block 0                     dual-slot superblock (A/B, checksummed)
//   blocks [1, 1+J)             group-commit journal region
//   blocks [1+J, 1+J+D)         data region (filesystem home locations)
//
// The Store stitches the pieces into one durability story:
//
//   * commit_txn() runs a transaction through the GroupCommitJournal --
//     concurrent committers share one fsync -- and transparently
//     checkpoints + retries when the journal region fills (ENOSPC).
//
//   * attach_cache() plugs the data region in as the buffer cache's
//     BlockBackend, so cache writebacks move real bytes into the image.
//     Because callers only dirty home locations AFTER their transaction
//     committed (redo journaling), background writeback can never push
//     uncommitted state.
//
//   * checkpoint() is the reclaim path: barrier the cache (all dirty
//     home blocks down + fsync), bump the superblock's stable_seq to the
//     last durable commit unit, and reset the journal tail. The
//     superblock write alternates between two checksummed slots so a
//     torn checkpoint leaves the previous superblock intact -- recovery
//     picks the valid slot with the highest seq.
//
//   * recover() reads the surviving superblock and replays every valid
//     commit unit with seq > stable_seq through the caller's apply
//     function (committed-prefix semantics; see journal.hpp). The caller
//     (fs bridge) rebuilds state, then checkpoints to make the recovered
//     state the new stable image.
//
// kspan: store.commit / store.writeback / store.checkpoint spans;
// kmetrics + /proc/store/** wiring lives in store/proc.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "blockdev/block_backend.hpp"
#include "blockdev/buffer_cache.hpp"
#include "store/image.hpp"
#include "store/journal.hpp"

namespace usk::store {

struct StoreConfig {
  std::uint64_t data_blocks = 1024;
  std::uint64_t journal_blocks = 256;
  ImageMode mode = ImageMode::kPread;
  JournalConfig journal{};
};

struct StoreStats {
  std::uint64_t checkpoints = 0;
  std::uint64_t enospc_retries = 0;  ///< commits that had to checkpoint first
  std::uint64_t recoveries = 0;
};

class Store {
 public:
  Store() = default;
  ~Store();
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Create-or-open the image at `path`. A fresh image gets an initial
  /// superblock (stable_seq = 0); an existing one is left untouched until
  /// recover().
  [[nodiscard]] Result<void> open(const std::string& path,
                                  const StoreConfig& cfg = StoreConfig{});
  void close();
  [[nodiscard]] bool is_open() const { return image_.is_open(); }

  /// Plug the data region in as `cache`'s backend. Cache LBA k maps to
  /// image block data_base + k.
  void attach_cache(blockdev::BufferCache* cache);

  // --- transactions ----------------------------------------------------------
  [[nodiscard]] JTxn begin_txn() const { return JTxn{}; }
  /// Group-commit the transaction; durable on return. Checkpoints and
  /// retries when the journal region is full. `post_commit`, if given,
  /// runs after the unit is durable but still inside the checkpoint
  /// exclusion -- the filesystem uses it to apply home-location
  /// post-images to the page cache, guaranteeing no checkpoint can
  /// reclaim the unit before its home writes are at least cached. A
  /// post_commit error is returned, but the commit itself stays durable.
  [[nodiscard]] Result<std::uint64_t> commit_txn(
      JTxn&& txn, const std::function<Result<void>()>& post_commit = nullptr);

  /// Force a checkpoint (sync(2) path): cache barrier, superblock bump,
  /// journal reclaim.
  [[nodiscard]] Result<void> checkpoint();

  // --- recovery --------------------------------------------------------------
  struct RecoveryReport {
    bool superblock_ok = false;
    std::uint64_t stable_seq = 0;
    GroupCommitJournal::ScanReport scan;
  };
  /// Mount-time recovery: pick the valid superblock slot, replay the
  /// committed prefix of the journal through `apply`.
  RecoveryReport recover(
      const std::function<void(const JRecord&, std::uint64_t)>& apply);

  // --- accessors -------------------------------------------------------------
  [[nodiscard]] BackingImage& image() { return image_; }
  [[nodiscard]] GroupCommitJournal* journal() { return journal_.get(); }
  [[nodiscard]] blockdev::BufferCache* cache() { return cache_; }
  [[nodiscard]] std::uint64_t data_base() const { return data_base_; }
  [[nodiscard]] std::uint64_t data_blocks() const { return cfg_.data_blocks; }
  [[nodiscard]] std::uint64_t journal_region_off() const {
    return kBlockBytes;
  }
  [[nodiscard]] std::uint64_t journal_region_bytes() const {
    return cfg_.journal_blocks * kBlockBytes;
  }
  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] std::uint64_t stable_seq() const;

  /// Region classification for crash-oracle coverage accounting.
  enum class Region : std::uint8_t { kSuperblock, kJournal, kData };
  [[nodiscard]] Region classify_offset(std::uint64_t byte_off) const;

 private:
  /// Adapter: cache LBAs -> data-region image blocks.
  class DataBackend final : public blockdev::BlockBackend {
   public:
    explicit DataBackend(Store& s) : s_(s) {}
    Result<void> backend_read(std::uint64_t lba, void* buf) override;
    Result<void> backend_write(std::uint64_t lba, const void* buf) override;
    Result<void> backend_flush() override;

   private:
    Store& s_;
  };

  Result<void> write_superblock_locked(std::uint64_t stable_seq);
  Result<void> checkpoint_locked();

  StoreConfig cfg_;
  BackingImage image_;
  std::unique_ptr<GroupCommitJournal> journal_;
  DataBackend backend_{*this};
  blockdev::BufferCache* cache_ = nullptr;
  std::uint64_t data_base_ = 0;

  mutable std::mutex mu_;  ///< checkpoint/superblock/stats; NOT commit
  /// Commit/checkpoint exclusion: commits hold the shared side while in
  /// flight; checkpoint takes it exclusively so the journal tail is never
  /// reset under a transaction that is committing (or applying home
  /// writes via commit-then-apply callers).
  mutable std::shared_mutex apply_mu_;
  std::uint64_t sb_seq_ = 0;      ///< superblock generation (slot = seq % 2)
  std::uint64_t stable_seq_ = 0;  ///< last checkpointed commit-unit seq
  StoreStats stats_;
};

}  // namespace usk::store
