// Group-committed journal over the backing image.
//
// JournalFs's PR-4 journal appended one in-memory record per metadata
// update and never paid a durability cost. This journal is the real
// thing: transactions from CONCURRENT writers are batched into one commit
// unit -- records serialized sequentially into the image's journal
// region, closed by a checksummed commit header, made durable by a
// SINGLE fsync -- so N writers share one flush instead of paying N
// (the classic group-commit amortization, bench_storage S1).
//
// Commit protocol (leader/follower, one mutex + condvar):
//   * commit(txn) enqueues the closed transaction and waits;
//   * the first waiter finding no flush in progress becomes the LEADER:
//     it takes the whole pending queue (optionally waiting
//     leader_wait_us for stragglers), serializes every transaction into
//     one unit, writes records then header, fsyncs once, and wakes all;
//   * followers whose transactions rode the batch return as soon as the
//     leader publishes durability. While the leader's fsync runs, new
//     committers pile into the queue -- the next leader takes them all,
//     so the slower the medium, the bigger the batch.
//
// On-disk unit format (all little-endian, FNV-1a checksums):
//   CommitHeader { magic, unit_seq, first_rec_seq, n_records, n_txns,
//                  payload_bytes, payload_checksum, header_checksum }
//   followed by payload_bytes of records, each
//   RecHeader { rec_checksum, target, len, kind } + payload (8-aligned).
//
// A unit is committed iff its header validates AND the payload checksum
// matches: the header is written AFTER the records, and the checksum
// covers reordering by the medium, so one ordered flush suffices.
// Recovery scans units in order, requiring strictly increasing unit_seq;
// the first invalid unit ends the usable log (committed-prefix
// semantics). kfail's store.torn_commit_header tears the header as it is
// written -- silently, like disk.torn: the damage only shows at recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "base/errno.hpp"
#include "sched/waitqueue.hpp"
#include "store/image.hpp"

namespace usk::store {

/// One journaled record: an opaque (kind, target, payload) triple. The
/// filesystem bridge maps these onto JournalFs's JRecKind redo records;
/// the journal itself never interprets them.
struct JRecord {
  std::uint8_t kind = 0;
  std::uint32_t target = 0;
  std::vector<std::uint8_t> payload;
};

/// A transaction under construction. Built by one thread, then moved
/// into commit(); empty transactions commit as a no-op without queueing.
struct JTxn {
  std::vector<JRecord> records;
  [[nodiscard]] bool empty() const { return records.empty(); }
  void append(std::uint8_t kind, std::uint32_t target, const void* data,
              std::size_t len) {
    JRecord r;
    r.kind = kind;
    r.target = target;
    r.payload.assign(static_cast<const std::uint8_t*>(data),
                     static_cast<const std::uint8_t*>(data) + len);
    records.push_back(std::move(r));
  }
};

struct JournalStats {
  std::uint64_t txns_committed = 0;
  std::uint64_t commit_units = 0;   ///< units written (== fsyncs issued here)
  std::uint64_t records_written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t max_batch_txns = 0; ///< largest single commit unit (txns)
  std::uint64_t torn_headers = 0;   ///< kfail store.torn_commit_header hits
  std::uint64_t resets = 0;         ///< checkpoint tail resets

  [[nodiscard]] double txns_per_flush() const {
    return commit_units ? static_cast<double>(txns_committed) /
                              static_cast<double>(commit_units)
                        : 0.0;
  }
};

struct JournalConfig {
  bool group_commit = true;       ///< false: one unit + fsync per txn
  std::uint32_t leader_wait_us = 0; ///< leader lingers for stragglers
};

class GroupCommitJournal {
 public:
  /// The journal owns bytes [region_off, region_off + region_bytes) of
  /// `img`. Offsets are absolute image bytes, 8-aligned.
  GroupCommitJournal(BackingImage& img, std::uint64_t region_off,
                     std::uint64_t region_bytes,
                     JournalConfig cfg = JournalConfig{});

  GroupCommitJournal(const GroupCommitJournal&) = delete;
  GroupCommitJournal& operator=(const GroupCommitJournal&) = delete;

  /// Commit a closed transaction; blocks until its records are durable
  /// (or the whole batch failed). Returns the commit unit's seq.
  /// kENOSPC: the transaction cannot fit in the remaining region -- the
  /// caller must checkpoint (reset_tail) and retry.
  [[nodiscard]] Result<std::uint64_t> commit(JTxn&& txn);

  /// Bytes consumed in the region (next unit starts here).
  [[nodiscard]] std::uint64_t tail_bytes() const;
  [[nodiscard]] std::uint64_t region_bytes() const { return region_bytes_; }
  /// Serialized size of `txn` including the unit header.
  [[nodiscard]] static std::uint64_t unit_bytes(const JTxn& txn);

  /// Checkpoint epilogue: the region is reclaimed; unit seqs keep
  /// increasing monotonically across the reset.
  void reset_tail();

  /// Last unit seq made durable by this journal instance.
  [[nodiscard]] std::uint64_t durable_seq() const;

  [[nodiscard]] JournalStats stats() const;

  // --- recovery --------------------------------------------------------------
  struct ScanReport {
    std::uint64_t units_applied = 0;
    std::uint64_t units_discarded = 0;  ///< trailing invalid/torn unit found
    std::uint64_t records_applied = 0;
    std::uint64_t last_seq = 0;  ///< seq of last applied unit
    bool torn = false;           ///< a unit failed validation
  };

  /// Scan the region from the start, applying every record of every valid
  /// unit with unit_seq > min_seq (in order) through `apply`. Validation:
  /// magic, header checksum, strictly increasing unit_seq, payload bounds
  /// + checksum, per-record checksums. The first invalid unit ends the
  /// log. Also positions the tail after the last valid unit so an opened
  /// journal appends where the survivor log ended.
  ScanReport scan(std::uint64_t min_seq,
                  const std::function<void(const JRecord&, std::uint64_t)>&
                      apply);

 private:
  /// Per-transaction completion slot, shared between the enqueuing
  /// committer and whichever thread leads its batch.
  struct TxnResult {
    bool done = false;
    Errno err = Errno::kOk;
    std::uint64_t seq = 0;
  };
  struct PendingTxn {
    std::vector<JRecord> records;
    std::shared_ptr<TxnResult> res;
  };

  /// Serialize and persist one batch as unit `seq` at region offset
  /// `tail`; returns the unit seq. Called WITHOUT mu_ held; single-
  /// flighted by flushing_ (mutex handoff orders successive leaders).
  Result<std::uint64_t> write_unit(std::vector<PendingTxn>& batch,
                                   std::uint64_t tail, std::uint64_t seq);

  BackingImage& img_;
  const std::uint64_t region_off_;
  const std::uint64_t region_bytes_;
  JournalConfig cfg_;

  mutable std::mutex mu_;
  /// Follower waits for leader completion. Uninterruptible (D-state):
  /// a committed txn may already be on the medium, so the wait ends only
  /// when a leader marks it done -- never on a kill or a timer. Wakers
  /// hold mu_, waiters take their token under mu_ (the standard
  /// sched::WaitQueue handshake), so wakeups are lossless.
  sched::WaitQueue wq_;
  std::vector<PendingTxn> pending_;
  bool flushing_ = false;
  std::uint64_t tail_ = 0;        ///< bytes used in region
  std::uint64_t unit_seq_ = 0;    ///< last assigned unit seq
  std::uint64_t rec_seq_ = 0;     ///< records ever serialized
  JournalStats stats_;
};

}  // namespace usk::store
