#include "store/journal.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "fault/kfail.hpp"
#include "trace/tracepoint.hpp"

namespace usk::store {

namespace {

constexpr std::uint64_t kUnitMagic = 0x55534b4a524e4c31ull;  // "USKJRNL1"

// Word-at-a-time FNV-1a variant: the classic byte loop is a serial
// 64-bit-multiply chain (~4 cycles/byte), and commit checksums the unit
// payload twice (per record + whole unit) -- at PostMark rates the byte
// loop alone costs more than the fsyncs. Folding 8 bytes per multiply
// keeps every input bit feeding the product (XOR then odd-prime multiply
// is bijective per step, so any flipped or zeroed tail changes the sum)
// at an eighth of the chain length.
std::uint64_t fnv1a_mix(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  constexpr std::uint64_t kPrime = 1099511628211ull;
  while (len >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ w) * kPrime;
    p += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}
constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

constexpr std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~7ull; }

// On-media layout. Both structs are written/read via memcpy so the
// static_asserts pin the format.
struct CommitHeader {
  std::uint64_t magic;
  std::uint64_t unit_seq;
  std::uint64_t first_rec_seq;
  std::uint32_t n_records;
  std::uint32_t n_txns;
  std::uint64_t payload_bytes;
  std::uint64_t payload_checksum;
  std::uint64_t header_checksum;
};
static_assert(sizeof(CommitHeader) == 56, "on-media commit header format");

struct RecHeader {
  std::uint64_t checksum;
  std::uint32_t target;
  std::uint32_t len;
  std::uint32_t kind;
  std::uint32_t pad;
};
static_assert(sizeof(RecHeader) == 24, "on-media record header format");

std::uint64_t record_checksum(const JRecord& r) {
  std::uint64_t h = kFnvBasis;
  std::uint32_t target = r.target;
  std::uint32_t len = static_cast<std::uint32_t>(r.payload.size());
  std::uint32_t kind = r.kind;
  h = fnv1a_mix(h, &target, sizeof(target));
  h = fnv1a_mix(h, &len, sizeof(len));
  h = fnv1a_mix(h, &kind, sizeof(kind));
  h = fnv1a_mix(h, r.payload.data(), r.payload.size());
  return h;
}

std::uint64_t header_checksum(const CommitHeader& h) {
  return fnv1a_mix(kFnvBasis, &h,
                   sizeof(CommitHeader) - sizeof(std::uint64_t));
}

std::uint64_t serialized_record_bytes(const JRecord& r) {
  return sizeof(RecHeader) + align8(r.payload.size());
}

}  // namespace

GroupCommitJournal::GroupCommitJournal(BackingImage& img,
                                       std::uint64_t region_off,
                                       std::uint64_t region_bytes,
                                       JournalConfig cfg)
    : img_(img), region_off_(region_off), region_bytes_(region_bytes),
      cfg_(cfg) {}

std::uint64_t GroupCommitJournal::unit_bytes(const JTxn& txn) {
  std::uint64_t n = sizeof(CommitHeader);
  for (const JRecord& r : txn.records) n += serialized_record_bytes(r);
  return n;
}

Result<std::uint64_t> GroupCommitJournal::commit(JTxn&& txn) {
  if (txn.empty()) {
    std::lock_guard lk(mu_);
    return unit_seq_;
  }
  auto res = std::make_shared<TxnResult>();
  std::unique_lock lk(mu_);
  pending_.push_back(PendingTxn{std::move(txn.records), res});
  while (!res->done) {
    if (!flushing_ && !pending_.empty()) {
      // This thread becomes the leader for the next commit unit.
      flushing_ = true;
      if (cfg_.group_commit && cfg_.leader_wait_us > 0) {
        // Linger briefly so stragglers can join the batch; the queue is
        // re-read after the wait.
        lk.unlock();
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg_.leader_wait_us));
        lk.lock();
      }
      std::vector<PendingTxn> batch;
      if (cfg_.group_commit) {
        batch.swap(pending_);
      } else {
        batch.push_back(std::move(pending_.front()));
        pending_.erase(pending_.begin());
      }
      std::uint64_t need = sizeof(CommitHeader);
      std::uint64_t recs = 0;
      for (const PendingTxn& t : batch) {
        for (const JRecord& r : t.records) {
          need += serialized_record_bytes(r);
          ++recs;
        }
      }
      if (tail_ + need > region_bytes_) {
        // Out of journal space: fail the whole batch with ENOSPC; the
        // store checkpoints (reclaiming the region) and retries.
        for (PendingTxn& t : batch) {
          t.res->err = Errno::kENOSPC;
          t.res->done = true;
        }
        flushing_ = false;
        wq_.wake_all();
        continue;
      }
      const std::uint64_t seq = ++unit_seq_;
      const std::uint64_t tail = tail_;
      lk.unlock();
      Result<std::uint64_t> wr = write_unit(batch, tail, seq);
      lk.lock();
      if (wr) {
        tail_ = tail + need;
        stats_.txns_committed += batch.size();
        stats_.commit_units += 1;
        stats_.records_written += recs;
        stats_.bytes_written += need;
        if (batch.size() > stats_.max_batch_txns) {
          stats_.max_batch_txns = batch.size();
        }
        for (PendingTxn& t : batch) {
          t.res->seq = seq;
          t.res->done = true;
        }
      } else {
        // The unit never became durable (write or fsync failed): every
        // transaction in the batch observes the error. The seq is burned
        // -- recovery only requires monotonicity, not density -- and the
        // tail stays put, so a later unit overwrites the failed bytes.
        for (PendingTxn& t : batch) {
          t.res->err = wr.error();
          t.res->done = true;
        }
      }
      flushing_ = false;
      wq_.wake_all();
    } else {
      // Follower wait for the in-flight leader. The token is taken and
      // the conditions re-checked under mu_ -- the same lock every waker
      // (batch done, ENOSPC fail, leadership handoff) mutates them
      // under -- so the park cannot miss a wake. No task is passed:
      // this is the one uninterruptible wait (see journal.hpp).
      sched::WaitQueue::Token tok = wq_.prepare();
      if (res->done || (!flushing_ && !pending_.empty())) continue;
      lk.unlock();
      wq_.wait(tok, nullptr);
      lk.lock();
    }
  }
  if (res->err != Errno::kOk) return res->err;
  return res->seq;
}

Result<std::uint64_t> GroupCommitJournal::write_unit(
    std::vector<PendingTxn>& batch, std::uint64_t tail, std::uint64_t seq) {
  // Serialize the whole unit: header placeholder, then every record of
  // every transaction in arrival order.
  std::uint64_t payload_bytes = 0;
  std::uint32_t n_records = 0;
  for (const PendingTxn& t : batch) {
    for (const JRecord& r : t.records) {
      payload_bytes += serialized_record_bytes(r);
      ++n_records;
    }
  }
  std::vector<std::uint8_t> buf(sizeof(CommitHeader) + payload_bytes, 0);
  std::uint64_t off = sizeof(CommitHeader);
  std::uint64_t first_rec_seq = rec_seq_ + 1;
  for (const PendingTxn& t : batch) {
    for (const JRecord& r : t.records) {
      RecHeader rh{};
      rh.checksum = record_checksum(r);
      rh.target = r.target;
      rh.len = static_cast<std::uint32_t>(r.payload.size());
      rh.kind = r.kind;
      std::memcpy(buf.data() + off, &rh, sizeof(rh));
      std::memcpy(buf.data() + off + sizeof(rh), r.payload.data(),
                  r.payload.size());
      off += serialized_record_bytes(r);
      ++rec_seq_;
    }
  }
  CommitHeader h{};
  h.magic = kUnitMagic;
  h.unit_seq = seq;
  h.first_rec_seq = first_rec_seq;
  h.n_records = n_records;
  h.n_txns = static_cast<std::uint32_t>(batch.size());
  h.payload_bytes = payload_bytes;
  h.payload_checksum =
      fnv1a_mix(kFnvBasis, buf.data() + sizeof(CommitHeader), payload_bytes);
  h.header_checksum = header_checksum(h);
  std::memcpy(buf.data(), &h, sizeof(h));

  const std::uint64_t base = region_off_ + tail;
  // Records first. The header is the unit's validity bit: until it is on
  // the medium, the records are garbage to recovery.
  USK_TRY(img_.write_bytes(base + sizeof(CommitHeader),
                           buf.data() + sizeof(CommitHeader), payload_bytes));
  if (auto f = USK_FAIL_POINT(fault::Site::kStoreTornHeader);
      f.fail || f.transient) {
    // Torn commit header: only the first half reaches the medium. Like
    // disk.torn this is SILENT -- the commit appears to succeed and the
    // damage only shows at recovery, where the unit (and everything
    // after it) is discarded: committed-prefix semantics.
    ++stats_.torn_headers;
    USK_TRY(img_.write_bytes(base, buf.data(), sizeof(CommitHeader) / 2));
    if (f.fail) {
      USK_TRY(img_.flush());
      USK_TRACEPOINT("store", "torn_commit_header", h.unit_seq, tail);
      return h.unit_seq;
    }
    // Transient: the retry rewrites the full header below.
  }
  USK_TRY(img_.write_bytes(base, buf.data(), sizeof(CommitHeader)));
  // The single ordered flush the whole batch shares.
  USK_TRY(img_.flush());
  USK_TRACEPOINT("store", "commit_unit", h.unit_seq, n_records);
  return h.unit_seq;
}

std::uint64_t GroupCommitJournal::tail_bytes() const {
  std::lock_guard lk(mu_);
  return tail_;
}

void GroupCommitJournal::reset_tail() {
  std::lock_guard lk(mu_);
  tail_ = 0;
  ++stats_.resets;
}

std::uint64_t GroupCommitJournal::durable_seq() const {
  std::lock_guard lk(mu_);
  return unit_seq_;
}

JournalStats GroupCommitJournal::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

GroupCommitJournal::ScanReport GroupCommitJournal::scan(
    std::uint64_t min_seq,
    const std::function<void(const JRecord&, std::uint64_t)>& apply) {
  std::lock_guard lk(mu_);
  ScanReport rep;
  std::uint64_t off = 0;
  std::uint64_t prev_seq = min_seq;
  while (off + sizeof(CommitHeader) <= region_bytes_) {
    CommitHeader h{};
    if (!img_.read_bytes(region_off_ + off, &h, sizeof(h))) break;
    if (h.magic != kUnitMagic || h.header_checksum != header_checksum(h)) {
      // Zeroed tail (clean end of log) vs torn header: either way the
      // usable log ends here. Count a discard only if the bytes are not
      // all-zero, i.e. something was started and lost.
      if (h.magic != 0 || h.unit_seq != 0 || h.header_checksum != 0) {
        rep.torn = true;
        rep.units_discarded += 1;
      }
      break;
    }
    if (h.unit_seq <= prev_seq) break;  // stale unit from a prior epoch
    if (off + sizeof(CommitHeader) + h.payload_bytes > region_bytes_) {
      rep.torn = true;
      rep.units_discarded += 1;
      break;
    }
    std::vector<std::uint8_t> payload(h.payload_bytes);
    if (!img_.read_bytes(region_off_ + off + sizeof(CommitHeader),
                         payload.data(), payload.size())) {
      break;
    }
    if (fnv1a_mix(kFnvBasis, payload.data(), payload.size()) !=
        h.payload_checksum) {
      rep.torn = true;
      rep.units_discarded += 1;
      break;
    }
    // Parse + verify every record BEFORE applying any (no partial units).
    std::vector<JRecord> recs;
    recs.reserve(h.n_records);
    std::uint64_t p = 0;
    bool ok = true;
    for (std::uint32_t i = 0; i < h.n_records; ++i) {
      if (p + sizeof(RecHeader) > payload.size()) { ok = false; break; }
      RecHeader rh{};
      std::memcpy(&rh, payload.data() + p, sizeof(rh));
      if (p + sizeof(RecHeader) + align8(rh.len) > payload.size()) {
        ok = false;
        break;
      }
      JRecord r;
      r.kind = static_cast<std::uint8_t>(rh.kind);
      r.target = rh.target;
      r.payload.assign(payload.data() + p + sizeof(RecHeader),
                       payload.data() + p + sizeof(RecHeader) + rh.len);
      if (record_checksum(r) != rh.checksum) { ok = false; break; }
      recs.push_back(std::move(r));
      p += sizeof(RecHeader) + align8(rh.len);
    }
    if (!ok) {
      rep.torn = true;
      rep.units_discarded += 1;
      break;
    }
    for (const JRecord& r : recs) {
      apply(r, h.unit_seq);
      ++rep.records_applied;
    }
    rep.units_applied += 1;
    rep.last_seq = h.unit_seq;
    prev_seq = h.unit_seq;
    off += sizeof(CommitHeader) + h.payload_bytes;
  }
  // Future commits append after the survivor log and keep seqs monotonic.
  tail_ = off;
  if (rep.last_seq > unit_seq_) unit_seq_ = rep.last_seq;
  return rep;
}

}  // namespace usk::store
