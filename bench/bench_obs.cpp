// O1: kspan/kmetrics overhead -- the request-tracing tax.
//
// Observability that perturbs the request path is worse than none: the
// numbers it reports stop describing the system users run. Two
// acceptance claims pin the tax:
//
//  1. DISABLED spans are free (<= 1% of a null syscall). A disabled
//     SpanScope site is one relaxed atomic load and a predicted branch
//     (the object never joins the thread-local stack, the epilogue
//     check is one thread-local load). This bench measures a full
//     construct+destruct of a disabled site and reports it as a
//     fraction of the measured null syscall.
//
//  2. ENABLED spans cost <= 5% webserver throughput. The N1 workload
//     runs A/B (spans off / spans on): every request allocates its
//     ingress span, the consolidated servercalls open children, every
//     retiring syscall Scope attributes crossings and bytes, and each
//     finished span takes the store mutex once.
//
// JSON acceptance metrics (checked by run_tier1.sh obs). Both are
// recorded as PERCENT: the JSON writer emits one decimal place, which
// would flatten a raw 0.002 fraction to 0.0 and make the gate vacuous.
//   span-disabled-overhead-pct      <= 1.0   (site cost / null syscall)
//   span-enabled-webserver-slowdown-pct <= 105  (100 * off_rps / on_rps)
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.hpp"
#include "net/net.hpp"
#include "trace/span.hpp"
#include "uk/userlib.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace usk;

constexpr int kNullCalls = 200000;
constexpr int kSpanLoops = 2000000;

double null_syscall_ns(uk::Proc& proc, int calls) {
  double s = bench::time_best(3, [&] {
    for (int i = 0; i < calls; ++i) proc.getpid();
  });
  return s * 1e9 / calls;
}

/// One N1 webserver run on a fresh kernel with spans on or off.
workload::WebServerReport run_ws(bool spans_on, bool quick) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  net::Net net(kernel);

  workload::WebServerConfig cfg;
  cfg.mode = workload::ServeMode::kConsolidated;
  cfg.workers = 2;
  cfg.conns_per_worker = quick ? 8 : 16;
  cfg.requests_per_conn = 8;
  cfg.file_bytes = 16384;  // the N1 document size
  cfg.files = 4;

  uk::Proc setup(kernel, "setup");
  workload::populate_www(setup, cfg);

  if (spans_on) {
    trace::kspan().enable();
  } else {
    trace::kspan().disable();
  }
  trace::kspan().reset();
  workload::WebServerReport rep = workload::run_webserver(kernel, net, cfg);
  trace::kspan().disable();
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_title("O1", "kspan overhead: disabled span-site cost and "
                           "span-enabled webserver throughput");
  bench::JsonWriter json("bench_obs");

  fs::MemFs rootfs;
  uk::Kernel kernel(rootfs);
  rootfs.set_cost_hook(kernel.charge_hook());
  uk::Proc proc(kernel, "obs-bench");

  // --- 1. disabled span site vs the null syscall ---------------------------
  trace::kspan().disable();
  const double null_ns = null_syscall_ns(proc, kNullCalls);
  double span_s = bench::time_best(3, [] {
    for (int i = 0; i < kSpanLoops; ++i) {
      trace::SpanScope s("bench.site", trace::SpanVehicle::kNone);
    }
  });
  const double span_ns = span_s * 1e9 / kSpanLoops;
  const double fraction = span_ns / null_ns;

  std::printf("%-34s %12.1f ns\n", "null syscall (spans off)", null_ns);
  std::printf("%-34s %12.3f ns\n", "disabled SpanScope site", span_ns);
  std::printf("%-34s %12.4f      %s (budget 0.01)\n",
              "disabled overhead fraction", fraction,
              fraction <= 0.01 ? "PASS" : "FAIL");
  json.record("null_syscall_spans_off", 1, 1e9 / null_ns,
              null_ns * kNullCalls / 1e9);
  json.record("span-disabled-overhead-pct", 1, fraction * 100.0, span_s);

  // --- 2. N1 webserver A/B: spans off vs spans on --------------------------
  // Best-of-3 each side: the workload is thread-scheduled, so single
  // runs are noisy in exactly the range the 5% budget polices.
  workload::WebServerReport off = run_ws(false, quick);
  workload::WebServerReport on = run_ws(true, quick);
  for (int i = 0; i < 2; ++i) {
    workload::WebServerReport o = run_ws(false, quick);
    if (o.req_per_sec > off.req_per_sec) off = o;
    workload::WebServerReport n = run_ws(true, quick);
    if (n.req_per_sec > on.req_per_sec) on = n;
  }
  const double slowdown =
      on.req_per_sec > 0 ? off.req_per_sec / on.req_per_sec : 0.0;

  std::printf("\n%-14s %8s %10s %12s %14s\n", "config", "reqs", "req/s",
              "cross/req", "copied B/req");
  std::printf("%-14s %8" PRIu64 " %10.0f %12.2f %14.0f\n", "spans-off",
              off.requests, off.req_per_sec, off.crossings_per_req(),
              off.user_bytes_per_req());
  std::printf("%-14s %8" PRIu64 " %10.0f %12.2f %14.0f\n", "spans-on",
              on.requests, on.req_per_sec, on.crossings_per_req(),
              on.user_bytes_per_req());
  std::printf("%-34s %12.3f x    %s (budget 1.05)\n",
              "span-enabled slowdown", slowdown,
              slowdown <= 1.05 ? "PASS" : "FAIL");
  const bool complete = off.requests == on.requests && on.requests > 0;
  std::printf("%-34s %12s\n", "both runs served every request",
              complete ? "PASS" : "FAIL");
  json.record("webserver_spans_off", 2, off.req_per_sec, off.elapsed_s);
  json.record("webserver_spans_on", 2, on.req_per_sec, on.elapsed_s);
  json.record("span-enabled-webserver-slowdown-pct", 2, slowdown * 100.0,
              on.elapsed_s);

  bench::print_note("disabled fraction = full construct+destruct of a "
                    "disabled SpanScope vs the null syscall; slowdown = "
                    "best-of-3 req/s ratio on the N1 webserver");
  return (fraction <= 0.01 && slowdown <= 1.05 && complete) ? 0 : 1;
}
