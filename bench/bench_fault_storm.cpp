// R1: web-server degradation under a fault storm (kfail).
//
// The N1 web server (epoll, consolidated accept_recv + sendfile) is run
// while kfail injects transient faults -- ENOMEM at kmalloc, EIO-class
// retries at the disk behind the filesystem, dropped packets at the
// network -- at rates rising 0 -> 5%. Transient injections charge the
// real recovery cost of each path (allocator direct-reclaim, a disk
// rotation, a retransmit), so throughput degrades the way a machine with
// a flaky disk and a lossy NIC degrades, without a single request
// failing. The injection schedule is seeded: every row reproduces.
//
// A second table measures the fault points themselves: small-write
// throughput with all sites disarmed (one relaxed load per site) vs
// armed at p=0 (full decision path, zero injections). The disarmed
// column is the overhead every user pays for having kfail compiled in;
// the acceptance bound is <= 0.5% against the armed-p0 spread.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "blockdev/buffer_cache.hpp"
#include "blockdev/disk.hpp"
#include "fault/kfail.hpp"
#include "net/net.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace usk;

struct StormPoint {
  double rate;
  workload::WebServerReport rep;
  std::uint64_t transients;  ///< injections absorbed during the run
};

std::uint64_t total_transients() {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < fault::kNumSites; ++i) {
    sum += fault::kfail().stats(static_cast<fault::Site>(i)).transients;
  }
  return sum;
}

StormPoint run_storm(double rate, std::size_t workers, bool quick) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  // Put a real (simulated) disk behind the document tree so the disk
  // fault sites sit on the serving path, like the paper's server reading
  // cold files.
  blockdev::Disk disk(1 << 20);
  // Route disk charges through the kernel hook so they land on the serving
  // task: wall-clock is host-noisy, but units/req is deterministic.
  disk.set_charge_hook([charge = kernel.charge_hook()](std::uint64_t u) {
    charge(u / 8);  // disk units are cheaper than CPU units
  });
  blockdev::BufferCache cache(disk, 256);
  memfs.set_io_model(&cache);
  net::Net net(kernel);

  workload::WebServerConfig cfg;
  cfg.mode = workload::ServeMode::kConsolidated;
  cfg.workers = workers;
  cfg.conns_per_worker = quick ? 4 : 32;
  cfg.requests_per_conn = quick ? 8 : 16;
  cfg.file_bytes = 16384;
  cfg.files = 4;

  uk::Proc setup(kernel, "setup");
  workload::populate_www(setup, cfg);

  char spec[256];
  if (rate > 0.0) {
    std::snprintf(spec, sizeof spec,
                  "seed=11,kmalloc:p=%g:transient,disk.read:p=%g:transient,"
                  "disk.write:p=%g:transient,disk.latency:p=%g:transient,"
                  "net.send:p=%g:transient,net.recv:p=%g:transient",
                  rate, rate, rate, rate / 2, rate / 2, rate / 2);
  } else {
    std::snprintf(spec, sizeof spec, "off");
  }
  if (!fault::kfail().apply_spec(spec).ok()) {
    std::fprintf(stderr, "bad spec: %s\n", spec);
    std::exit(1);
  }
  fault::kfail().reset_stats();

  StormPoint pt;
  pt.rate = rate;
  pt.rep = workload::run_webserver(kernel, net, cfg);
  pt.transients = total_transients();
  (void)fault::kfail().apply_spec("off");
  return pt;
}

/// Direct cost of one disarmed fault point (the per-site relaxed load),
/// measured the same way T1 measures a disabled tracepoint: a tight loop
/// of checks, reported as ns/check. This is the only cost a kernel with
/// kfail compiled in but disarmed ever pays.
double disarmed_check_ns() {
  (void)fault::kfail().apply_spec("off");
  const int kChecks = 50'000'000;
  static volatile std::uint64_t sink;  // keeps the checks from folding away
  double secs = bench::time_best(3, [&] {
    std::uint64_t fails = 0;
    for (int i = 0; i < kChecks; ++i) {
      auto f = USK_FAIL_POINT(fault::Site::kCopyIn);
      fails += f.fail;
    }
    sink = fails;
  });
  (void)sink;
  return secs / kChecks * 1e9;
}

/// Small-write throughput with the given spec armed; the fault points on
/// this path are copy_in (per write) and kmalloc (page-cache behaviour of
/// MemFs is in-memory, so the copy dominates).
double write_ops_per_sec(const char* spec) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  uk::Proc proc(kernel, "writer");
  if (!fault::kfail().apply_spec(spec).ok()) std::exit(1);

  int fd = proc.open("/w", fs::kOWrOnly | fs::kOCreat);
  char buf[64] = {};
  const int kOps = 200000;
  double secs = bench::time_best(3, [&] {
    for (int i = 0; i < kOps; ++i) {
      (void)proc.write(fd, buf, sizeof buf);
      (void)proc.lseek(fd, 0, fs::kSeekSet);
    }
  });
  proc.close(fd);
  (void)fault::kfail().apply_spec("off");
  return static_cast<double>(kOps) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_title("R1", "web server under a seeded fault storm "
                           "(kfail transient injection, 0 -> 5%)");
  bench::print_note("consolidated mode, 16 KiB docs, disk-backed memfs; "
                    "transient = recovery cost charged, request still "
                    "served. seed=11: rows reproduce exactly.");

  bench::JsonWriter json("bench_fault_storm");
  const std::size_t workers = quick ? 2 : 4;
  const double rates[] = {0.0, 0.005, 0.01, 0.02, 0.05};

  std::printf("\n%-10s %8s %10s %10s %9s %11s %9s\n", "config", "reqs",
              "req/s", "injected", "inj/req", "k-units/req", "vs clean");
  double clean_rps = 0.0;
  const int reps = quick ? 1 : 3;
  for (double rate : rates) {
    // The injection schedule is seeded, so every repeat absorbs the same
    // faults; best-of-N only strips host-scheduler noise from the timing.
    StormPoint pt = run_storm(rate, workers, quick);
    for (int r = 1; r < reps; ++r) {
      StormPoint again = run_storm(rate, workers, quick);
      if (again.rep.req_per_sec > pt.rep.req_per_sec) pt = again;
    }
    if (rate == 0.0) clean_rps = pt.rep.req_per_sec;
    double ratio =
        clean_rps > 0 ? pt.rep.req_per_sec / clean_rps * 100.0 : 100.0;
    char cfgname[32];
    std::snprintf(cfgname, sizeof cfgname, "storm-p%.3f", rate);
    double per_req = pt.rep.requests
                         ? static_cast<double>(pt.transients) /
                               static_cast<double>(pt.rep.requests)
                         : 0.0;
    double units_per_req =
        pt.rep.requests ? static_cast<double>(pt.rep.server_kernel_units) /
                              static_cast<double>(pt.rep.requests)
                        : 0.0;
    std::printf("%-10s %8" PRIu64 " %10.0f %10" PRIu64 " %9.3f %11.0f %8.1f%%\n",
                cfgname, pt.rep.requests, pt.rep.req_per_sec, pt.transients,
                per_req, units_per_req, ratio);
    json.record(cfgname, static_cast<int>(workers), pt.rep.req_per_sec,
                pt.rep.elapsed_s);
  }

  // The acceptance bound: a disarmed site must cost <= 0.5% of a null
  // syscall. Measured directly, like T1's disabled-tracepoint check.
  double ns = disarmed_check_ns();
  const double null_syscall_ns = 1668.0;  // measured by bench_trace_overhead
  std::printf("\ndisarmed fault point: %.3f ns/check (%.3f%% of a %.0f ns "
              "null syscall; budget 0.5%%)\n",
              ns, ns / null_syscall_ns * 100.0, null_syscall_ns);
  json.record("disarmed-check", 1, 1e9 / ns, 0.0);

  std::printf("\nfault-point cost on the write path (64 B writes):\n");
  std::printf("%-18s %14s\n", "config", "writes/s");
  double disarmed = write_ops_per_sec("off");
  double armed_p0 =
      write_ops_per_sec("copy_in:p=0,kmalloc:p=0,disk.write:p=0");
  std::printf("%-18s %14.0f\n", "disarmed", disarmed);
  std::printf("%-18s %14.0f\n", "armed-p0", armed_p0);
  std::printf("  armed-p0 overhead vs disarmed: %.2f%% (disarmed cost is "
              "one relaxed load/site)\n",
              disarmed > 0 ? (disarmed - armed_p0) / disarmed * 100.0 : 0.0);
  json.record("write-disarmed", 1, disarmed, 0.0);
  json.record("write-armed-p0", 1, armed_p0, 0.0);

  return 0;
}
