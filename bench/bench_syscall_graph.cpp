// E8 (paper §2.2, design): system-call pattern mining.
//
// "Once the system call activity was logged, we used a script to create a
// system call graph and searched for patterns. ... We found several
// promising system call patterns, including open-read-close,
// open-write-close, open-fstat, and readdir-stat."
//
// Mines the weighted syscall digraph and n-grams from synthetic traces of
// the workload classes the paper captured (interactive desktop, web
// server, mail server, /bin/ls), and reports the top candidates -- which
// rediscover exactly the paper's sequences.
#include <cinttypes>

#include "bench/common.hpp"
#include "consolidation/graph.hpp"
#include "workload/tracegen.hpp"

int main() {
  using namespace usk;
  bench::print_title("E8", "syscall graph mining (paper candidates: "
                           "open-read-close, open-write-close, open-fstat, "
                           "readdir-stat)");

  struct Src {
    const char* name;
    workload::TraceKind kind;
  };
  const Src sources[] = {
      {"interactive desktop", workload::TraceKind::kInteractive},
      {"web server", workload::TraceKind::kWebServer},
      {"mail server", workload::TraceKind::kMailServer},
      {"/bin/ls -l", workload::TraceKind::kLs},
      {"socket server (epoll)", workload::TraceKind::kSocketServer},
  };

  for (const Src& src : sources) {
    auto trace = workload::synth_trace(src.kind, 200000, 2005);
    consolidation::SyscallGraph graph;
    graph.add_trace(trace);

    std::printf("\n--- %s (%zu calls) ---\n", src.name, trace.size());
    std::printf("  top edges:\n");
    for (const auto& e : graph.top_edges(5)) {
      std::printf("    %-10s -> %-12s weight %" PRIu64 "\n",
                  uk::sys_name(e.from), uk::sys_name(e.to), e.weight);
    }
    std::printf("  heavy paths (len<=4, bottleneck weight):\n");
    for (const auto& p : graph.heavy_paths(4, trace.size() / 100, 4)) {
      std::printf("    %-40s weight %" PRIu64 "\n", p.to_string().c_str(),
                  p.weight);
    }
    std::printf("  top trigrams:\n");
    for (const auto& g : consolidation::mine_ngrams(trace, 3, 4)) {
      std::printf("    %-40s count  %" PRIu64 "\n", g.to_string().c_str(),
                  g.count);
    }

    // What-if for the server heavy path: replay the trace as audit
    // records with the modelled per-call byte counts (64-byte requests,
    // 8 KiB documents) and fold accept->recv into accept_recv and
    // open-read-send-close into sendfile.
    if (src.kind == workload::TraceKind::kSocketServer) {
      std::vector<uk::AuditRecord> records;
      records.reserve(trace.size());
      for (uk::Sys s : trace) {
        uk::AuditRecord r;
        r.pid = 1;
        r.nr = s;
        switch (s) {
          case uk::Sys::kRecv: r.bytes_out = 64; break;
          case uk::Sys::kSend: r.bytes_in = 8192; break;
          case uk::Sys::kRead: r.bytes_out = 8192; break;
          case uk::Sys::kWrite: r.bytes_in = 200; break;
          case uk::Sys::kOpen: r.bytes_in = 10; break;  // the path
          case uk::Sys::kStat: r.bytes_in = 10; r.bytes_out = 96; break;
          default: break;
        }
        records.push_back(r);
      }
      auto s2 = consolidation::server_consolidation_whatif(records);
      std::printf("  accept_recv + sendfile what-if:\n");
      std::printf("    calls  %" PRIu64 " -> %" PRIu64 "  (%.1f%% fewer)\n",
                  s2.calls_before, s2.calls_after,
                  100.0 * (1.0 - static_cast<double>(s2.calls_after) /
                                     static_cast<double>(s2.calls_before)));
      std::printf("    bytes  %.1f MB -> %.1f MB  (%.1f%% fewer)\n",
                  static_cast<double>(s2.bytes_before) / 1e6,
                  static_cast<double>(s2.bytes_after) / 1e6,
                  100.0 * (1.0 - static_cast<double>(s2.bytes_after) /
                                     static_cast<double>(s2.bytes_before)));
    }
  }
  return 0;
}
