// E8 (paper §2.2, design): system-call pattern mining.
//
// "Once the system call activity was logged, we used a script to create a
// system call graph and searched for patterns. ... We found several
// promising system call patterns, including open-read-close,
// open-write-close, open-fstat, and readdir-stat."
//
// Mines the weighted syscall digraph and n-grams from synthetic traces of
// the workload classes the paper captured (interactive desktop, web
// server, mail server, /bin/ls), and reports the top candidates -- which
// rediscover exactly the paper's sequences.
#include <cinttypes>

#include "bench/common.hpp"
#include "consolidation/graph.hpp"
#include "workload/tracegen.hpp"

int main() {
  using namespace usk;
  bench::print_title("E8", "syscall graph mining (paper candidates: "
                           "open-read-close, open-write-close, open-fstat, "
                           "readdir-stat)");

  struct Src {
    const char* name;
    workload::TraceKind kind;
  };
  const Src sources[] = {
      {"interactive desktop", workload::TraceKind::kInteractive},
      {"web server", workload::TraceKind::kWebServer},
      {"mail server", workload::TraceKind::kMailServer},
      {"/bin/ls -l", workload::TraceKind::kLs},
  };

  for (const Src& src : sources) {
    auto trace = workload::synth_trace(src.kind, 200000, 2005);
    consolidation::SyscallGraph graph;
    graph.add_trace(trace);

    std::printf("\n--- %s (%zu calls) ---\n", src.name, trace.size());
    std::printf("  top edges:\n");
    for (const auto& e : graph.top_edges(5)) {
      std::printf("    %-10s -> %-12s weight %" PRIu64 "\n",
                  uk::sys_name(e.from), uk::sys_name(e.to), e.weight);
    }
    std::printf("  heavy paths (len<=4, bottleneck weight):\n");
    for (const auto& p : graph.heavy_paths(4, trace.size() / 100, 4)) {
      std::printf("    %-40s weight %" PRIu64 "\n", p.to_string().c_str(),
                  p.weight);
    }
    std::printf("  top trigrams:\n");
    for (const auto& g : consolidation::mine_ngrams(trace, 3, 4)) {
      std::printf("    %-40s count  %" PRIu64 "\n", g.to_string().c_str(),
                  g.count);
    }
  }
  return 0;
}
