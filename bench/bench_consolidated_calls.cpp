// E9 (paper §2.2): consolidated system calls vs. their classic sequences.
//
// "We found several promising system call patterns, including
// open-read-close, open-write-close, open-fstat ... The main savings for
// the first three combinations would be the reduced number of context
// switches." The paper's conclusion headlines up to 63% improvement for
// consolidated sequences.
//
// For each pattern: classic = the 3-call sequence; consolidated = the new
// single system call. Rows report crossings, kernel work units, and wall
// time over N repetitions.
#include <cinttypes>
#include <functional>

#include "bench/common.hpp"
#include "consolidation/newcalls.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

constexpr int kReps = 2000;

struct Fixture {
  Fixture() : kernel(fs), proc(kernel, "e9") {
    fs.set_cost_hook(kernel.charge_hook());
    int fd = proc.open("/target", fs::kOWrOnly | fs::kOCreat);
    std::vector<char> data(2048, 't');
    proc.write(fd, data.data(), data.size());
    proc.close(fd);
  }
  fs::MemFs fs;
  uk::Kernel kernel;
  uk::Proc proc;
};

struct Measure {
  std::uint64_t crossings;
  std::uint64_t units;
  double wall;
};

Measure measure(Fixture& f, const std::function<void()>& fn) {
  Measure m;
  std::uint64_t c0 = f.kernel.boundary().stats().crossings;
  std::uint64_t k0 = f.proc.task().times().kernel;
  m.wall = bench::time_once(fn);
  m.crossings = f.kernel.boundary().stats().crossings - c0;
  m.units = f.proc.task().times().kernel - k0;
  return m;
}

bench::JsonWriter& json() {
  static bench::JsonWriter w("bench_consolidated_calls");
  return w;
}

void report(const char* name, Fixture& f, const std::function<void()>& classic,
            const std::function<void()>& consolidated) {
  Measure c = measure(f, classic);
  Measure n = measure(f, consolidated);
  json().record(std::string("classic/") + name, 1, kReps / c.wall, c.wall);
  json().record(std::string("consolidated/") + name, 1, kReps / n.wall,
                n.wall);
  std::printf("%-18s %9" PRIu64 " %9" PRIu64 " %11" PRIu64 " %11" PRIu64
              " %8.1f%% %8.1f%%\n",
              name, c.crossings, n.crossings, c.units, n.units,
              bench::improvement_pct(static_cast<double>(c.units),
                                     static_cast<double>(n.units)),
              bench::improvement_pct(c.wall, n.wall));
}

}  // namespace

int main() {
  bench::print_title("E9", "consolidated calls vs classic sequences (paper: "
                           "up to 63% improvement)");
  std::printf("%-18s %9s %9s %11s %11s %9s %9s\n", "pattern", "seq-cross",
              "new-cross", "seq-units", "new-units", "units%", "wall%");

  {
    Fixture f;
    char buf[1024];
    report(
        "open-read-close", f,
        [&] {
          for (int i = 0; i < kReps; ++i) {
            int fd = f.proc.open("/target", fs::kORdOnly);
            f.proc.read(fd, buf, sizeof(buf));
            f.proc.close(fd);
          }
        },
        [&] {
          for (int i = 0; i < kReps; ++i) {
            consolidation::sys_open_read_close(f.kernel, f.proc.process(),
                                               "/target", buf, sizeof(buf),
                                               0);
          }
        });
  }
  {
    Fixture f;
    char buf[512] = {};
    report(
        "open-write-close", f,
        [&] {
          for (int i = 0; i < kReps; ++i) {
            int fd = f.proc.open("/target", fs::kOWrOnly);
            f.proc.write(fd, buf, sizeof(buf));
            f.proc.close(fd);
          }
        },
        [&] {
          for (int i = 0; i < kReps; ++i) {
            consolidation::sys_open_write_close(f.kernel, f.proc.process(),
                                                "/target", buf, sizeof(buf),
                                                0, 0);
          }
        });
  }
  {
    Fixture f;
    fs::StatBuf st;
    report(
        "open-fstat", f,
        [&] {
          for (int i = 0; i < kReps; ++i) {
            int fd = f.proc.open("/target", fs::kORdOnly);
            f.proc.fstat(fd, &st);
            f.proc.close(fd);
          }
        },
        [&] {
          for (int i = 0; i < kReps; ++i) {
            consolidation::sys_open_fstat(f.kernel, f.proc.process(),
                                          "/target", &st);
          }
        });
  }
  return 0;
}
