// E6 (paper §3.3): event-monitor overhead under PostMark.
//
// "we added instrumentation for the dentry cache lock, dcache_lock ...
// this lock was hit an average of 8,805 times a second ... Adding the
// event dispatcher and ring buffer resulted in a 3.9% overhead; running a
// user-space logger built around librefcounts in parallel with PostMark
// increased the overhead to 103%. Running a user-space program that acts
// like the logger but does not write to disk still gave a 61% overhead
// ... we believe that the overhead from the user-space logger is due to
// inefficiencies in the user-kernel interface; in our current prototype,
// librefcounts polls the character device continuously rather than using
// blocking reads."
//
// Single-CPU timesharing is modelled explicitly: after every PostMark
// transaction the logger process gets a timeslice. A polling logger spends
// its slice issuing chardev read() system calls (each a full boundary
// crossing) whether or not events are pending -- that syscall storm is the
// paper's diagnosed inefficiency. The disk-writing variant additionally
// writes formatted records through the kernel to a log file on a simulated
// 2005 SCSI disk. A blocking-reads logger (the paper's proposed fix) is
// included as the final row.
#include <cinttypes>

#include "bench/common.hpp"
#include "evmon/chardev.hpp"
#include "evmon/dispatcher.hpp"
#include "evmon/monitors.hpp"
#include "evmon/rules.hpp"
#include "uk/userlib.hpp"
#include "workload/postmark.hpp"

namespace {

using namespace usk;

// 2005 SCSI log-disk model: per-flush seek/settle plus streaming cost.
constexpr std::uint64_t kDiskSeekUnits = 2500;
constexpr std::uint64_t kDiskUnitsPerKib = 10000;
// A continuously polling logger on a timeshared CPU issues this many
// chardev read() calls per timeslice, data or not.
constexpr int kPollBudget = 85;

workload::PostMarkConfig pm_cfg() {
  workload::PostMarkConfig cfg;
  cfg.file_count = 300;
  cfg.transactions = 3000;
  return cfg;
}

enum class LoggerMode {
  kNone,
  kKernelOnly,
  kRuleFiltered,  // selective instrumentation: rules suppress everything
  kPollNoDisk,
  kPollDisk,
  kBlocking,
};

struct RunResult {
  double elapsed = 0;
  std::uint64_t lock_hits = 0;
  std::uint64_t events_logged = 0;
  std::uint64_t logger_reads = 0;
  std::uint64_t empty_reads = 0;
};

RunResult run(LoggerMode mode) {
  fs::MemFs fs;
  // One dcache shard: the paper instrumented the single global
  // dcache_lock, so E6 runs the SMP build in its 1-shard (paper) mode.
  uk::KernelConfig cfg;
  cfg.dcache_shards = 1;
  uk::Kernel kernel(fs, cfg);
  fs.set_cost_hook(kernel.charge_hook());
  uk::Proc pm_proc(kernel, "postmark");
  uk::Proc log_proc(kernel, "logger");

  evmon::Dispatcher dispatcher;
  evmon::RingBuffer ring(1 << 16);
  evmon::SpinlockMonitor monitor;  // the in-kernel callback
  evmon::Chardev dev(ring);

  // Chardev reads are system calls: charge a crossing per read().
  dev.set_crossing_hook([&] {
    kernel.boundary().enter_kernel(log_proc.task());
    kernel.boundary().exit_kernel(log_proc.task());
  });

  evmon::RuleSet rules;
  if (mode != LoggerMode::kNone) {
    monitor.attach(dispatcher);
    dispatcher.attach_ring(&ring);
    if (mode == LoggerMode::kRuleFiltered) {
      // The §3.5 rule language: nothing matches, so every event is
      // suppressed at the dispatch point -- instrumentation compiled in
      // but turned off.
      (void)rules.parse("monitor spinlock nothing_matches_this\n");
      dispatcher.set_filter([&rules](const evmon::Event& e) {
        return rules.allows(e);
      });
    }
    dispatcher.install_sync_bridge();
  }

  int log_fd = -1;
  if (mode == LoggerMode::kPollDisk) {
    log_fd = log_proc.open("/events.log", fs::kOWrOnly | fs::kOCreat);
  }

  RunResult res;
  std::uint64_t base_locks = kernel.vfs().dcache().lock().acquisitions();

  // The logger's timeslice: what it does between PostMark transactions.
  evmon::Event batch[256];
  char line[96];
  std::string flush_buf;
  auto logger_slice = [&] {
    if (mode == LoggerMode::kNone || mode == LoggerMode::kKernelOnly) return;
    int polls = 0;
    for (;;) {
      std::size_t n = dev.read(batch, 256, evmon::ReadMode::kPolling);
      ++polls;
      for (std::size_t i = 0; i < n; ++i) {
        // Format the record (user-mode work); stdio buffers the lines.
        int len = std::snprintf(line, sizeof(line), "%p %d %s:%d\n",
                                batch[i].object, batch[i].type,
                                batch[i].file ? batch[i].file : "?",
                                batch[i].line);
        log_proc.charge_user(12);
        if (mode == LoggerMode::kPollDisk) {
          flush_buf.append(line, static_cast<std::size_t>(len));
        }
      }
      bool drained = n == 0;
      if (mode == LoggerMode::kBlocking) {
        if (drained) break;  // blocking readers sleep instead of re-polling
      } else if (drained && polls >= kPollBudget) {
        break;  // slice spent spinning on an empty device
      }
    }
    // End of slice: the disk logger flushes its stdio buffer.
    if (mode == LoggerMode::kPollDisk && log_fd >= 0 && !flush_buf.empty()) {
      log_proc.write(log_fd, flush_buf.data(), flush_buf.size());
      kernel.engine().alu(kDiskSeekUnits +
                          kDiskUnitsPerKib * flush_buf.size() / 1024);
      flush_buf.clear();
    }
  };

  res.elapsed = bench::time_once([&] {
    // Single-CPU timesharing: the logger gets a slice every ~64 events
    // (PostMark has no step API, so the slice pump piggybacks on a
    // dispatcher callback; a guard keeps the logger's own syscalls --
    // which also fire dcache events -- from re-entering the pump).
    evmon::Dispatcher::CallbackId pump_id = 0;
    std::uint64_t event_count = 0;
    bool pumping = false;
    if (mode != LoggerMode::kNone && mode != LoggerMode::kKernelOnly) {
      pump_id = dispatcher.register_callback([&](const evmon::Event&) {
        if (pumping) return;
        if (++event_count % 64 == 0) {
          pumping = true;
          logger_slice();
          pumping = false;
        }
      });
    }
    workload::PostMark bench_pm(pm_cfg());
    workload::PostMarkReport rep = bench_pm.run(pm_proc);
    if (rep.errors != 0) std::abort();
    logger_slice();  // final drain
    if (pump_id != 0) dispatcher.unregister_callback(pump_id);
  });

  if (mode != LoggerMode::kNone) {
    dispatcher.remove_sync_bridge();
    dispatcher.set_filter(nullptr);
    monitor.finish();
    if (!monitor.anomalies().empty()) std::abort();
  }
  if (log_fd >= 0) log_proc.close(log_fd);

  res.lock_hits = kernel.vfs().dcache().lock().acquisitions() - base_locks;
  res.events_logged = ring.popped();
  res.logger_reads = dev.reads();
  res.empty_reads = dev.empty_reads();
  return res;
}

}  // namespace

int main() {
  bench::print_title("E6", "event monitor under PostMark (paper: kernel "
                           "+3.9%; polling logger w/ disk +103%; no disk "
                           "+61%)");

  // Best of three fresh runs per configuration (noise control).
  auto best = [](LoggerMode mode) {
    RunResult best_r = run(mode);
    for (int i = 0; i < 2; ++i) {
      RunResult r = run(mode);
      if (r.elapsed < best_r.elapsed) best_r = r;
    }
    return best_r;
  };
  RunResult none = best(LoggerMode::kNone);
  RunResult kernel_only = best(LoggerMode::kKernelOnly);
  RunResult filtered = best(LoggerMode::kRuleFiltered);
  RunResult poll_nodisk = best(LoggerMode::kPollNoDisk);
  RunResult poll_disk = best(LoggerMode::kPollDisk);
  RunResult blocking = best(LoggerMode::kBlocking);

  bench::JsonWriter json("bench_evmon");
  auto row = [&](const char* name, const RunResult& r, const char* paper) {
    std::printf("%-30s %10.3f %+9.1f%%   %s\n", name, r.elapsed,
                100.0 * (bench::slowdown(none.elapsed, r.elapsed) - 1.0),
                paper);
    json.record(name, 1,
                static_cast<double>(pm_cfg().transactions) / r.elapsed,
                r.elapsed);
  };
  std::printf("%-30s %10s %10s   %s\n", "configuration", "elapsed(s)",
              "overhead", "paper");
  row("vanilla (no instrumentation)", none, "--");
  row("dispatcher + ring buffer", kernel_only, "+3.9%");
  row("rules suppress all events", filtered, "(selective instr., Sec 3.5)");
  row("user logger, polling, no disk", poll_nodisk, "+61%");
  row("user logger, polling + disk", poll_disk, "+103%");
  row("user logger, blocking reads", blocking, "(proposed fix)");

  std::printf("  dcache_lock hits           : %" PRIu64
              " over the run (paper: ~8,805/s)\n", kernel_only.lock_hits);
  std::printf("  events drained by logger   : %" PRIu64
              ", chardev reads %" PRIu64 " (empty %" PRIu64 ")\n",
              poll_nodisk.events_logged, poll_nodisk.logger_reads,
              poll_nodisk.empty_reads);
  return 0;
}
