// E4 (paper §2.3): Cosy application benchmarks.
//
// "we modified popular user applications that exhibit sequential or random
// access patterns (e.g., a database) to use Cosy. For CPU bound
// applications, with very minimal code changes, we achieved a performance
// speedup of up to 20-80% over that of unmodified versions."
//
// Two applications, each in an unmodified and a Cosy variant, at three
// compute intensities (work per record processed): the improvement shrinks
// as user-mode compute dilutes the syscall savings -- that dilution is
// where the paper's 20% end of the range comes from.
#include <cinttypes>
#include <algorithm>
#include <cstring>

#include "bench/common.hpp"
#include "cosy/compiler.hpp"
#include "cosy/exec.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

constexpr std::size_t kRecordSize = 512;
constexpr std::size_t kRecords = 4096;  // 2 MiB table
constexpr int kProbes = 2000;

struct Fixture {
  Fixture() : kernel(fs), proc(kernel, "app"), ext(kernel), shared(1 << 16) {
    fs.set_cost_hook(kernel.charge_hook());
    int fd = proc.open("/table.db", fs::kOWrOnly | fs::kOCreat);
    std::vector<char> rec(kRecordSize, 'r');
    for (std::size_t i = 0; i < kRecords; ++i) {
      proc.write(fd, rec.data(), rec.size());
    }
    proc.close(fd);
  }
  fs::MemFs fs;
  uk::Kernel kernel;
  uk::Proc proc;
  cosy::CosyExtension ext;
  cosy::SharedBuffer shared;
};

/// Unmodified database: lseek+read per probed record, then user compute.
double run_db_classic(Fixture& f, std::uint64_t compute_units) {
  return bench::time_once([&] {
    int fd = f.proc.open("/table.db", fs::kORdOnly);
    std::vector<char> rec(kRecordSize);
    std::uint64_t key = 12345;
    for (int i = 0; i < kProbes; ++i) {
      key = key * 6364136223846793005ull + 1442695040888963407ull;
      std::uint64_t slot = key % kRecords;
      f.proc.lseek(fd, static_cast<std::int64_t>(slot * kRecordSize),
                   fs::kSeekSet);
      f.proc.read(fd, rec.data(), rec.size());
      f.proc.charge_user(compute_units);  // process the record
    }
    f.proc.close(fd);
  });
}

/// Cosy database: batches of 32 probes per compound (the COSY_START /
/// COSY_END region), record processing stays in user space on the shared
/// buffer -- the paper's "very minimal code changes".
double run_db_cosy(Fixture& f, std::uint64_t compute_units) {
  constexpr int kBatch = 32;
  // The compound reads records slot-by-slot into consecutive shared
  // slots; slot indices are passed via locals preloaded from... the
  // compiler subset has no arrays, so the batch compound recomputes the
  // same LCG the app uses, seeded from local 0.
  cosy::CompileResult cr = cosy::compile(
      "int fd = open(\"/table.db\", O_RDONLY);"
      "int key = 12345;"
      "for (int i = 0; i < 32; i = i + 1) {"
      "  key = key * 25214903917 + 11;"
      "  if (key < 0) { key = 0 - key; }"
      "  int slot = key % 4096;"
      "  lseek(fd, slot * 512, SEEK_SET);"
      "  read(fd, @(i * 512), 512);"
      "}"
      "close(fd);"
      "return key;");
  if (!cr.ok) {
    std::fprintf(stderr, "compile: %s\n", cr.error.c_str());
    std::abort();
  }
  // The compound is re-executed per batch; the LCG continues from the
  // returned key by re-encoding the "key = 12345" initializer op in the
  // (shared-memory) compound buffer -- no extra crossing.
  cosy::Compound compound = cr.compound;
  std::size_t seed_op = compound.ops.size();
  for (std::size_t i = 0; i < compound.ops.size(); ++i) {
    const cosy::OpRecord& op = compound.ops[i];
    if (op.op == cosy::Op::kSet &&
        op.args[0].kind == cosy::ArgKind::kImm && op.args[0].a == 12345) {
      seed_op = i;
      break;
    }
  }
  if (seed_op == compound.ops.size()) std::abort();
  return bench::time_once([&] {
    std::int64_t key = 12345;
    for (int b = 0; b < kProbes / kBatch; ++b) {
      compound.ops[seed_op].args[0] = cosy::imm(key);
      cosy::CosyResult r = f.ext.execute(f.proc.process(), compound,
                                         f.shared);
      if (r.ret != 0) std::abort();
      key = r.locals[cosy::kReturnLocal];
      // Process the 32 records straight out of the shared buffer.
      for (int i = 0; i < kBatch; ++i) {
        f.proc.charge_user(compute_units);
      }
    }
  });
}

/// Unmodified scan (grep-like): sequential 4 KiB reads + per-block compute.
double run_scan_classic(Fixture& f, std::uint64_t compute_units) {
  return bench::time_once([&] {
    int fd = f.proc.open("/table.db", fs::kORdOnly);
    std::vector<char> buf(4096);
    SysRet n;
    while ((n = f.proc.read(fd, buf.data(), buf.size())) > 0) {
      f.proc.charge_user(compute_units);
    }
    f.proc.close(fd);
  });
}

double run_scan_cosy(Fixture& f, std::uint64_t compute_units) {
  // 64 blocks per compound; the app scans them from shared memory.
  cosy::CompileResult cr = cosy::compile(
      "int fd = open(\"/table.db\", O_RDONLY);"
      "lseek(fd, 0, SEEK_SET);"
      "int total = 0;"
      "int off = 0;"
      "int n = 1;"
      "while (n > 0) {"
      "  n = read(fd, @(off * 4096), 4096);"
      "  total = total + n;"
      "  off = (off + 1) % 16;"
      "}"
      "close(fd);"
      "return total;");
  if (!cr.ok) std::abort();
  return bench::time_once([&] {
    cosy::CosyResult r = f.ext.execute(f.proc.process(), cr.compound,
                                       f.shared);
    if (r.ret != 0) std::abort();
    std::size_t blocks = kRecords * kRecordSize / 4096;
    for (std::size_t i = 0; i < blocks; ++i) {
      f.proc.charge_user(compute_units);
    }
  });
}

void report(bench::JsonWriter& json, const char* app, const char* intensity,
            std::uint64_t compute_units,
            double (*classic)(Fixture&, std::uint64_t),
            double (*cosy)(Fixture&, std::uint64_t)) {
  Fixture f;
  // Best of three to keep host-load noise out of the comparison.
  double tc = 1e99, tz = 1e99;
  for (int i = 0; i < 3; ++i) {
    tc = std::min(tc, classic(f, compute_units));
    tz = std::min(tz, cosy(f, compute_units));
  }
  std::printf("%-18s %-14s %12.4f %12.4f %9.1f%%\n", app, intensity, tc, tz,
              usk::bench::improvement_pct(tc, tz));
  // ops_per_sec is probe/scan passes per second for the classic and Cosy
  // variants of one (application, compute intensity) cell.
  std::string base = std::string(app) + "/" + intensity;
  json.record("classic/" + base, 1, 1.0 / tc, tc);
  json.record("cosy/" + base, 1, 1.0 / tz, tz);
}

}  // namespace

int main() {
  bench::print_title("E4", "Cosy application benchmarks (paper: 20-80% "
                           "speedup for CPU-bound apps)");
  std::printf("%-18s %-14s %12s %12s %10s\n", "application", "compute",
              "classic(s)", "cosy(s)", "speedup%");
  bench::JsonWriter json("bench_cosy_apps");

  report(json, "db random-probe", "light", 200, run_db_classic, run_db_cosy);
  report(json, "db random-probe", "medium", 2000, run_db_classic, run_db_cosy);
  report(json, "db random-probe", "heavy", 8000, run_db_classic, run_db_cosy);
  report(json, "grep-like scan", "light", 200, run_scan_classic, run_scan_cosy);
  report(json, "grep-like scan", "medium", 2000, run_scan_classic, run_scan_cosy);
  report(json, "grep-like scan", "heavy", 8000, run_scan_classic, run_scan_cosy);

  bench::print_note("record processing stays in user space (shared-buffer "
                    "zero copy); heavier compute dilutes the savings toward "
                    "the paper's 20% end");
  return 0;
}
