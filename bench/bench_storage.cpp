// S1: the persistent storage tier's two headline numbers.
//
// S1a -- group-commit amortization. 8 concurrent writers commit small
// transactions through the store's journal. In per-update mode every
// transaction pays its own commit unit + fsync (commits-per-flush == 1
// by construction); with group commit the leader batches every queued
// transaction into ONE unit closed by ONE fsync. The acceptance metric
// is journal transactions per flush at 8 writers:
//
//     commits-per-flush-8w >= 3.0        (check_bench_json --expect-min)
//
// S1b -- PostMark-style slowdown of persistence. The same seeded
// PostMark-ish workload (file pool, read/append transactions, occasional
// delete+create churn) runs twice on JournalFs: once purely in memory
// (PR-4 crash-sim journaling, io cost model attached), once with the
// PR-8 persistent store attached -- real backing image, real fsyncs,
// writeback page cache, ext3-style batched commits. Batching is the
// whole point: with commits amortized over many transactions, durability
// must cost less than 10%:
//
//     postmark-store-slowdown-x100 <= 110 (check_bench_json --expect-max)
//
// Usage: bench_storage [--quick]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "blockdev/buffer_cache.hpp"
#include "blockdev/disk.hpp"
#include "fs/journalfs.hpp"
#include "store/store.hpp"

namespace usk {
namespace {

using JFs = fs::JournalFs<fs::RawPtrPolicy>;

// --- S1a: group commit at 8 writers -------------------------------------------

struct CommitOut {
  double txns_per_sec = 0;
  double txns_per_flush = 0;
  double elapsed = 0;
};

CommitOut run_commit(bool group, int threads, int txns_per_thread,
                     const char* path) {
  std::remove(path);
  store::StoreConfig cfg;
  cfg.data_blocks = 64;
  cfg.journal_blocks = 1024;
  cfg.journal.group_commit = group;
  cfg.journal.leader_wait_us = group ? 200 : 0;
  store::Store st;
  if (!st.open(path, cfg).ok()) return {};

  std::atomic<int> failures{0};
  CommitOut out;
  out.elapsed = bench::time_once([&] {
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&st, &failures, t, txns_per_thread] {
        std::uint8_t payload[256];
        for (int i = 0; i < txns_per_thread; ++i) {
          std::memset(payload, t * 131 + i, sizeof(payload));
          store::JTxn txn = st.begin_txn();
          txn.append(1, std::uint32_t(t * 100000 + i), payload,
                     sizeof(payload));
          if (!st.commit_txn(std::move(txn)).ok()) ++failures;
        }
      });
    }
    for (auto& t : ts) t.join();
  });
  store::JournalStats js = st.journal()->stats();
  out.txns_per_flush = js.txns_per_flush();
  out.txns_per_sec =
      failures.load() == 0 && out.elapsed > 0
          ? double(threads) * txns_per_thread / out.elapsed
          : 0;
  st.close();
  std::remove(path);
  return out;
}

// --- S1b: PostMark-ish workload -----------------------------------------------

constexpr std::size_t kInodes = 256;
constexpr std::size_t kFsBlocks = 2048;
constexpr std::size_t kJournalSlots = 4096;
constexpr std::size_t kCommitInterval = 256;

/// Seeded LCG so both runs see the identical op sequence.
struct Rng {
  std::uint64_t s;
  std::uint64_t next() { return s = s * 6364136223846793005ull + 1442695040888963407ull; }
  std::uint64_t pick(std::uint64_t n) { return (next() >> 33) % n; }
};

/// PostMark shape: a pool of files, then transactions that read or append
/// a random pool member, with delete+create churn sprinkled in.
double run_postmark(JFs& jfs, int files, int txns) {
  Rng rng{0x90517};
  std::vector<fs::InodeNum> pool(files, 0);
  std::vector<std::byte> buf(8192);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 11);
  }
  auto name = [](int i) { return "pm" + std::to_string(i); };
  for (int i = 0; i < files; ++i) {
    auto ino = jfs.create(jfs.root(), name(i), fs::FileType::kRegular, 0644);
    if (!ino.ok()) return -1;
    pool[i] = ino.value();
    std::span<const std::byte> init(buf.data(), 512 + rng.pick(3584));
    if (!jfs.write(pool[i], 0, init).ok()) return -1;
  }
  if (!jfs.sync().ok()) return -1;

  return bench::time_once([&] {
    for (int t = 0; t < txns; ++t) {
      const int i = int(rng.pick(std::uint64_t(files)));
      if (t % 20 == 19) {
        // Churn: delete one file, recreate it empty.
        (void)jfs.unlink(jfs.root(), name(i));
        auto ino =
            jfs.create(jfs.root(), name(i), fs::FileType::kRegular, 0644);
        if (ino.ok()) pool[i] = ino.value();
        continue;
      }
      fs::StatBuf stt{};
      if (!jfs.getattr(pool[i], &stt).ok()) continue;
      if (rng.pick(2) == 0) {
        std::span<std::byte> out(buf.data(),
                                 std::min<std::uint64_t>(stt.size, 4096));
        (void)jfs.read(pool[i], 0, out);
      } else {
        std::span<const std::byte> in(buf.data(), 512 + rng.pick(1536));
        std::uint64_t off = std::min<std::uint64_t>(stt.size, 90 * 1024);
        (void)jfs.write(pool[i], off, in);
      }
    }
    (void)jfs.sync();
  });
}

}  // namespace
}  // namespace usk

int main(int argc, char** argv) {
  using namespace usk;
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::JsonWriter json("bench_storage");

  bench::print_title("S1a", "group commit: concurrent writers share one fsync");
  const int txns = quick ? 200 : 600;
  CommitOut per_upd = run_commit(false, 8, quick ? 25 : 60,
                                 "bench_storage_perupd.img");
  CommitOut grouped = run_commit(true, 8, txns, "bench_storage_group.img");
  std::printf("  %-28s %12s %16s\n", "config", "txns/sec", "txns per flush");
  std::printf("  %-28s %12.0f %16.2f\n", "per-update commit (8w)",
              per_upd.txns_per_sec, per_upd.txns_per_flush);
  std::printf("  %-28s %12.0f %16.2f\n", "group commit (8w)",
              grouped.txns_per_sec, grouped.txns_per_flush);
  bench::print_note("acceptance: commits-per-flush-8w >= 3.0");
  json.record("per-update-txns-per-sec", 8, per_upd.txns_per_sec,
              per_upd.elapsed);
  json.record("group-txns-per-sec", 8, grouped.txns_per_sec, grouped.elapsed);
  json.record("commits-per-flush-8w", 8, grouped.txns_per_flush,
              grouped.elapsed);

  bench::print_title("S1b", "PostMark-style: persistence within 1.10x of memory");
  const int pm_files = quick ? 48 : 96;
  const int pm_txns = quick ? 1200 : 4000;
  const int pm_reps = 5;  // interleaved min-of-N: the timed region is
                          // tens of ms, so scheduler noise on a small box
                          // dwarfs the store's real cost; alternating the
                          // two sides makes a load spike hit both, and the
                          // per-side min is the honest read
  const char* img = "bench_storage_pm.img";
  std::remove(img);

  // Baseline: PR-4 in-memory journaling with the io cost model attached.
  // Fresh stack per rep -- run_postmark creates the pool from scratch.
  auto base_rep = [&]() -> double {
    blockdev::Disk disk(8192);
    blockdev::BufferCache cache(disk, 3072);
    JFs jfs(kInodes, kFsBlocks, kJournalSlots, kCommitInterval);
    jfs.set_io_model(&cache);
    jfs.enable_crash_sim();
    return run_postmark(jfs, pm_files, pm_txns);
  };
  // Store-attached: real image, real fsyncs, batched commits.
  auto store_rep = [&](bool report) -> double {
    std::remove(img);
    blockdev::Disk disk(8192);
    blockdev::BufferCache cache(disk, 3072);
    store::StoreConfig cfg;
    cfg.data_blocks = 2112;    // inode table + bitmap + kFsBlocks, rounded
    cfg.journal_blocks = 2048;  // roomy: no forced mid-run checkpoints
    store::Store st;
    if (!st.open(img, cfg).ok()) return -1;
    JFs jfs(kInodes, kFsBlocks, kJournalSlots, kCommitInterval);
    if (!jfs.attach_store(&st, &cache).ok()) return -1;
    double s = run_postmark(jfs, pm_files, pm_txns);
    if (report) {
      store::ImageStats is = st.image().stats();
      store::JournalStats js = st.journal()->stats();
      std::printf(
          "  store i/o: %llu fsyncs, %llu pwrites, %.1f MiB written, "
          "%llu commit units / %llu txns, %llu recs, %llu home writes\n",
          (unsigned long long)is.fsyncs, (unsigned long long)is.pwrites,
          double(is.bytes_written) / (1024.0 * 1024.0),
          (unsigned long long)js.commit_units,
          (unsigned long long)js.txns_committed,
          (unsigned long long)js.records_written,
          (unsigned long long)jfs.jstats().store_home_writes);
    }
    st.close();
    return s;
  };
  (void)base_rep();        // warm the page cache / allocator once,
  (void)store_rep(false);  // untimed, before any rep counts
  double base_s = -1, store_s = -1;
  for (int r = 0; r < pm_reps; ++r) {
    double b = base_rep();
    double s = store_rep(r == pm_reps - 1);
    if (b <= 0 || s <= 0) { base_s = store_s = -1; break; }
    if (base_s < 0 || b < base_s) base_s = b;
    if (store_s < 0 || s < store_s) store_s = s;
  }
  std::remove(img);
  if (base_s <= 0 || store_s <= 0) {
    std::fprintf(stderr, "bench_storage: postmark run failed\n");
    return 1;
  }
  const double slow = bench::slowdown(base_s, store_s);
  std::printf("  %-28s %12s %12s\n", "config", "txns/sec", "seconds");
  std::printf("  %-28s %12.0f %12.4f\n", "in-memory journalfs",
              pm_txns / base_s, base_s);
  std::printf("  %-28s %12.0f %12.4f\n", "store-attached journalfs",
              pm_txns / store_s, store_s);
  std::printf("  slowdown: %.3fx\n", slow);
  bench::print_note("acceptance: postmark-store-slowdown-x100 <= 110");
  json.record("postmark-memory-txns-per-sec", 1, pm_txns / base_s, base_s);
  json.record("postmark-store-txns-per-sec", 1, pm_txns / store_s, store_s);
  json.record("postmark-store-slowdown-x100", 1, slow * 100.0, store_s);
  return 0;
}
