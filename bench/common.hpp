// Shared helpers for the reproduction benchmarks: wall-clock timing,
// paper-style table printing, and improvement math.
//
// Each bench binary regenerates one of the paper's reported results (see
// DESIGN.md's experiment index). Binaries print self-contained tables so
// `for b in build/bench/*; do $b; done` reproduces the whole evaluation.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace usk::bench {

/// Wall-clock seconds for one invocation of `fn`.
inline double time_once(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-N wall-clock seconds (reduces scheduler noise).
inline double time_best(int n, const std::function<void()>& fn) {
  double best = 1e99;
  for (int i = 0; i < n; ++i) {
    double t = time_once(fn);
    if (t < best) best = t;
  }
  return best;
}

/// Percentage improvement of `better` over `baseline` (paper convention:
/// "improved 60%" means the new time is 40% of the old).
inline double improvement_pct(double baseline, double better) {
  if (baseline <= 0) return 0.0;
  return 100.0 * (baseline - better) / baseline;
}

/// Ratio (slowdown factor) of instrumented over vanilla.
inline double slowdown(double vanilla, double instrumented) {
  return vanilla > 0 ? instrumented / vanilla : 0.0;
}

inline void print_title(const std::string& id, const std::string& title) {
  std::printf("\n==========================================================="
              "=====================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("============================================================"
              "====================\n");
}

inline void print_note(const std::string& note) {
  std::printf("  note: %s\n", note.c_str());
}

}  // namespace usk::bench
