// Shared helpers for the reproduction benchmarks: wall-clock timing,
// paper-style table printing, improvement math, and machine-readable
// result emission.
//
// Each bench binary regenerates one of the paper's reported results (see
// DESIGN.md's experiment index). Binaries print self-contained tables so
// `for b in build/bench/*; do $b; done` reproduces the whole evaluation.
// Setting USK_BENCH_JSON=<path> additionally appends one JSON record per
// reported measurement to that file, for plotting/regression scripts.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace usk::bench {

/// Wall-clock seconds for one invocation of `fn`. Templated (not
/// std::function) so the timed loop body is inlineable -- a type-erased
/// callable adds an indirect call per iteration, which is measurable
/// against our microsecond-scale syscall paths.
template <class Fn>
inline double time_once(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-N wall-clock seconds (reduces scheduler noise).
template <class Fn>
inline double time_best(int n, Fn&& fn) {
  double best = 1e99;
  for (int i = 0; i < n; ++i) {
    double t = time_once(fn);
    if (t < best) best = t;
  }
  return best;
}

/// Percentage improvement of `better` over `baseline` (paper convention:
/// "improved 60%" means the new time is 40% of the old).
inline double improvement_pct(double baseline, double better) {
  if (baseline <= 0) return 0.0;
  return 100.0 * (baseline - better) / baseline;
}

/// Ratio (slowdown factor) of instrumented over vanilla.
inline double slowdown(double vanilla, double instrumented) {
  return vanilla > 0 ? instrumented / vanilla : 0.0;
}

inline void print_title(const std::string& id, const std::string& title) {
  std::printf("\n==========================================================="
              "=====================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("============================================================"
              "====================\n");
}

inline void print_note(const std::string& note) {
  std::printf("  note: %s\n", note.c_str());
}

/// Appends JSON-lines records to the file named by USK_BENCH_JSON; a no-op
/// when the variable is unset, so benches call it unconditionally:
///
///   JsonWriter json("bench_smp_scaling");
///   json.record("sharded+percpu", 4, ops_per_sec, elapsed_s);
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench) : bench_(std::move(bench)) {
    const char* path = std::getenv("USK_BENCH_JSON");
    if (path != nullptr && path[0] != '\0') {
      f_ = std::fopen(path, "a");
    }
  }
  ~JsonWriter() {
    if (f_ != nullptr) std::fclose(f_);
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  [[nodiscard]] bool active() const { return f_ != nullptr; }

  /// One measurement: a named configuration at a thread count.
  void record(const std::string& config, int threads, double ops_per_sec,
              double elapsed_s) {
    if (f_ == nullptr) return;
    std::fprintf(f_,
                 "{\"bench\": \"%s\", \"config\": \"%s\", \"threads\": %d, "
                 "\"ops_per_sec\": %.1f, \"elapsed_s\": %.6f}\n",
                 bench_.c_str(), config.c_str(), threads, ops_per_sec,
                 elapsed_s);
    std::fflush(f_);
  }

 private:
  std::string bench_;
  std::FILE* f_ = nullptr;
};

}  // namespace usk::bench
