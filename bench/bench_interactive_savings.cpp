// E2 (paper §2.2): readdirplus what-if over an interactive workload.
//
// "we logged the system calls on a system under average interactive user
// load for approximately 15 minutes. We then calculated the expected
// savings if readdirplus were used. The total amount of data transfered
// between user and kernel space was 51,807,520 bytes, and we estimate that
// if readdirplus were used we would only transfer 32,250,041 bytes. We
// would also do far fewer system calls -- 17,251 instead of 171,975."
//
// We cannot replay the authors' 2005 desktop, so we run a synthetic
// interactive session of comparable scale (~170k audited syscalls whose
// mix is dominated by directory sweeps, i.e., file managers and shells)
// and run the same what-if analysis over the real audit records.
#include <cinttypes>

#include "bench/common.hpp"
#include "consolidation/graph.hpp"
#include "uk/userlib.hpp"
#include "workload/tracegen.hpp"

int main() {
  using namespace usk;
  bench::print_title("E2", "interactive-trace readdirplus savings (paper: "
                           "171,975 -> 17,251 calls; 51.8 MB -> 32.25 MB)");

  fs::MemFs fs;
  uk::KernelConfig kcfg;
  kcfg.dcache_capacity = 1 << 15;
  uk::Kernel kernel(fs, kcfg);
  fs.set_cost_hook(kernel.charge_hook());
  uk::Proc proc(kernel, "desktop");

  workload::InteractiveConfig cfg;
  cfg.dirs = 40;
  cfg.files_per_dir = 150;
  cfg.dir_sweeps = 1000;
  cfg.config_reads = 4000;
  cfg.log_appends = 2500;
  workload::populate_tree(proc, cfg);

  kernel.audit().enable();
  double elapsed = bench::time_once([&] {
    workload::run_interactive(proc, cfg);
  });
  kernel.audit().disable();

  const auto& recs = kernel.audit().records();
  consolidation::WhatIfSavings s =
      consolidation::readdirplus_whatif(recs);

  std::printf("  session length             : %.2f s simulated-kernel wall\n",
              elapsed);
  std::printf("%28s %15s %15s %9s\n", "", "classic", "readdirplus",
              "ratio");
  std::printf("%28s %15" PRIu64 " %15" PRIu64 " %8.3f\n",
              "system calls", s.calls_before, s.calls_after,
              static_cast<double>(s.calls_after) /
                  static_cast<double>(s.calls_before));
  std::printf("%28s %15" PRIu64 " %15" PRIu64 " %8.3f\n",
              "user<->kernel bytes", s.bytes_before, s.bytes_after,
              static_cast<double>(s.bytes_after) /
                  static_cast<double>(s.bytes_before));
  std::printf("  paper ratios               :          calls 0.100, bytes "
              "0.623\n");

  // ops_per_sec is audited syscalls per second of simulated-kernel wall;
  // the classic/readdirplus split carries the what-if call counts.
  bench::JsonWriter json("bench_interactive_savings");
  json.record("classic-calls", 1,
              static_cast<double>(s.calls_before) / elapsed, elapsed);
  json.record("readdirplus-calls", 1,
              static_cast<double>(s.calls_after) / elapsed, elapsed);

  // The paper converts the savings to seconds/hour; do the same using the
  // boundary cost model (crossing + copy work per eliminated call).
  const uk::CostModel& cm = kernel.boundary().model();
  double units_per_call =
      static_cast<double>(cm.crossing_alu + cm.crossing_alu / 2 +
                          cm.crossing_cache);
  std::uint64_t saved_calls = s.calls_before - s.calls_after;
  std::uint64_t saved_bytes = s.bytes_before - s.bytes_after;
  double saved_units = static_cast<double>(saved_calls) * units_per_call +
                       static_cast<double>(saved_bytes) / 1024.0 *
                           static_cast<double>(cm.copy_per_kib);
  // Estimate unit cost from this run: elapsed seconds per executed unit.
  double total_units = static_cast<double>(proc.task().times().kernel +
                                           proc.task().times().user);
  double sec_per_unit = total_units > 0 ? elapsed / total_units : 0;
  double saved_sec = saved_units * sec_per_unit;
  std::printf("  estimated savings          : %.2f s per session (paper: "
              "~28.15 s/hour of interactive load)\n", saved_sec);
  return 0;
}
