// A2b / §2.4 motivation: Cosy under real I/O costs ("I/O-aware Cosy").
//
// "To extend the performance gains achieved by Cosy, we are designing an
// I/O-aware version of Cosy. We are exploring various smart-disk
// technologies and typical disk access patterns to make Cosy I/O
// conscious."
//
// This bench shows WHY: with the buffer cache warm (CPU-bound, the regime
// of E3/E4), Cosy's crossing elimination is most of the cost and the
// speedup is large. With a cold cache and random access the disk dominates
// and Cosy's advantage collapses -- the headroom an I/O-conscious Cosy
// (prefetching inside the compound, reordering probes by LBA) would
// target.
#include <cinttypes>

#include "bench/common.hpp"
#include "blockdev/buffer_cache.hpp"
#include "blockdev/disk.hpp"
#include "cosy/compiler.hpp"
#include "cosy/exec.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

constexpr std::size_t kFileBlocks = 512;  // 2 MiB file
constexpr int kProbes = 512;

struct Stack {
  explicit Stack(std::size_t cache_blocks)
      : disk(1 << 16), cache(disk, cache_blocks), kernel(fs),
        proc(kernel, "io"), ext(kernel), shared(1 << 16) {
    fs.set_cost_hook(kernel.charge_hook());
    disk.set_charge_hook(kernel.charge_hook());
    fs.set_io_model(&cache);
    int fd = proc.open("/table", fs::kOWrOnly | fs::kOCreat);
    std::vector<char> block(4096, 'd');
    for (std::size_t i = 0; i < kFileBlocks; ++i) {
      proc.write(fd, block.data(), block.size());
    }
    proc.close(fd);
  }

  void warm_cache() {
    char buf[4096];
    int fd = proc.open("/table", fs::kORdOnly);
    while (proc.read(fd, buf, sizeof(buf)) > 0) {
    }
    proc.close(fd);
  }

  blockdev::Disk disk;
  blockdev::BufferCache cache;
  fs::MemFs fs;
  uk::Kernel kernel;
  uk::Proc proc;
  cosy::CosyExtension ext;
  cosy::SharedBuffer shared;
};

std::uint64_t classic_random(Stack& s) {
  std::uint64_t k0 = s.proc.task().times().kernel;
  int fd = s.proc.open("/table", fs::kORdOnly);
  char buf[4096];
  std::uint64_t key = 99;
  for (int i = 0; i < kProbes; ++i) {
    key = key * 6364136223846793005ull + 1442695040888963407ull;
    s.proc.lseek(fd,
                 static_cast<std::int64_t>((key >> 33) % kFileBlocks) * 4096,
                 fs::kSeekSet);
    s.proc.read(fd, buf, sizeof(buf));
  }
  s.proc.close(fd);
  return s.proc.task().times().kernel - k0;
}

std::uint64_t cosy_random(Stack& s) {
  cosy::CompileResult cr = cosy::compile(
      "int fd = open(\"/table\", O_RDONLY);"
      "int key = 99;"
      "for (int i = 0; i < 512; i += 1) {"
      "  key = key * 25214903917 + 11;"
      "  if (key < 0) { key = 0 - key; }"
      "  lseek(fd, (key % 512) * 4096, SEEK_SET);"
      "  read(fd, @0, 4096);"
      "}"
      "close(fd);"
      "return 0;");
  if (!cr.ok) std::abort();
  std::uint64_t k0 = s.proc.task().times().kernel;
  cosy::CosyResult r = s.ext.execute(s.proc.process(), cr.compound, s.shared);
  if (r.ret != 0) std::abort();
  return s.proc.task().times().kernel - k0;
}

std::uint64_t classic_seq(Stack& s) {
  std::uint64_t k0 = s.proc.task().times().kernel;
  int fd = s.proc.open("/table", fs::kORdOnly);
  char buf[4096];
  while (s.proc.read(fd, buf, sizeof(buf)) > 0) {
  }
  s.proc.close(fd);
  return s.proc.task().times().kernel - k0;
}

std::uint64_t cosy_seq(Stack& s) {
  cosy::CompileResult cr = cosy::compile(
      "int fd = open(\"/table\", O_RDONLY);"
      "int n = 1;"
      "while (n > 0) { n = read(fd, @0, 4096); }"
      "close(fd);"
      "return 0;");
  if (!cr.ok) std::abort();
  std::uint64_t k0 = s.proc.task().times().kernel;
  cosy::CosyResult r = s.ext.execute(s.proc.process(), cr.compound, s.shared);
  if (r.ret != 0) std::abort();
  return s.proc.task().times().kernel - k0;
}

void row(const char* pattern, const char* cache_state, std::uint64_t classic,
         std::uint64_t cosy) {
  std::printf("%-18s %-12s %14" PRIu64 " %14" PRIu64 " %9.1f%%\n", pattern,
              cache_state, classic, cosy,
              bench::improvement_pct(static_cast<double>(classic),
                                     static_cast<double>(cosy)));
}

}  // namespace

int main() {
  bench::print_title("A4", "Cosy under disk I/O (the Sec 2.4 'I/O-aware "
                           "Cosy' motivation)");
  std::printf("%-18s %-12s %14s %14s %10s\n", "pattern", "cache",
              "classic(u)", "cosy(u)", "speedup");

  {
    Stack s(1 << 12);  // cache holds the whole file
    s.warm_cache();
    std::uint64_t c = classic_seq(s);
    std::uint64_t z = cosy_seq(s);
    row("sequential scan", "warm", c, z);
  }
  {
    Stack s(16);  // cold, tiny cache: every block misses
    std::uint64_t c = classic_seq(s);
    std::uint64_t z = cosy_seq(s);
    row("sequential scan", "cold", c, z);
  }
  {
    Stack s(1 << 12);
    s.warm_cache();
    std::uint64_t c = classic_random(s);
    std::uint64_t z = cosy_random(s);
    row("random probes", "warm", c, z);
  }
  {
    Stack s(16);
    std::uint64_t c = classic_random(s);
    std::uint64_t z = cosy_random(s);
    row("random probes", "cold", c, z);
  }
  bench::print_note("warm cache = CPU-bound regime (Cosy's E3/E4 wins); "
                    "cold random = disk-bound, where crossing savings wash "
                    "out and an I/O-conscious Cosy would reorder/prefetch");
  return 0;
}
