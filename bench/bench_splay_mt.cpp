// A3 (ablation, paper §3.5): the splay-tree object map under threads.
//
// "KGCC currently stores the address map of allocated objects in a splay
// tree, which brings the most recently accessed node to the top during
// each operation. This results in nearly optimal performance when there is
// reference locality. However, when multiple threads make use of the same
// splay tree, the splay tree is no longer as efficient, because different
// threads have less locality. We are currently investigating data
// structures better suited for multi-threaded code."
//
// Built on google-benchmark's threaded runner. Each thread has its own hot
// set of objects; lookups interleave across threads. The splay tree must
// take an exclusive lock even for lookups (lookups rotate), and the
// interleaved hot sets keep it rotating; the balanced map takes a shared
// lock for reads and never mutates on lookup.
#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <shared_mutex>

#include "base/rng.hpp"
#include "bcc/object_map.hpp"

namespace {

using namespace usk;

constexpr std::size_t kObjectsPerThread = 512;
constexpr std::uint64_t kObjSize = 64;
constexpr std::uint64_t kStride = 4096;

std::uint64_t obj_base(int thread, std::size_t i) {
  return 0x10000000ull * static_cast<std::uint64_t>(thread + 1) +
         static_cast<std::uint64_t>(i) * kStride;
}

template <typename MapT>
void populate(MapT& map, int threads) {
  for (int t = 0; t < threads; ++t) {
    for (std::size_t i = 0; i < kObjectsPerThread; ++i) {
      bcc::MapEntry e;
      e.base = obj_base(t, i);
      e.size = kObjSize;
      map.insert(e);
    }
  }
}

// --- shared splay tree behind an exclusive lock -------------------------------

struct SplayShared {
  std::mutex mu;
  bcc::SplayAddressMap map;
};
std::unique_ptr<SplayShared> g_splay;

void BM_SplayMapLookup(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_splay = std::make_unique<SplayShared>();
    populate(g_splay->map, state.threads());
  }
  base::Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 7);
  // Each thread's working set shows strong locality *within* the thread.
  for (auto _ : state) {
    std::uint64_t addr =
        obj_base(state.thread_index(), rng.below(16)) + rng.below(kObjSize);
    std::lock_guard lk(g_splay->mu);  // splay lookups mutate: exclusive
    const bcc::MapEntry* e = g_splay->map.floor(addr);
    benchmark::DoNotOptimize(e);
  }
  if (state.thread_index() == 0) {
    state.counters["rotations"] = static_cast<double>(
        g_splay->map.splay_stats().rotations);
    g_splay.reset();
  }
}

// --- shared balanced map behind a reader/writer lock -----------------------------

struct BalancedShared {
  std::shared_mutex mu;
  bcc::BalancedAddressMap map;
};
std::unique_ptr<BalancedShared> g_balanced;

void BM_BalancedMapLookup(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_balanced = std::make_unique<BalancedShared>();
    populate(g_balanced->map, state.threads());
  }
  base::Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 7);
  for (auto _ : state) {
    std::uint64_t addr =
        obj_base(state.thread_index(), rng.below(16)) + rng.below(kObjSize);
    std::shared_lock lk(g_balanced->mu);  // lookups are read-only
    const bcc::MapEntry* e = g_balanced->map.floor(addr);
    benchmark::DoNotOptimize(e);
  }
  if (state.thread_index() == 0) g_balanced.reset();
}

// --- single-threaded reference: splay locality is a WIN here ----------------------

void BM_SplaySingleThreadHotSet(benchmark::State& state) {
  bcc::SplayAddressMap map;
  populate(map, 1);
  base::Rng rng(3);
  for (auto _ : state) {
    // 95% of accesses hit a 4-object hot set (kernel reference locality).
    std::size_t idx = rng.chance(95, 100) ? rng.below(4)
                                          : rng.below(kObjectsPerThread);
    const bcc::MapEntry* e = map.floor(obj_base(0, idx) + 8);
    benchmark::DoNotOptimize(e);
  }
}

void BM_BalancedSingleThreadHotSet(benchmark::State& state) {
  bcc::BalancedAddressMap map;
  populate(map, 1);
  base::Rng rng(3);
  for (auto _ : state) {
    std::size_t idx = rng.chance(95, 100) ? rng.below(4)
                                          : rng.below(kObjectsPerThread);
    const bcc::MapEntry* e = map.floor(obj_base(0, idx) + 8);
    benchmark::DoNotOptimize(e);
  }
}

BENCHMARK(BM_SplaySingleThreadHotSet);
BENCHMARK(BM_BalancedSingleThreadHotSet);
BENCHMARK(BM_SplayMapLookup)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_BalancedMapLookup)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
