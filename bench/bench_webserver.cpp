// N1: web server over the loopback network -- plain vs consolidated vs
// Cosy serving (paper §2.2).
//
// The paper's server motivation: Apache-style daemons spend their life in
// accept-recv-open-read-send-close loops, each call a boundary crossing
// and every payload byte copied twice (file->user on read, user->socket
// on send). Consolidation collapses the prologue into accept_recv and the
// response into sendfile (payload moves kernel-side, zero user copies);
// Cosy goes further and serves a whole keep-alive connection in one
// compound. This bench measures all three on the same epoll server across
// 1/2/4/8 virtual CPUs and reports crossings/request, copied
// bytes/request, and requests/sec.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "net/net.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace usk;

workload::WebServerReport run(workload::ServeMode mode, std::size_t workers,
                              std::size_t requests_per_conn) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  net::Net net(kernel);

  workload::WebServerConfig cfg;
  cfg.mode = mode;
  cfg.workers = workers;
  cfg.conns_per_worker = 16;
  cfg.requests_per_conn = requests_per_conn;
  cfg.file_bytes = 16384;  // 4 chunk-sized read+send rounds in plain mode
  cfg.files = 4;

  uk::Proc setup(kernel, "setup");
  workload::populate_www(setup, cfg);
  return workload::run_webserver(kernel, net, cfg);
}

/// Modelled req/s on `workers` virtual CPUs, the bench_smp_scaling
/// convention: workers are symmetric and independent (own port, own
/// sockets), so on a saturated host wall/workers is the per-virtual-CPU
/// share of the measured work. On a host with >= workers CPUs, wall and
/// smp converge.
double smp_req_per_sec(std::size_t workers,
                       const workload::WebServerReport& r) {
  return r.req_per_sec * static_cast<double>(workers);
}

void print_row(const char* mix, workload::ServeMode mode, std::size_t workers,
               const workload::WebServerReport& r) {
  std::printf("%-10s %-13s %6zu %8" PRIu64 " %10.0f %10.0f %12.2f %14.0f\n",
              mix, workload::serve_mode_name(mode), workers, r.requests,
              r.req_per_sec, smp_req_per_sec(workers, r),
              r.crossings_per_req(), r.user_bytes_per_req());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_title("N1", "web server: plain vs consolidated "
                           "(accept_recv+sendfile) vs Cosy compounds");
  bench::print_note("16 KiB documents, 16 conns/worker; keep-alive = 8 "
                    "requests/conn, one-shot = 1. Crossings and copied "
                    "bytes are server-side only.");

  bench::JsonWriter json("bench_webserver");
  const std::size_t worker_counts[] = {1, 2, 4, 8};
  const workload::ServeMode modes[] = {workload::ServeMode::kPlain,
                                       workload::ServeMode::kConsolidated,
                                       workload::ServeMode::kCosy};

  std::printf("\n%-10s %-13s %6s %8s %10s %10s %12s %14s\n", "mix", "mode",
              "vcpus", "reqs", "req/s", "smp req/s", "cross/req",
              "copied B/req");

  // Keep-alive mix across the CPU sweep (the scaling story).
  workload::WebServerReport plain4, consolidated4, cosy4;
  double plain1smp = 0, plain4smp = 0;
  // Wall req/s on a saturated 1-CPU host is noisy run to run, so the
  // req/s acceptance line averages the whole vCPU sweep per mode.
  double sum_rps[3] = {0, 0, 0};
  int n_rps[3] = {0, 0, 0};
  for (workload::ServeMode mode : modes) {
    for (std::size_t workers : worker_counts) {
      if (quick && workers > 2) continue;
      workload::WebServerReport r = run(mode, workers, 8);
      sum_rps[static_cast<int>(mode)] += r.req_per_sec;
      ++n_rps[static_cast<int>(mode)];
      print_row("keepalive", mode, workers, r);
      json.record(std::string(workload::serve_mode_name(mode)) + "-keepalive",
                  static_cast<int>(workers), smp_req_per_sec(workers, r),
                  r.elapsed_s);
      if (workers == 4) {
        if (mode == workload::ServeMode::kPlain) plain4 = r;
        if (mode == workload::ServeMode::kConsolidated) consolidated4 = r;
        if (mode == workload::ServeMode::kCosy) cosy4 = r;
      }
      if (mode == workload::ServeMode::kPlain) {
        if (workers == 1) plain1smp = smp_req_per_sec(workers, r);
        if (workers == 4) plain4smp = smp_req_per_sec(workers, r);
      }
    }
    std::printf("\n");
  }

  // One-shot mix at one CPU count (connection-prologue-dominated).
  const std::size_t oneshot_workers = quick ? 2 : 4;
  for (workload::ServeMode mode : modes) {
    workload::WebServerReport r = run(mode, oneshot_workers, 1);
    print_row("oneshot", mode, oneshot_workers, r);
    json.record(std::string(workload::serve_mode_name(mode)) + "-oneshot",
                static_cast<int>(oneshot_workers),
                smp_req_per_sec(oneshot_workers, r), r.elapsed_s);
  }

  if (!quick && plain4.requests > 0 && consolidated4.requests > 0) {
    std::printf("\n  keep-alive @4 vCPUs, consolidated vs plain:\n");
    std::printf("    crossings/req  %.2f -> %.2f  (%.2fx, target >= 3x)\n",
                plain4.crossings_per_req(), consolidated4.crossings_per_req(),
                plain4.crossings_per_req() / consolidated4.crossings_per_req());
    std::printf("    copied B/req   %.0f -> %.0f  (%.2fx, target >= 2x)\n",
                plain4.user_bytes_per_req(), consolidated4.user_bytes_per_req(),
                plain4.user_bytes_per_req() /
                    consolidated4.user_bytes_per_req());
    const double plain_rps = sum_rps[0] / n_rps[0];
    const double cons_rps = sum_rps[1] / n_rps[1];
    std::printf("    req/s (sweep mean) %.0f -> %.0f  (%+.1f%%)\n",
                plain_rps, cons_rps, (cons_rps / plain_rps - 1.0) * 100.0);
    if (cosy4.requests > 0) {
      std::printf("    cosy: %.2f crossings/req, %.0f copied B/req, "
                  "%.0f req/s (sweep mean)\n",
                  cosy4.crossings_per_req(), cosy4.user_bytes_per_req(),
                  sum_rps[2] / n_rps[2]);
    }
    if (plain1smp > 0 && plain4smp > 0) {
      std::printf("    plain scaling 1 -> 4 vCPUs: %.2fx smp req/s\n",
                  plain4smp / plain1smp);
    }
  }
  return 0;
}
