// A1 (ablation, paper §2.3): Cosy's two memory-protection approaches.
//
// "The first approach is to put the entire user function in an isolated
// segment ... This approach assures maximum security ... However, to
// invoke a function in a different segment involves overhead. The second
// approach ... isolating the function data from the function code ...
// involves no additional runtime overhead while calling such a function,
// making it very efficient."
//
// The same user function is installed under both modes and invoked from a
// compound; rows sweep the function-body size, showing the isolated mode's
// fixed far-call cost plus per-fetch segment checks amortizing as the body
// grows.
#include <cinttypes>

#include "bench/common.hpp"
#include "cosy/exec.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

/// Build f(): loop `iters` times doing data-segment work; return sum.
std::vector<cosy::VmInstr> make_body(std::int64_t iters) {
  cosy::VmAssembler a;
  a.loadi(0, 0);        // sum
  a.loadi(3, 0);        // i
  a.loadi(4, iters);    // bound
  a.loadi(5, 0);        // data base
  std::size_t loop = a.here();
  a.st(3, 5, 0);        // data[0] = i
  a.ld(6, 5, 0);        // r6 = data[0]
  a.add(0, 6);          // sum += r6
  a.addi(3, 1);
  a.jlt(3, 4, static_cast<std::int64_t>(loop));
  a.ret();
  return a.take();
}

}  // namespace

int main() {
  bench::print_title("A1", "Cosy user-function safety modes: isolated "
                           "segments vs data-segment-only");
  std::printf("%-12s %14s %14s %12s %12s\n", "body(iters)", "isolated(u)",
              "data-only(u)", "iso-cost", "far-calls");

  for (std::int64_t iters : {1, 10, 100, 1000, 10000}) {
    fs::MemFs fs;
    uk::Kernel kernel(fs);
    fs.set_cost_hook(kernel.charge_hook());
    uk::Proc proc(kernel, "a1");
    cosy::CosyExtension ext(kernel);
    cosy::SharedBuffer shared(4096);

    int iso = ext.install_function(make_body(iters), 64,
                                   cosy::SafetyMode::kIsolatedSegments,
                                   "iso");
    int dat = ext.install_function(make_body(iters), 64,
                                   cosy::SafetyMode::kDataSegmentOnly,
                                   "data");

    auto run_mode = [&](int fid) -> std::uint64_t {
      cosy::CompoundBuilder b;
      // 64 calls per compound to average out noise.
      b.set_local(1, cosy::imm(0));
      int loop = b.here();
      b.call_func(fid, {}, 2);
      b.arith(1, cosy::ArithOp::kAdd, cosy::local(1), cosy::imm(1));
      b.arith(3, cosy::ArithOp::kLt, cosy::local(1), cosy::imm(64));
      b.jnz(cosy::local(3), loop);
      cosy::Compound c = b.finish();
      std::uint64_t k0 = proc.task().times().kernel;
      cosy::CosyResult r = ext.execute(proc.process(), c, shared);
      if (r.ret != 0) std::abort();
      if (r.locals[2] != (iters - 1) * iters / 2) std::abort();
      return (proc.task().times().kernel - k0) / 64;  // per call
    };

    std::uint64_t iso_units = run_mode(iso);
    std::uint64_t dat_units = run_mode(dat);
    std::printf("%-12" PRId64 " %14" PRIu64 " %14" PRIu64 " %+11.1f%% %12"
                PRIu64 "\n",
                iters, iso_units, dat_units,
                100.0 * (static_cast<double>(iso_units) /
                             static_cast<double>(dat_units) -
                         1.0),
                ext.gdt().stats().far_calls);
  }
  bench::print_note("isolated mode pays a far call per invocation plus "
                    "segment-checked instruction fetches; the relative cost "
                    "shrinks as the function body grows");
  return 0;
}
