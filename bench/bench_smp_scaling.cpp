// SMP scaling: parallel syscall dispatch over {global vs sharded dcache}
// x {shared vs per-CPU kmalloc}.
//
// The paper (§3.3) measured the global dcache_lock being hit 8,805
// times/s under PostMark on one CPU and could only *observe* the
// contention. This benchmark turns the observation into the fix's
// evaluation: N threads run a PostMark-style metadata loop (stat-heavy,
// with open/close and create/unlink churn plus Wrapfs-style ~80-byte
// kmalloc traffic per call, §3.2) against one shared Kernel, and the four
// configurations differ only in lock granularity:
//
//   global+shared    1 dcache shard, shared kmalloc free lists (the
//                    paper's single-lock kernel -- the baseline)
//   sharded+shared   16 dcache shards, shared kmalloc
//   global+percpu    1 dcache shard, per-CPU kmalloc magazines
//   sharded+percpu   16 shards + magazines (the SMP build)
//
// Two metrics are reported per run:
//
//   wall ops/s   measured wall-clock throughput on this host. On a host
//                with >= `threads` CPUs this alone shows the scaling; on
//                an oversubscribed host every config serialises onto the
//                same cores and wall throughput converges.
//
//   smp ops/s    the usk SMP model: all syscall work is *executed* and
//                *measured* for real (the usk way -- costs are real CPU
//                work, never sleeps), then the measured work is scheduled
//                onto `threads` virtual CPUs subject to the measured lock
//                serialisation: a lock's critical sections cannot overlap,
//                so each lock contributes a serial term
//                    acquisitions(lock) x calibrated cs time,
//                and modelled elapsed = max(per-CPU work, hottest lock's
//                serial term). Acquisition counts come from the
//                instrumented SpinLocks; cs times are calibrated by timing
//                the actual critical sections single-threaded at startup.
//
// Costs are scaled so the dcache critical section (the simulated hash
// chain walk under the shard lock -- exactly why dcache_lock was the
// paper's hottest lock) dominates the syscall path; this is the
// adversarial configuration for a global lock and the one the paper's E6
// numbers point at.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

constexpr int kFilesPerDir = 64;
constexpr int kOpsPerThread = 60000;
constexpr int kMaxThreads = 8;
// ALU units executed per dcache op while holding its shard lock (simulated
// hash-chain walk; see Dcache::set_hold_work). High enough that the dcache
// critical section dominates the syscall path, as in the paper's PostMark
// runs where dcache_lock was the top lock.
constexpr std::uint32_t kDcacheHoldWork = 1500;

struct Config {
  const char* name;
  std::size_t dcache_shards;
  bool kmalloc_percpu;
};

constexpr Config kConfigs[] = {
    {"global+shared", 1, false},
    {"sharded+shared", fs::Dcache::kDefaultShards, false},
    {"global+percpu", 1, true},
    {"sharded+percpu", fs::Dcache::kDefaultShards, true},
};

struct RunOut {
  double elapsed = 0;        // measured wall clock on this host
  double wall_ops = 0;       // ops / elapsed
  double smp_elapsed = 0;    // modelled elapsed on `threads` virtual CPUs
  double smp_ops = 0;        // ops / smp_elapsed
  double dcache_serial = 0;  // hottest shard's serial term (s)
  double depot_serial = 0;   // depot lock's serial term (s)
  std::uint64_t dcache_spins = 0;
  std::uint64_t depot_spins = 0;
};

/// Calibrated single-threaded critical-section times (seconds).
struct CsTimes {
  double dcache = 0;  // one locked dcache op (hash-chain walk + map op)
  double depot = 0;   // one locked depot op (alloc or free of ~80 bytes)
};

/// Time the dcache critical section: a hit lookup is key construction
/// (outside the lock) + the locked chain walk + LRU touch; with
/// kDcacheHoldWork the locked part dominates.
CsTimes calibrate() {
  CsTimes cs;
  {
    fs::Dcache dc(64, 1);
    dc.set_hold_work(kDcacheHoldWork);
    dc.insert(1, "probe", 2);
    constexpr int kM = 50000;
    cs.dcache = bench::time_once([&] {
                  for (int i = 0; i < kM; ++i) dc.lookup(1, "probe");
                }) /
                kM;
  }
  {
    // Legacy-mode alloc/free runs entirely under the depot lock, so the
    // call time is the critical-section time.
    vm::PhysMem pm(1 << 10);
    mm::Kmalloc km(pm, /*per_cpu_cache=*/false);
    constexpr int kM = 50000;
    double pair = bench::time_once([&] {
                    for (int i = 0; i < kM; ++i) {
                      mm::BufferHandle h = USK_ALLOC(km, 80);
                      km.free(h);
                    }
                  }) /
                  kM;
    cs.depot = pair / 2.0;
  }
  return cs;
}

/// One worker's slice of the metadata loop: mostly stat (pure dcache +
/// getattr), some open/close, some create/unlink churn. Every call is a
/// full syscall through the boundary; each iteration also does a pair of
/// ~80-byte kmalloc allocations, the mean request size the paper measured
/// for Wrapfs (§3.2).
void worker(uk::Kernel& kernel, uk::Proc& proc, int tid, int ops) {
  char path[64];
  fs::StatBuf st;
  mm::Kmalloc& km = kernel.kmalloc();
  std::uint32_t x = 0x9E3779B9u * static_cast<std::uint32_t>(tid + 1);
  for (int i = 0; i < ops; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    int file = static_cast<int>(x % kFilesPerDir);
    // Wrapfs-style allocator traffic riding on the syscall.
    mm::BufferHandle b1 = USK_ALLOC(km, 32 + (x & 63));
    mm::BufferHandle b2 = USK_ALLOC(km, 96);
    int kind = static_cast<int>(x % 20);
    if (kind < 13) {  // 65%: stat
      std::snprintf(path, sizeof(path), "/t%d/f%d", tid, file);
      proc.stat(path, &st);
    } else if (kind < 18) {  // 25%: open + close
      std::snprintf(path, sizeof(path), "/t%d/f%d", tid, file);
      int fd = proc.open(path, fs::kORdOnly);
      if (fd >= 0) proc.close(fd);
    } else {  // 10%: create + unlink (namespace churn, invalidations)
      std::snprintf(path, sizeof(path), "/t%d/x%d", tid, file);
      int fd = proc.open(path, fs::kOWrOnly | fs::kOCreat);
      if (fd >= 0) proc.close(fd);
      proc.unlink(path);
    }
    km.free(b2);
    km.free(b1);
  }
}

RunOut run(const Config& c, int threads, const CsTimes& cs) {
  fs::MemFs fs;
  uk::KernelConfig kcfg;
  kcfg.dcache_shards = c.dcache_shards;
  kcfg.kmalloc_per_cpu_cache = c.kmalloc_percpu;
  // Scaled-down boundary/fs costs: keep the real memcpy/map work but
  // shrink the simulated ALU padding so lock behaviour dominates.
  kcfg.boundary = uk::CostModel{30, 1, 4, 8};
  uk::Kernel kernel(fs, kcfg);
  fs.set_cost_hook(kernel.charge_hook());
  // Hash-chain-walk cost held under the dcache shard lock: this is what
  // made dcache_lock the paper's hottest lock -- the cycles are spent
  // inside the critical section, so a global lock serialises them.
  kernel.vfs().dcache().set_hold_work(kDcacheHoldWork);
  fs::FsCosts costs;
  costs.lookup = 5;
  costs.create = 15;
  costs.remove = 10;
  costs.rename = 15;
  costs.getattr = 8;
  costs.readdir_base = 5;
  costs.readdir_per_entry = 1;
  costs.data_per_kib = 5;
  costs.truncate = 5;
  fs.set_costs(costs);

  // Namespace setup (single-threaded): per-thread top-level directories,
  // as PostMark gives each process its own working directory. Keys hash
  // per thread, so no dcache entry is hot across threads -- the remaining
  // cross-thread cost is purely the lock granularity under test.
  uk::Proc setup(kernel, "setup");
  char path[64];
  for (int t = 0; t < threads; ++t) {
    std::snprintf(path, sizeof(path), "/t%d", t);
    setup.mkdir(path);
    for (int f = 0; f < kFilesPerDir; ++f) {
      std::snprintf(path, sizeof(path), "/t%d/f%d", t, f);
      int fd = setup.open(path, fs::kOWrOnly | fs::kOCreat);
      if (fd >= 0) setup.close(fd);
    }
  }

  // One process (task) per dispatching thread.
  std::vector<std::unique_ptr<uk::Proc>> procs;
  procs.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    procs.push_back(
        std::make_unique<uk::Proc>(kernel, "smp" + std::to_string(t)));
  }

  fs::Dcache& dc = kernel.vfs().dcache();
  std::vector<std::uint64_t> shard_acq0(dc.shard_count());
  for (std::size_t s = 0; s < dc.shard_count(); ++s) {
    shard_acq0[s] = dc.lock(s).acquisitions();
  }
  std::uint64_t dc_spin0 = dc.lock_contended_spins();
  std::uint64_t dp_acq0 = kernel.kmalloc().depot_lock().acquisitions();
  std::uint64_t dp_spin0 = kernel.kmalloc().depot_lock().contended_spins();

  RunOut out;
  out.elapsed = bench::time_once([&] {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back(
          [&, t] { worker(kernel, *procs[t], t, kOpsPerThread); });
    }
    for (auto& w : workers) w.join();
  });

  const double total_ops = static_cast<double>(threads) * kOpsPerThread;
  out.wall_ops = total_ops / out.elapsed;
  out.dcache_spins = dc.lock_contended_spins() - dc_spin0;
  out.depot_spins = kernel.kmalloc().depot_lock().contended_spins() - dp_spin0;

  // --- SMP model: schedule the measured work on `threads` virtual CPUs.
  // Each lock's critical sections are serial; everything else is parallel.
  std::uint64_t hottest_shard = 0;
  for (std::size_t s = 0; s < dc.shard_count(); ++s) {
    hottest_shard =
        std::max(hottest_shard, dc.lock(s).acquisitions() - shard_acq0[s]);
  }
  out.dcache_serial = static_cast<double>(hottest_shard) * cs.dcache;
  std::uint64_t depot_acq = kernel.kmalloc().depot_lock().acquisitions() -
                            dp_acq0;
  out.depot_serial = static_cast<double>(depot_acq) * cs.depot;
  // On one saturated host CPU, wall clock == total executed work, so
  // wall/threads is the per-virtual-CPU share (workers are symmetric).
  const double per_cpu = out.elapsed / threads;
  out.smp_elapsed = std::max({per_cpu, out.dcache_serial, out.depot_serial});
  out.smp_ops = total_ops / out.smp_elapsed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_title(
      "SMP", "parallel dispatch scaling: dcache sharding x per-CPU kmalloc");
  CsTimes cs = calibrate();
  std::printf("  host CPUs: %u | calibrated cs: dcache %.0f ns, depot %.0f "
              "ns (smp ops/s = measured work on N virtual CPUs, lock "
              "critical sections serialised)\n",
              std::thread::hardware_concurrency(), cs.dcache * 1e9,
              cs.depot * 1e9);

  bench::JsonWriter json("bench_smp_scaling");
  const int thread_counts[] = {1, 2, 4, 8};

  std::printf("\n%-16s %8s %12s %12s %12s %13s %13s\n", "config", "threads",
              "wall ops/s", "smp ops/s", "elapsed(s)", "dcache ser(s)",
              "depot ser(s)");
  double ops_4t[4] = {0, 0, 0, 0};
  double ops_1t[4] = {0, 0, 0, 0};
  for (std::size_t ci = 0; ci < std::size(kConfigs); ++ci) {
    const Config& c = kConfigs[ci];
    for (int threads : thread_counts) {
      if (threads > kMaxThreads) continue;
      if (quick && threads > 4) continue;
      RunOut r = run(c, threads, cs);
      std::printf("%-16s %8d %12.0f %12.0f %12.3f %13.3f %13.3f\n", c.name,
                  threads, r.wall_ops, r.smp_ops, r.elapsed, r.dcache_serial,
                  r.depot_serial);
      json.record(c.name, threads, r.smp_ops, r.elapsed);
      if (threads == 1) ops_1t[ci] = r.smp_ops;
      if (threads == 4) ops_4t[ci] = r.smp_ops;
    }
    std::printf("\n");
  }

  // Headline numbers: the SMP build vs the paper's single-lock kernel.
  if (ops_4t[0] > 0 && ops_4t[3] > 0) {
    std::printf("  4-thread smp speedup, sharded+percpu vs global+shared: "
                "%.2fx (target >= 2.5x)\n",
                ops_4t[3] / ops_4t[0]);
  }
  if (ops_1t[0] > 0 && ops_1t[3] > 0) {
    std::printf("  1-thread cost of SMP structures: %.1f%% (sharded+percpu "
                "vs global+shared)\n",
                100.0 * (1.0 - ops_1t[3] / ops_1t[0]));
  }
  return 0;
}
