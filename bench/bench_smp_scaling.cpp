// SMP scaling: parallel syscall dispatch over {global vs sharded dcache}
// x {shared vs per-CPU kmalloc}.
//
// The paper (§3.3) measured the global dcache_lock being hit 8,805
// times/s under PostMark on one CPU and could only *observe* the
// contention. This benchmark turns the observation into the fix's
// evaluation: N threads run a PostMark-style metadata loop (stat-heavy,
// with open/close and create/unlink churn plus Wrapfs-style ~80-byte
// kmalloc traffic per call, §3.2) against one shared Kernel, and the four
// configurations differ only in lock granularity:
//
//   global+shared    1 dcache shard, shared kmalloc free lists (the
//                    paper's single-lock kernel -- the baseline)
//   sharded+shared   16 dcache shards, shared kmalloc
//   global+percpu    1 dcache shard, per-CPU kmalloc magazines
//   sharded+percpu   16 shards + magazines (the SMP build)
//
// Two metrics are reported per run:
//
//   wall ops/s   measured wall-clock throughput on this host. On a host
//                with >= `threads` CPUs this alone shows the scaling; on
//                an oversubscribed host every config serialises onto the
//                same cores and wall throughput converges.
//
//   smp ops/s    the usk SMP model: all syscall work is *executed* and
//                *measured* for real (the usk way -- costs are real CPU
//                work, never sleeps), then the measured work is scheduled
//                onto `threads` virtual CPUs subject to the measured lock
//                serialisation: a lock's critical sections cannot overlap,
//                so each lock contributes a serial term
//                    acquisitions(lock) x calibrated cs time,
//                and modelled elapsed = max(per-CPU work, hottest lock's
//                serial term). Acquisition counts come from the
//                instrumented SpinLocks; cs times are calibrated by timing
//                the actual critical sections single-threaded at startup.
//
// Costs are scaled so the dcache critical section (the simulated hash
// chain walk under the shard lock -- exactly why dcache_lock was the
// paper's hottest lock) dominates the syscall path; this is the
// adversarial configuration for a global lock and the one the paper's E6
// numbers point at.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "sched/scheduler.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

constexpr int kFilesPerDir = 64;
constexpr int kOpsPerThread = 60000;
constexpr int kMaxThreads = 64;
// ALU units executed per dcache op while holding its shard lock (simulated
// hash-chain walk; see Dcache::set_hold_work). High enough that the dcache
// critical section dominates the syscall path, as in the paper's PostMark
// runs where dcache_lock was the top lock.
constexpr std::uint32_t kDcacheHoldWork = 1500;

struct Config {
  const char* name;
  std::size_t dcache_shards;
  bool kmalloc_percpu;
};

constexpr Config kConfigs[] = {
    {"global+shared", 1, false},
    {"sharded+shared", fs::Dcache::kDefaultShards, false},
    {"global+percpu", 1, true},
    {"sharded+percpu", fs::Dcache::kDefaultShards, true},
};

struct RunOut {
  double elapsed = 0;        // measured wall clock on this host
  double wall_ops = 0;       // ops / elapsed
  double smp_elapsed = 0;    // modelled elapsed on `threads` virtual CPUs
  double smp_ops = 0;        // ops / smp_elapsed
  double dcache_serial = 0;  // hottest shard's serial term (s)
  double depot_serial = 0;   // depot lock's serial term (s)
  std::uint64_t dcache_spins = 0;
  std::uint64_t depot_spins = 0;
};

/// Calibrated single-threaded critical-section times (seconds).
struct CsTimes {
  double dcache = 0;  // one locked dcache op (hash-chain walk + map op)
  double depot = 0;   // one locked depot op (alloc or free of ~80 bytes)
};

/// Time the dcache critical section: a hit lookup is key construction
/// (outside the lock) + the locked chain walk + LRU touch; with
/// kDcacheHoldWork the locked part dominates.
CsTimes calibrate() {
  CsTimes cs;
  {
    fs::Dcache dc(64, 1);
    dc.set_hold_work(kDcacheHoldWork);
    dc.insert(1, "probe", 2);
    constexpr int kM = 50000;
    cs.dcache = bench::time_once([&] {
                  for (int i = 0; i < kM; ++i) dc.lookup(1, "probe");
                }) /
                kM;
  }
  {
    // Legacy-mode alloc/free runs entirely under the depot lock, so the
    // call time is the critical-section time.
    vm::PhysMem pm(1 << 10);
    mm::Kmalloc km(pm, /*per_cpu_cache=*/false);
    constexpr int kM = 50000;
    double pair = bench::time_once([&] {
                    for (int i = 0; i < kM; ++i) {
                      mm::BufferHandle h = USK_ALLOC(km, 80);
                      km.free(h);
                    }
                  }) /
                  kM;
    cs.depot = pair / 2.0;
  }
  return cs;
}

/// One worker's slice of the metadata loop: mostly stat (pure dcache +
/// getattr), some open/close, some create/unlink churn. Every call is a
/// full syscall through the boundary; each iteration also does a pair of
/// ~80-byte kmalloc allocations, the mean request size the paper measured
/// for Wrapfs (§3.2).
void worker(uk::Kernel& kernel, uk::Proc& proc, int tid, int ops) {
  char path[64];
  fs::StatBuf st;
  mm::Kmalloc& km = kernel.kmalloc();
  std::uint32_t x = 0x9E3779B9u * static_cast<std::uint32_t>(tid + 1);
  for (int i = 0; i < ops; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    int file = static_cast<int>(x % kFilesPerDir);
    // Wrapfs-style allocator traffic riding on the syscall.
    mm::BufferHandle b1 = USK_ALLOC(km, 32 + (x & 63));
    mm::BufferHandle b2 = USK_ALLOC(km, 96);
    int kind = static_cast<int>(x % 20);
    if (kind < 13) {  // 65%: stat
      std::snprintf(path, sizeof(path), "/t%d/f%d", tid, file);
      proc.stat(path, &st);
    } else if (kind < 18) {  // 25%: open + close
      std::snprintf(path, sizeof(path), "/t%d/f%d", tid, file);
      int fd = proc.open(path, fs::kORdOnly);
      if (fd >= 0) proc.close(fd);
    } else {  // 10%: create + unlink (namespace churn, invalidations)
      std::snprintf(path, sizeof(path), "/t%d/x%d", tid, file);
      int fd = proc.open(path, fs::kOWrOnly | fs::kOCreat);
      if (fd >= 0) proc.close(fd);
      proc.unlink(path);
    }
    km.free(b2);
    km.free(b1);
  }
}

RunOut run(const Config& c, int threads, const CsTimes& cs,
           int ops_per_thread) {
  fs::MemFs fs;
  uk::KernelConfig kcfg;
  kcfg.dcache_shards = c.dcache_shards;
  kcfg.kmalloc_per_cpu_cache = c.kmalloc_percpu;
  // Scaled-down boundary/fs costs: keep the real memcpy/map work but
  // shrink the simulated ALU padding so lock behaviour dominates.
  kcfg.boundary = uk::CostModel{30, 1, 4, 8};
  uk::Kernel kernel(fs, kcfg);
  fs.set_cost_hook(kernel.charge_hook());
  // Hash-chain-walk cost held under the dcache shard lock: this is what
  // made dcache_lock the paper's hottest lock -- the cycles are spent
  // inside the critical section, so a global lock serialises them.
  kernel.vfs().dcache().set_hold_work(kDcacheHoldWork);
  fs::FsCosts costs;
  costs.lookup = 5;
  costs.create = 15;
  costs.remove = 10;
  costs.rename = 15;
  costs.getattr = 8;
  costs.readdir_base = 5;
  costs.readdir_per_entry = 1;
  costs.data_per_kib = 5;
  costs.truncate = 5;
  fs.set_costs(costs);

  // Namespace setup (single-threaded): per-thread top-level directories,
  // as PostMark gives each process its own working directory. Keys hash
  // per thread, so no dcache entry is hot across threads -- the remaining
  // cross-thread cost is purely the lock granularity under test.
  uk::Proc setup(kernel, "setup");
  char path[64];
  for (int t = 0; t < threads; ++t) {
    std::snprintf(path, sizeof(path), "/t%d", t);
    setup.mkdir(path);
    for (int f = 0; f < kFilesPerDir; ++f) {
      std::snprintf(path, sizeof(path), "/t%d/f%d", t, f);
      int fd = setup.open(path, fs::kOWrOnly | fs::kOCreat);
      if (fd >= 0) setup.close(fd);
    }
  }

  // One process (task) per dispatching thread.
  std::vector<std::unique_ptr<uk::Proc>> procs;
  procs.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    procs.push_back(
        std::make_unique<uk::Proc>(kernel, "smp" + std::to_string(t)));
  }

  fs::Dcache& dc = kernel.vfs().dcache();
  std::vector<std::uint64_t> shard_acq0(dc.shard_count());
  for (std::size_t s = 0; s < dc.shard_count(); ++s) {
    shard_acq0[s] = dc.lock(s).acquisitions();
  }
  std::uint64_t dc_spin0 = dc.lock_contended_spins();
  std::uint64_t dp_acq0 = kernel.kmalloc().depot_lock().acquisitions();
  std::uint64_t dp_spin0 = kernel.kmalloc().depot_lock().contended_spins();

  RunOut out;
  out.elapsed = bench::time_once([&] {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back(
          [&, t] { worker(kernel, *procs[t], t, ops_per_thread); });
    }
    for (auto& w : workers) w.join();
  });

  const double total_ops = static_cast<double>(threads) * ops_per_thread;
  out.wall_ops = total_ops / out.elapsed;
  out.dcache_spins = dc.lock_contended_spins() - dc_spin0;
  out.depot_spins = kernel.kmalloc().depot_lock().contended_spins() - dp_spin0;

  // --- SMP model: schedule the measured work on `threads` virtual CPUs.
  // Each lock's critical sections are serial; everything else is parallel.
  std::uint64_t hottest_shard = 0;
  for (std::size_t s = 0; s < dc.shard_count(); ++s) {
    hottest_shard =
        std::max(hottest_shard, dc.lock(s).acquisitions() - shard_acq0[s]);
  }
  out.dcache_serial = static_cast<double>(hottest_shard) * cs.dcache;
  std::uint64_t depot_acq = kernel.kmalloc().depot_lock().acquisitions() -
                            dp_acq0;
  out.depot_serial = static_cast<double>(depot_acq) * cs.depot;
  // On one saturated host CPU, wall clock == total executed work, so
  // wall/threads is the per-virtual-CPU share (workers are symmetric).
  const double per_cpu = out.elapsed / threads;
  out.smp_elapsed = std::max({per_cpu, out.dcache_serial, out.depot_serial});
  out.smp_ops = total_ops / out.smp_elapsed;
  return out;
}

// --- scheduler sections ------------------------------------------------------
//
// The PR-9 scheduler rides the same binary: pooled dispatch (runqueues +
// stealing), the park/wake ping-pong (event-driven wakeups, zero
// interval-polling timeouts), and the §2.3 watchdog on a runaway task.

/// Pooled dispatch: tasks skewed onto 2 home runqueues, 8 workers drain
/// with pick_next -- stealing is what keeps workers 2..7 busy.
void bench_runqueue(bench::JsonWriter& json, bool quick) {
  constexpr int kWorkers = 8;
  const int tasks_n = quick ? 4000 : 20000;
  sched::Scheduler s(/*quantum=*/32, /*cpus=*/kWorkers);
  std::vector<sched::Task*> tasks;
  tasks.reserve(static_cast<std::size_t>(tasks_n));
  for (int i = 0; i < tasks_n; ++i) {
    sched::Task& t = s.spawn("rq" + std::to_string(i));
    s.bind(t, static_cast<std::size_t>(i % 2));
    tasks.push_back(&t);
  }
  for (sched::Task* t : tasks) s.enqueue(*t);
  std::atomic<int> picked{0};
  double elapsed = bench::time_once([&] {
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&] {
        while (picked.load(std::memory_order_relaxed) < tasks_n) {
          sched::Task* t = s.pick_next();
          if (t == nullptr) {
            std::this_thread::yield();
            continue;
          }
          picked.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& w : workers) w.join();
  });
  const double steals = static_cast<double>(s.stats().steals);
  std::printf("  runqueues: %d tasks over %d workers (2 home queues): "
              "%.0f picks/s, %.0f steals, %" PRIu64 " migrations\n",
              tasks_n, kWorkers, tasks_n / elapsed, steals,
              s.stats().migrations.load());
  json.record("rq-picks-8t", kWorkers, tasks_n / elapsed, elapsed);
  json.record("rq-steals-8t", kWorkers, steals, elapsed);
}

/// Two tasks ping-pong through two WaitQueues: every round is a
/// prepare/wake/park handshake, every wakeup is event-driven. The
/// timeouts delta over the WHOLE bench is recorded at the end of main as
/// park-timeout-wakeups: only user-requested deadlines may tick it, and
/// this binary requests none.
void bench_parkwake(bench::JsonWriter& json, bool quick) {
  const int rounds = quick ? 20000 : 100000;
  sched::Scheduler s(/*quantum=*/32, /*cpus=*/2);
  sched::WaitQueue wqa, wqb;
  double elapsed = bench::time_once([&] {
    std::thread b([&] {
      s.enter(s.spawn("pong"));
      for (int i = 0; i < rounds; ++i) {
        sched::WaitQueue::Token tok = wqb.prepare();
        wqa.wake_all();
        (void)s.block(wqb, tok);
      }
      wqa.wake_all();  // release the last park
    });
    s.enter(s.spawn("ping"));
    for (int i = 0; i < rounds; ++i) {
      sched::WaitQueue::Token tok = wqa.prepare();
      wqb.wake_all();
      (void)s.block(wqa, tok);
    }
    wqb.wake_all();
    b.join();
  });
  std::printf("  park/wake ping-pong: %.0f roundtrips/s (%d rounds, "
              "no interval re-poll)\n",
              rounds / elapsed, rounds);
  json.record("parkwake-roundtrips", 2, rounds / elapsed, elapsed);
}

/// The paper's §2.3 defence, unchanged by the new scheduler: a task that
/// burns kernel budget without yielding is killed at a schedule-out.
void bench_watchdog(bench::JsonWriter& json) {
  sched::Scheduler s(/*quantum=*/2);
  sched::Task& t = s.enter(s.spawn("runaway"));
  t.set_kernel_budget(10'000);
  t.enter_kernel();
  int points = 0;
  double elapsed = bench::time_once([&] {
    for (;;) {
      t.charge_kernel(100);
      ++points;
      if (!s.preempt_point()) break;  // watchdog kill
    }
  });
  const double kills = static_cast<double>(s.stats().watchdog_kills);
  std::printf("  watchdog: runaway task killed after %d preempt points "
              "(%.0f kill)\n",
              points, kills);
  json.record("watchdog-kills-runaway", 1, kills, elapsed);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_title(
      "SMP", "parallel dispatch scaling: dcache sharding x per-CPU kmalloc");
  CsTimes cs = calibrate();
  std::printf("  host CPUs: %u | calibrated cs: dcache %.0f ns, depot %.0f "
              "ns (smp ops/s = measured work on N virtual CPUs, lock "
              "critical sections serialised)\n",
              std::thread::hardware_concurrency(), cs.dcache * 1e9,
              cs.depot * 1e9);

  bench::JsonWriter json("bench_smp_scaling");
  const std::uint64_t timeouts0 = sched::waitqueue_stats().timeouts;
  // Total work is capped at 8x kOpsPerThread: wider runs shrink the
  // per-thread slice so 64 vCPUs costs what 8 did.
  const int thread_counts[] = {1, 2, 4, 8, 16, 32, 64};

  std::printf("\n%-16s %8s %12s %12s %12s %13s %13s\n", "config", "threads",
              "wall ops/s", "smp ops/s", "elapsed(s)", "dcache ser(s)",
              "depot ser(s)");
  double ops_8t[4] = {0, 0, 0, 0};
  double ops_1t[4] = {0, 0, 0, 0};
  for (std::size_t ci = 0; ci < std::size(kConfigs); ++ci) {
    const Config& c = kConfigs[ci];
    for (int threads : thread_counts) {
      if (threads > kMaxThreads) continue;
      // Quick mode still emits the 8-thread rows: the speedup gate below
      // is checked by run_tier1.sh sched against the --quick JSON.
      if (quick && threads > 8) continue;
      const int base = quick ? kOpsPerThread / 4 : kOpsPerThread;
      const int ops = threads <= 8 ? base : base * 8 / threads;
      RunOut r = run(c, threads, cs, ops);
      std::printf("%-16s %8d %12.0f %12.0f %12.3f %13.3f %13.3f\n", c.name,
                  threads, r.wall_ops, r.smp_ops, r.elapsed, r.dcache_serial,
                  r.depot_serial);
      json.record(c.name, threads, r.smp_ops, r.elapsed);
      if (threads == 1) ops_1t[ci] = r.smp_ops;
      if (threads == 8) ops_8t[ci] = r.smp_ops;
    }
    std::printf("\n");
  }

  // Headline numbers: the SMP build vs the paper's single-lock kernel.
  if (ops_8t[0] > 0 && ops_8t[3] > 0) {
    const double speedup = ops_8t[3] / ops_8t[0];
    std::printf("  8-thread smp speedup, sharded+percpu vs global+shared: "
                "%.2fx (target >= 6x)\n",
                speedup);
    json.record("smp-speedup-8t-x100", 8, speedup * 100.0, 0.0);
  }
  if (ops_1t[0] > 0 && ops_1t[3] > 0) {
    std::printf("  1-thread cost of SMP structures: %.1f%% (sharded+percpu "
                "vs global+shared)\n",
                100.0 * (1.0 - ops_1t[3] / ops_1t[0]));
  }

  std::printf("\n");
  bench_runqueue(json, quick);
  bench_parkwake(json, quick);
  bench_watchdog(json);

  // Event-driven acceptance: nothing in this binary asked for a deadline,
  // so a single timeout here would mean an interval re-poll crept back in.
  const double timeout_wakeups =
      static_cast<double>(sched::waitqueue_stats().timeouts - timeouts0);
  std::printf("  park timeouts over the whole bench: %.0f (must be 0: all "
              "wakeups are event-driven)\n",
              timeout_wakeups);
  json.record("park-timeout-wakeups", 1, timeout_wakeups, 0.0);
  return 0;
}
