// E5 (paper §3.2): Kefence overhead on an instrumented Wrapfs.
//
// "We compiled the Am-utils package over Wrapfs and compared the time
// overhead of the instrumented version of Wrapfs with vanilla Wrapfs. The
// instrumented version of Wrapfs had an overhead of 1.4% elapsed time over
// normal Wrapfs. ... the maximum number of outstanding allocated pages
// during the compilation of Am-utils over the instrumented version of
// Wrapfs was 2,085 and the average size of each memory allocation was 80
// bytes."
//
// Vanilla = WrapFs-on-MemFs with kmalloc private data; instrumented = the
// same stack with every WrapFs allocation routed through Kefence
// (vmalloc + guardian PTEs, all accesses MMU-checked, TLB contention
// modelled). Overheads for the vfree hash table and allocator are also
// broken out.
#include <cinttypes>

#include "bench/common.hpp"
#include "fs/memfs.hpp"
#include "fs/wrapfs.hpp"
#include "kefence/kefence.hpp"
#include "mm/kmalloc.hpp"
#include "uk/userlib.hpp"
#include "workload/amutils.hpp"

namespace {

using namespace usk;

workload::AmUtilsConfig build_cfg() {
  workload::AmUtilsConfig cfg;
  cfg.source_files = 420;  // Am-utils has ~500 compilation units
  cfg.header_files = 50;
  return cfg;
}

double run_build(fs::FileSystem& stack, fs::MemFs& lower) {
  uk::Kernel kernel(stack);
  lower.set_cost_hook(kernel.charge_hook());
  uk::Proc proc(kernel, "make");
  workload::AmUtilsBuild build(build_cfg());
  build.populate(proc);
  workload::AmUtilsBuild warm(build_cfg());
  warm.build(proc);  // warm caches/pools; results identical either way
  return bench::time_best(3, [&] {
    workload::AmUtilsReport rep = build.build(proc);
    if (rep.errors != 0) std::abort();
  });
}

}  // namespace

int main() {
  bench::print_title("E5", "Kefence-instrumented Wrapfs, Am-utils build "
                           "(paper: +1.4% elapsed; 2,085 peak pages; 80 B "
                           "mean allocation)");
  // ops_per_sec is Am-utils builds per second; elapsed is one build.
  bench::JsonWriter json("bench_kefence");

  // Vanilla: kmalloc-backed WrapFs.
  double vanilla;
  double vanilla_mean_alloc;
  {
    vm::PhysMem pm(1 << 15);
    mm::Kmalloc km(pm);
    fs::MemFs lower;
    fs::WrapFs wrap(lower, km);
    vanilla = run_build(wrap, lower);
    vanilla_mean_alloc = km.stats().mean_request_size();
  }

  // Instrumented: Kefence-backed WrapFs.
  double instrumented;
  std::uint64_t peak_pages, overflows;
  double mean_alloc;
  {
    vm::PhysMem pm(1 << 15);
    vm::AddressSpace as(pm, "kefence-vm");
    // 64-bit vmalloc area: "modern 64-bit architectures make the address
    // space a virtually inexhaustible resource" (paper §3.2).
    mm::Vmalloc vmalloc(as, 0xFFFF900000000000ull, 1ull << 22);
    kefence::Kefence kef(vmalloc);
    // Model hardware page-walk cost so vmalloc's TLB contention is real.
    base::WorkEngine tlb_engine;
    as.set_tlb_miss_cost(&tlb_engine, 40);
    fs::MemFs lower;
    fs::WrapFs wrap(lower, kef);
    instrumented = run_build(wrap, lower);
    peak_pages = kef.stats().peak_outstanding_pages;
    mean_alloc = kef.stats().mean_request_size();
    overflows = kef.kstats().overflows;
  }

  std::printf("%-28s %12s %12s %10s\n", "configuration", "elapsed(s)",
              "overhead", "");
  std::printf("%-28s %12.4f %12s\n", "vanilla wrapfs (kmalloc)", vanilla,
              "--");
  std::printf("%-28s %12.4f %+11.1f%%   (paper: +1.4%%)\n",
              "kefence wrapfs (vmalloc)", instrumented,
              100.0 * (bench::slowdown(vanilla, instrumented) - 1.0));
  std::printf("  peak outstanding pages     : %" PRIu64
              "   (paper: 2,085)\n", peak_pages);
  std::printf("  mean allocation size       : %.0f B (kefence) / %.0f B "
              "(kmalloc)   (paper: 80 B)\n", mean_alloc, vanilla_mean_alloc);
  std::printf("  overflows detected         : %" PRIu64 " (build is clean)\n",
              overflows);
  json.record("vanilla-wrapfs", 1, 1.0 / vanilla, vanilla);
  json.record("kefence-wrapfs", 1, 1.0 / instrumented, instrumented);

  // Breakout: the vfree hash-table fix (paper: "To speed up the default
  // vfree function we have added a hash table").
  {
    vm::PhysMem pm(1 << 14);
    vm::AddressSpace as(pm, "hash");
    mm::Vmalloc with_hash(as, 0x1000000, 1 << 13, /*use_hash_index=*/true);
    vm::PhysMem pm2(1 << 14);
    vm::AddressSpace as2(pm2, "nohash");
    mm::Vmalloc no_hash(as2, 0x1000000, 1 << 13, /*use_hash_index=*/false);

    auto churn = [](mm::Vmalloc& v) {
      std::vector<vm::VAddr> live;
      for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < 200; ++i) live.push_back(v.alloc(80));
        for (int i = 0; i < 200; ++i) {
          v.free(live.back());
          live.pop_back();
        }
      }
    };
    double t_hash = bench::time_best(3, [&] { churn(with_hash); });
    double t_list = bench::time_best(3, [&] { churn(no_hash); });
    std::printf("  vfree lookup steps         : hash %" PRIu64
                " vs linear %" PRIu64 "  (wall %.4fs vs %.4fs)\n",
                with_hash.stats().lookup_steps, no_hash.stats().lookup_steps,
                t_hash, t_list);
  }

  // Ablation: selective protection (paper §3.5 future work, "dynamically
  // decide which memory should be protected at runtime"). Guard every Nth
  // allocation; the rest take the kmalloc fast path.
  std::printf("\n  selective protection (guard 1-in-N allocations):\n");
  std::printf("  %-10s %12s %10s %14s %14s\n", "interval", "elapsed(s)",
              "overhead", "guarded", "passthrough");
  for (std::uint32_t interval : {1u, 2u, 4u, 16u}) {
    vm::PhysMem pm(1 << 15);
    vm::AddressSpace as(pm, "kef-sampled");
    mm::Vmalloc vmalloc(as, 0xFFFF900000000000ull, 1ull << 22);
    mm::Kmalloc fallback(pm);
    kefence::KefenceOptions opt;
    opt.sample_interval = interval;
    kefence::Kefence kef(vmalloc, opt, &fallback);
    base::WorkEngine tlb_engine;
    as.set_tlb_miss_cost(&tlb_engine, 40);
    fs::MemFs lower;
    fs::WrapFs wrap(lower, kef);
    double t = run_build(wrap, lower);
    std::printf("  1-in-%-5u %12.4f %+9.1f%% %14" PRIu64 " %14" PRIu64 "\n",
                interval, t, 100.0 * (bench::slowdown(vanilla, t) - 1.0),
                kef.kstats().guarded_allocs,
                kef.kstats().passthrough_allocs);
    json.record("sampled-1-in-" + std::to_string(interval), 1, 1.0 / t, t);
  }
  return 0;
}
