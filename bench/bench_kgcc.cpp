// E7 (paper §3.4): KGCC-instrumented filesystem overhead.
//
// "We compared the performance of a KGCC-compiled Reiserfs module to a
// vanilla GCC-compiled module on Linux 2.6.7. We ran a CPU-intensive
// benchmark, an Am-utils compile. The system time for KGCC-compiled
// Reiserfs was 33% greater than vanilla GCC, while the elapsed time was
// 20% greater. We also ran the I/O-intensive benchmark PostMark. In this
// case, the system time was 14 times greater for KGCC-compiled Reiserfs
// while the elapsed time was 3 times greater."
//
// Vanilla = JournalFs<RawPtrPolicy> (plain pointers); KGCC =
// JournalFs<BccPtrPolicy> (every dereference and pointer-arithmetic step
// goes through the bounds-checking runtime's splay-tree object map).
// "System" = wall time inside system calls; "elapsed" = total wall time.
#include <cinttypes>

#include "bcc/checked_ptr.hpp"
#include "bench/common.hpp"
#include "fs/journalfs.hpp"
#include "uk/userlib.hpp"
#include "workload/amutils.hpp"
#include "workload/postmark.hpp"

namespace {

using namespace usk;

struct RunResult {
  double elapsed = 0;
  double system = 0;  // seconds inside syscalls
};

template <typename Policy>
RunResult run_build() {
  fs::JournalFs<Policy> jfs(2048, 1 << 14, 512);
  uk::Kernel kernel(jfs);
  jfs.set_cost_hook(kernel.charge_hook());
  uk::Proc proc(kernel, "make");
  workload::AmUtilsConfig cfg;
  cfg.source_files = 60;
  cfg.header_files = 15;
  workload::AmUtilsBuild build(cfg);
  build.populate(proc);
  std::uint64_t sys0 = proc.task().kernel_wall_ns;
  RunResult r;
  r.elapsed = bench::time_once([&] {
    workload::AmUtilsReport rep = build.build(proc);
    if (rep.errors != 0) std::abort();
  });
  r.system = static_cast<double>(proc.task().kernel_wall_ns - sys0) * 1e-9;
  return r;
}

template <typename Policy>
RunResult run_postmark() {
  fs::JournalFs<Policy> jfs(2048, 1 << 14, 512);
  uk::Kernel kernel(jfs);
  jfs.set_cost_hook(kernel.charge_hook());
  uk::Proc proc(kernel, "postmark");
  workload::PostMarkConfig cfg;
  cfg.file_count = 120;
  cfg.transactions = 800;
  std::uint64_t sys0 = proc.task().kernel_wall_ns;
  RunResult r;
  r.elapsed = bench::time_once([&] {
    workload::PostMark pm(cfg);
    workload::PostMarkReport rep = pm.run(proc);
    if (rep.errors != 0) std::abort();
  });
  r.system = static_cast<double>(proc.task().kernel_wall_ns - sys0) * 1e-9;
  return r;
}

void report(const char* workload_name, const RunResult& vanilla,
            const RunResult& kgcc, const char* paper) {
  std::printf("%-12s %10.3f %10.3f %8.2fx | %10.4f %10.4f %8.2fx   %s\n",
              workload_name, vanilla.elapsed, kgcc.elapsed,
              bench::slowdown(vanilla.elapsed, kgcc.elapsed), vanilla.system,
              kgcc.system, bench::slowdown(vanilla.system, kgcc.system),
              paper);
}

}  // namespace

int main() {
  bench::print_title("E7", "KGCC-instrumented JournalFs (paper: build sys "
                           "+33%/elapsed +20%; PostMark sys 14x/elapsed 3x)");
  std::printf("%-12s %10s %10s %9s | %10s %10s %9s\n", "workload",
              "van-ela(s)", "kgcc-ela", "ratio", "van-sys(s)", "kgcc-sys",
              "ratio");

  // ops_per_sec is workload runs per second; elapsed is one run.
  bench::JsonWriter json("bench_kgcc");
  bcc::Runtime& rt = bcc::Runtime::instance();

  RunResult bv = run_build<fs::RawPtrPolicy>();
  std::uint64_t checks0 = rt.stats().checks;
  RunResult bk = run_build<bcc::BccPtrPolicy>();
  std::uint64_t build_checks = rt.stats().checks - checks0;
  report("am-utils", bv, bk, "paper: elapsed +20%, sys +33%");

  RunResult pv = run_postmark<fs::RawPtrPolicy>();
  checks0 = rt.stats().checks;
  RunResult pk = run_postmark<bcc::BccPtrPolicy>();
  std::uint64_t pm_checks = rt.stats().checks - checks0;
  report("postmark", pv, pk, "paper: elapsed 3x, sys 14x");

  json.record("amutils-vanilla", 1, 1.0 / bv.elapsed, bv.elapsed);
  json.record("amutils-kgcc", 1, 1.0 / bk.elapsed, bk.elapsed);
  json.record("postmark-vanilla", 1, 1.0 / pv.elapsed, pv.elapsed);
  json.record("postmark-kgcc", 1, 1.0 / pk.elapsed, pk.elapsed);

  std::printf("  runtime checks executed    : build %" PRIu64
              ", postmark %" PRIu64 "\n", build_checks, pm_checks);
  std::printf("  map consults / cache hits  : %" PRIu64 " / %" PRIu64 "\n",
              rt.stats().map_consults, rt.stats().cache_hits);
  if (!rt.errors().empty()) std::abort();  // correct fs code must be clean
  bench::print_note("our substrate's system time is entirely the "
                    "instrumented fs, so the build's system ratio exceeds "
                    "the paper's +33% (their compile spent most system time "
                    "in uninstrumented subsystems); the metadata-vs-CPU "
                    "contrast is preserved");
  return 0;
}
