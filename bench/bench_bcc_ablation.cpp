// A2 (ablation, paper §3.4): KGCC check-reduction techniques.
//
// "During compilation, KGCC employs heuristics to eliminate unnecessary
// checks. ... common subexpression elimination allowed us to reduce the
// number of checks inserted by more than half for typical kernel code."
// and (future work, §3.5): "instrumentation that can be deactivated when
// it has executed a sufficient number of times, reclaiming performance
// quickly as the confidence level for frequently-executed code becomes
// acceptable."
//
// Workload: byte-wise sweeps over a 64 KiB buffer through checked
// pointers (the JournalFs journal-copy hot path). Configurations:
//   raw            -- plain pointers (vanilla GCC)
//   full checks    -- every access consults the splay-tree object map
//   bounds cache   -- the CSE analogue: repeat hits skip the map
//   deinstrument   -- sites self-disable after N clean checks
#include <cinttypes>
#include <cstring>

#include "bcc/checked_ptr.hpp"
#include "bench/common.hpp"

namespace {

using namespace usk;

constexpr std::size_t kBufSize = 64 * 1024;
constexpr int kSweeps = 50;

double run_raw(std::uint64_t* sink) {
  std::vector<std::uint8_t> buf(kBufSize, 1);
  std::uint8_t* p = buf.data();
  return bench::time_once([&] {
    std::uint64_t sum = 0;
    for (int s = 0; s < kSweeps; ++s) {
      for (std::size_t i = 0; i < kBufSize; ++i) sum += p[i];
    }
    *sink = sum;
  });
}

struct CheckedResult {
  double wall;
  std::uint64_t checks;
  std::uint64_t consults;
  std::uint64_t skipped;
};

CheckedResult run_checked(const bcc::RuntimeOptions& opt,
                          std::uint64_t* sink) {
  bcc::Runtime rt(opt);
  void* mem = rt.bcc_malloc(kBufSize, "ablation.c", 1);
  std::memset(mem, 1, kBufSize);
  bcc::checked_ptr<std::uint8_t> p(static_cast<std::uint8_t*>(mem), &rt,
                                   rt.make_site());
  CheckedResult res;
  res.wall = bench::time_once([&] {
    std::uint64_t sum = 0;
    for (int s = 0; s < kSweeps; ++s) {
      for (std::size_t i = 0; i < kBufSize; ++i) sum += p[i];
    }
    *sink = sum;
  });
  res.checks = rt.stats().checks;
  res.consults = rt.stats().map_consults;
  res.skipped = rt.stats().skipped_disabled;
  rt.bcc_free(mem);
  return res;
}

}  // namespace

int main() {
  bench::print_title("A2", "KGCC check-elimination ablation (paper: CSE "
                           "halves inserted checks; deinstrumentation "
                           "reclaims performance)");
  std::printf("%-22s %10s %10s %12s %12s %12s\n", "configuration", "wall(s)",
              "vs raw", "checks", "map-consults", "skipped");

  std::uint64_t sink = 0;
  double raw = bench::time_best(3, [&] {
    std::uint64_t s;
    run_raw(&s);
    sink += s;
  });
  // time_best re-times the lambda; get raw's own time directly instead.
  raw = run_raw(&sink);
  std::printf("%-22s %10.4f %9s %12s %12s %12s\n", "raw pointers", raw, "1x",
              "0", "0", "0");

  auto row = [&](const char* name, const bcc::RuntimeOptions& opt) {
    CheckedResult r = run_checked(opt, &sink);
    std::printf("%-22s %10.4f %8.1fx %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                "\n",
                name, r.wall, bench::slowdown(raw, r.wall), r.checks,
                r.consults, r.skipped);
  };

  bcc::RuntimeOptions full;
  full.cache_bounds = false;
  full.collect_errors = false;
  row("full checks", full);

  bcc::RuntimeOptions cse;
  cse.cache_bounds = true;
  cse.collect_errors = false;
  row("bounds cache (CSE)", cse);

  bcc::RuntimeOptions deinst;
  deinst.cache_bounds = true;
  deinst.deinstrument_after = 100000;  // ~1.5 sweeps of confidence
  deinst.collect_errors = false;
  row("deinstrument @100k", deinst);

  if (sink == 0) return 1;  // keep the sums observable
  bench::print_note("map consults are splay-tree lookups; the bounds cache "
                    "removes them from repeat accesses, deinstrumentation "
                    "removes the checks themselves");
  return 0;
}
