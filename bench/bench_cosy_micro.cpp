// E3 (paper §2.3): Cosy micro-benchmarks.
//
// "Our micro-benchmarks show that individual system calls are sped up by
// 40-90% for common CPU-bound user applications."
//
// Each row batches N invocations of one syscall pattern: classic = N
// separate system calls; Cosy = one compound executing the same N
// operations in the kernel with zero-copy I/O. Improvement is in kernel
// work units charged to the task (the syscall cost itself), with wall
// time as a cross-check.
#include <cinttypes>
#include <functional>
#include <string>

#include "bench/common.hpp"
#include "cosy/compiler.hpp"
#include "cosy/exec.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

struct Fixture {
  Fixture() : kernel(fs), proc(kernel, "micro"), ext(kernel), shared(1 << 16) {
    fs.set_cost_hook(kernel.charge_hook());
    // A 1 MiB data file for the I/O patterns.
    int fd = proc.open("/data", fs::kOWrOnly | fs::kOCreat);
    std::vector<char> block(4096, 'm');
    for (int i = 0; i < 256; ++i) proc.write(fd, block.data(), block.size());
    proc.close(fd);
  }
  fs::MemFs fs;
  uk::Kernel kernel;
  uk::Proc proc;
  cosy::CosyExtension ext;
  cosy::SharedBuffer shared;
};

struct Row {
  const char* name;
  std::function<void(Fixture&)> classic;
  const char* cosy_src;  // compiled by the Cosy compiler
};

void report(Fixture& f, const Row& row, bench::JsonWriter& json) {
  // Classic.
  std::uint64_t k0 = f.proc.task().times().kernel;
  double classic_wall = bench::time_once([&] { row.classic(f); });
  std::uint64_t classic_units = f.proc.task().times().kernel - k0;

  // Cosy.
  cosy::CompileResult cr = cosy::compile(row.cosy_src);
  if (!cr.ok) {
    std::printf("%-24s COMPILE ERROR: %s\n", row.name, cr.error.c_str());
    return;
  }
  std::uint64_t c0 = f.proc.task().times().kernel;
  double cosy_wall = bench::time_once([&] {
    cosy::CosyResult r = f.ext.execute(f.proc.process(), cr.compound,
                                       f.shared);
    if (r.ret != 0) std::abort();
  });
  std::uint64_t cosy_units = f.proc.task().times().kernel - c0;

  // ops_per_sec is repurposed as kernel work units (the paper's metric);
  // wall time rides along in elapsed_s.
  json.record(std::string("classic/") + row.name, 1,
              static_cast<double>(classic_units), classic_wall);
  json.record(std::string("cosy/") + row.name, 1,
              static_cast<double>(cosy_units), cosy_wall);

  std::printf("%-24s %12" PRIu64 " %12" PRIu64 " %9.1f%% %9.1f%%\n",
              row.name, classic_units, cosy_units,
              bench::improvement_pct(static_cast<double>(classic_units),
                                     static_cast<double>(cosy_units)),
              bench::improvement_pct(classic_wall, cosy_wall));
}

}  // namespace

int main() {
  bench::print_title("E3", "Cosy micro-benchmarks (paper: individual system "
                           "calls sped up 40-90%)");
  bench::JsonWriter json("bench_cosy_micro");
  std::printf("%-24s %12s %12s %10s %10s\n", "pattern", "classic(u)",
              "cosy(u)", "units%", "wall%");

  std::vector<Row> rows;

  rows.push_back(Row{
      "getpid x1000",
      [](Fixture& f) {
        for (int i = 0; i < 1000; ++i) f.proc.getpid();
      },
      "for (int i = 0; i < 1000; i = i + 1) { getpid(); } return 0;"});

  rows.push_back(Row{
      "read 4KiB x256",
      [](Fixture& f) {
        int fd = f.proc.open("/data", fs::kORdOnly);
        std::vector<char> buf(4096);
        for (int i = 0; i < 256; ++i) {
          f.proc.read(fd, buf.data(), buf.size());
        }
        f.proc.close(fd);
      },
      "int fd = open(\"/data\", O_RDONLY);"
      "for (int i = 0; i < 256; i = i + 1) { read(fd, @0, 4096); }"
      "close(fd); return 0;"});

  rows.push_back(Row{
      "lseek+read 1KiB x256",
      [](Fixture& f) {
        int fd = f.proc.open("/data", fs::kORdOnly);
        std::vector<char> buf(1024);
        for (int i = 0; i < 256; ++i) {
          f.proc.lseek(fd, (i * 37 % 1000) * 1024, fs::kSeekSet);
          f.proc.read(fd, buf.data(), buf.size());
        }
        f.proc.close(fd);
      },
      "int fd = open(\"/data\", O_RDONLY);"
      "for (int i = 0; i < 256; i = i + 1) {"
      "  lseek(fd, (i * 37 % 1000) * 1024, SEEK_SET);"
      "  read(fd, @0, 1024);"
      "}"
      "close(fd); return 0;"});

  rows.push_back(Row{
      "write 1KiB x256",
      [](Fixture& f) {
        int fd = f.proc.open("/wout", fs::kOWrOnly | fs::kOCreat);
        std::vector<char> buf(1024, 'w');
        for (int i = 0; i < 256; ++i) {
          f.proc.write(fd, buf.data(), buf.size());
        }
        f.proc.close(fd);
      },
      "int fd = open(\"/wout2\", O_WRONLY + O_CREAT);"
      "for (int i = 0; i < 256; i = i + 1) { write(fd, @0, 1024); }"
      "close(fd); return 0;"});

  rows.push_back(Row{
      "stat x256",
      [](Fixture& f) {
        fs::StatBuf st;
        for (int i = 0; i < 256; ++i) f.proc.stat("/data", &st);
      },
      "for (int i = 0; i < 256; i = i + 1) { stat(\"/data\", @0); }"
      "return 0;"});

  rows.push_back(Row{
      "open-fstat-close x128",
      [](Fixture& f) {
        fs::StatBuf st;
        for (int i = 0; i < 128; ++i) {
          int fd = f.proc.open("/data", fs::kORdOnly);
          f.proc.fstat(fd, &st);
          f.proc.close(fd);
        }
      },
      "for (int i = 0; i < 128; i = i + 1) {"
      "  int fd = open(\"/data\", O_RDONLY);"
      "  fstat(fd, @0);"
      "  close(fd);"
      "}"
      "return 0;"});

  rows.push_back(Row{
      "open-read-close x128",
      [](Fixture& f) {
        std::vector<char> buf(4096);
        for (int i = 0; i < 128; ++i) {
          int fd = f.proc.open("/data", fs::kORdOnly);
          f.proc.read(fd, buf.data(), buf.size());
          f.proc.close(fd);
        }
      },
      "for (int i = 0; i < 128; i = i + 1) {"
      "  int fd = open(\"/data\", O_RDONLY);"
      "  read(fd, @0, 4096);"
      "  close(fd);"
      "}"
      "return 0;"});

  for (auto& row : rows) {
    Fixture f;  // fresh kernel per pattern for clean accounting
    report(f, row, json);
  }
  usk::bench::print_note("units = kernel work units charged to the task; "
                         "one compound replaces N boundary crossings");
  return 0;
}
