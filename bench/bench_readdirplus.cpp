// E1 (paper §2.2): readdirplus vs. readdir + per-file stat.
//
// "We benchmarked readdirplus against a program which did a readdir
// followed by stat calls for each file. We increased the number of files
// by powers of 10 from 10 to 100,000 and found that the improvements were
// fairly consistent: elapsed, system, and user times improved 60.6-63.8%,
// 55.7-59.3%, and 82.8-84.0%, respectively."
//
// Metric mapping: "system" = kernel work units charged to the task,
// "user" = user work units (dirent decoding, path building), "elapsed" =
// wall-clock seconds of the whole run on the simulated kernel.
#include <cinttypes>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "consolidation/newcalls.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

// User-mode work the application does per directory entry (paper's test
// program: parse the dirent, build the path, call stat, check errors).
constexpr std::uint64_t kUserPerEntryClassic = 60;
// readdirplus consumers only walk the packed records.
constexpr std::uint64_t kUserPerEntryPlus = 10;

struct Times {
  double elapsed = 0;
  std::uint64_t user = 0;
  std::uint64_t system = 0;
};

Times run_classic(uk::Kernel& kernel, uk::Proc& proc, const char* dir,
                  std::size_t expect) {
  Times t;
  std::uint64_t u0 = proc.task().times().user;
  std::uint64_t k0 = proc.task().times().kernel;
  t.elapsed = bench::time_once([&] {
    auto entries = proc.list_dir(dir, 4096);
    fs::StatBuf st;
    std::string path;
    for (const auto& e : entries) {
      proc.charge_user(kUserPerEntryClassic);
      path.assign(dir);
      path += '/';
      path += e.name;
      proc.stat(path.c_str(), &st);
    }
    if (entries.size() != expect) std::abort();
  });
  t.user = proc.task().times().user - u0;
  t.system = proc.task().times().kernel - k0;
  (void)kernel;
  return t;
}

Times run_plus(uk::Kernel& kernel, uk::Proc& proc, const char* dir,
               std::size_t expect) {
  Times t;
  std::uint64_t u0 = proc.task().times().user;
  std::uint64_t k0 = proc.task().times().kernel;
  t.elapsed = bench::time_once([&] {
    std::vector<std::byte> buf(4096);
    std::uint64_t cookie = 0;
    std::size_t seen = 0;
    for (;;) {
      SysRet n = consolidation::sys_readdirplus(
          kernel, proc.process(), dir, buf.data(), buf.size(), &cookie);
      if (n <= 0) break;
      std::vector<std::pair<uk::UserDirent, fs::StatBuf>> batch;
      uk::decode_dirents_plus(
          std::span(buf.data(), static_cast<std::size_t>(n)), &batch);
      proc.charge_user(kUserPerEntryPlus * batch.size());
      seen += batch.size();
    }
    if (seen != expect) std::abort();
  });
  t.user = proc.task().times().user - u0;
  t.system = proc.task().times().kernel - k0;
  return t;
}

}  // namespace

int main() {
  bench::print_title("E1", "readdirplus vs readdir+stat (paper: elapsed "
                           "60.6-63.8%, system 55.7-59.3%, user 82.8-84.0%)");
  bench::JsonWriter json("bench_readdirplus");
  std::printf("%9s %12s %12s %10s %10s %10s\n", "files", "classic(s)",
              "rdplus(s)", "elapsed%", "system%", "user%");

  for (std::size_t files : {10u, 100u, 1000u, 10000u, 100000u}) {
    fs::MemFs fs;
    uk::Kernel kernel(fs);
    fs.set_cost_hook(kernel.charge_hook());
    uk::Proc proc(kernel, "e1");

    proc.mkdir("/dir");
    char data[64] = {};
    for (std::size_t i = 0; i < files; ++i) {
      std::string p = "/dir/file" + std::to_string(i);
      int fd = proc.open(p.c_str(), fs::kOWrOnly | fs::kOCreat);
      proc.write(fd, data, sizeof(data));
      proc.close(fd);
    }

    Times classic = run_classic(kernel, proc, "/dir", files);
    Times plus = run_plus(kernel, proc, "/dir", files);

    // files/second processed by each strategy, at this directory size.
    json.record("classic/" + std::to_string(files), 1,
                static_cast<double>(files) / classic.elapsed, classic.elapsed);
    json.record("readdirplus/" + std::to_string(files), 1,
                static_cast<double>(files) / plus.elapsed, plus.elapsed);

    std::printf("%9zu %12.4f %12.4f %9.1f%% %9.1f%% %9.1f%%\n", files,
                classic.elapsed, plus.elapsed,
                bench::improvement_pct(classic.elapsed, plus.elapsed),
                bench::improvement_pct(static_cast<double>(classic.system),
                                       static_cast<double>(plus.system)),
                bench::improvement_pct(static_cast<double>(classic.user),
                                       static_cast<double>(plus.user)));
  }
  bench::print_note("system = kernel work units; user = user work units; "
                    "elapsed = wall time on the simulated kernel");
  return 0;
}
