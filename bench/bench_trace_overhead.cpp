// T1: ktrace overhead -- the observability tax.
//
// Two claims to prove:
//
//  1. DISABLED tracepoints are free (<1% on a null syscall). A disabled
//     site is one relaxed atomic load + predicted branch; this bench
//     measures that check directly, counts how many checks one getpid()
//     crosses (by enabling the tracer and counting the events one getpid
//     emits), and reports the product against the measured null-syscall
//     time. It also A/Bs the same loop disabled vs enabled.
//
//  2. ENABLED tracing is lossless under parallel dispatch. 4 threads
//     hammer syscalls on their own CPUs; afterwards the merged drain must
//     equal the per-CPU emit counters exactly (drained == emitted -
//     dropped, dropped == 0 with adequately sized rings) and the sequence
//     numbers must come out sorted.
#include <cinttypes>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "trace/ktrace.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

constexpr int kNullCalls = 200000;
constexpr int kCheckLoops = 20000000;

double null_syscall_ns(uk::Proc& proc, int calls) {
  double s = bench::time_best(3, [&] {
    for (int i = 0; i < calls; ++i) proc.getpid();
  });
  return s * 1e9 / calls;
}

}  // namespace

int main() {
  bench::print_title("T1", "ktrace overhead: disabled tracepoint cost and "
                           "lossless enabled tracing");
  bench::JsonWriter json("bench_trace_overhead");

  fs::MemFs rootfs;
  uk::Kernel kernel(rootfs);
  rootfs.set_cost_hook(kernel.charge_hook());
  uk::Proc proc(kernel, "trace-bench");

  // --- 1a. per-check cost of a disabled tracepoint -------------------------
  trace::ktrace().disable();
  volatile unsigned sink = 0;
  double check_s = bench::time_best(3, [&] {
    unsigned acc = 0;
    for (int i = 0; i < kCheckLoops; ++i) {
      acc += static_cast<unsigned>(trace::enabled());
    }
    sink += acc;
  });
  const double check_ns = check_s * 1e9 / kCheckLoops;

  // --- 1b. how many tracepoint checks does one getpid() cross? -------------
  // Enable briefly and count the events a single getpid emits: every
  // emitted event was one enabled check, and the disabled path checks the
  // same sites.
  trace::ktrace().reset();
  trace::ktrace().enable();
  proc.getpid();
  trace::ktrace().disable();
  const std::uint64_t checks_per_call = trace::ktrace().emitted();
  (void)trace::ktrace().drain();

  // --- 1c. null syscall with tracing disabled ------------------------------
  trace::ktrace().reset();
  const double null_ns = null_syscall_ns(proc, kNullCalls);
  const double overhead_pct =
      100.0 * (static_cast<double>(checks_per_call) * check_ns) / null_ns;

  std::printf("%-34s %12.3f ns\n", "disabled tracepoint check", check_ns);
  std::printf("%-34s %12" PRIu64 "\n", "checks per null syscall",
              checks_per_call);
  std::printf("%-34s %12.1f ns\n", "null syscall (tracing off)", null_ns);
  std::printf("%-34s %12.3f %%   %s (budget 1%%)\n", "disabled overhead",
              overhead_pct, overhead_pct < 1.0 ? "PASS" : "FAIL");
  json.record("disabled_check_ns", 1, 1e9 / check_ns, check_s);
  json.record("null_syscall_disabled", 1, 1e9 / null_ns,
              null_ns * kNullCalls / 1e9);

  // --- 1d. A/B: the same loop with tracing enabled -------------------------
  trace::ktrace().reset();
  trace::ktrace().configure(1 << 16);
  trace::ktrace().enable();
  const double null_on_ns = null_syscall_ns(proc, 20000);
  trace::ktrace().disable();
  trace::ktrace().reset();
  std::printf("%-34s %12.1f ns  (x%.2f)\n", "null syscall (tracing on)",
              null_on_ns, null_on_ns / null_ns);
  json.record("null_syscall_enabled", 1, 1e9 / null_on_ns,
              null_on_ns * 20000 / 1e9);

  // --- 2. lossless enabled tracing under 4-thread dispatch -----------------
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 4000;
  trace::ktrace().configure(1 << 16);  // >> events per CPU: no drops
  trace::ktrace().enable();

  double par_s = bench::time_once([&] {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&kernel, t] {
        uk::Proc p(kernel, "w" + std::to_string(t));
        std::string path = "/t" + std::to_string(t);
        int fd = p.open(path.c_str(), fs::kOWrOnly | fs::kOCreat);
        char block[256] = {};
        fs::StatBuf st;
        for (int i = 0; i < kCallsPerThread; ++i) {
          switch (i % 4) {
            case 0: p.getpid(); break;
            case 1: p.write(fd, block, sizeof block); break;
            case 2: p.stat(path.c_str(), &st); break;
            case 3: p.lseek(fd, 0, fs::kSeekSet); break;
          }
        }
        p.close(fd);
      });
    }
    for (auto& w : workers) w.join();
  });
  trace::ktrace().disable();

  const std::uint64_t emitted = trace::ktrace().emitted();
  const std::uint64_t dropped = trace::ktrace().dropped();
  std::vector<trace::TraceEvent> events = trace::ktrace().drain();
  bool sorted = true;
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i - 1].seq >= events[i].seq) sorted = false;
  }
  const bool lossless = dropped == 0 && events.size() == emitted - dropped;

  std::printf("%-34s %12" PRIu64 "\n", "events emitted (4 threads)", emitted);
  std::printf("%-34s %12" PRIu64 "\n", "events dropped", dropped);
  std::printf("%-34s %12zu\n", "events drained", events.size());
  std::printf("%-34s %12s\n", "drain sorted by seq",
              sorted ? "yes" : "NO");
  std::printf("%-34s %12s\n", "lossless (drained == emitted)",
              lossless && sorted ? "PASS" : "FAIL");
  json.record("parallel_traced_syscalls", kThreads,
              static_cast<double>(kThreads) * kCallsPerThread / par_s, par_s);
  trace::ktrace().reset();

  bench::print_note("disabled overhead = checks/call x check cost vs the "
                    "measured null syscall; lossless = merged drain equals "
                    "the per-CPU emit counters with zero drops");
  return (overhead_pct < 1.0 && lossless && sorted) ? 0 : 1;
}
