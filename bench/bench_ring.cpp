// N2: web server over batched submission rings -- the third
// crossing-elimination vehicle vs plain syscalls, consolidated calls,
// and Cosy compounds.
//
// The ring attacks the same accept-recv-open-read-send-close loop from
// the submission side: the worker queues linked SQE chains in shared
// memory (zero crossings) and ONE ring_enter drains a whole window of
// response chains kernel-side, dispatching the existing sys_* handlers
// through the nested gateway without re-crossing. This bench measures:
//
//   1. The four modes head-to-head at 4 vCPUs: crossings/req,
//      copied bytes/req, req/s.
//   2. The batch sweep (1/4/8/32 chains per enter at 32 req/conn):
//      crossings/req falls roughly as 1/batch toward the two-enters-
//      per-connection floor.
//   3. MT scaling 1 -> 4 vCPUs in ring mode (per-task rings shard by
//      construction: no shared state between workers).
//   4. A hard-fault storm at the SQE-corruption point (the shared-memory
//      TOCTOU surface) under the aggressive breaker: the supervisor
//      quarantines the ring and every request still completes through
//      classic decomposition + the worker's rescue path.
//
// Acceptance: ring @ batch>=8 spends <= 0.5 crossings/req, at or below
// consolidated, and >= 4x fewer than plain; the storm completes 100%.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.hpp"
#include "fault/kfail.hpp"
#include "net/net.hpp"
#include "ring/ring.hpp"
#include "sup/supervisor.hpp"
#include "uk/userlib.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace usk;

struct RunOut {
  workload::WebServerReport rep;
  ring::RingStats ring;  ///< zero for non-ring modes
};

RunOut run(workload::ServeMode mode, std::size_t workers,
           std::size_t requests_per_conn, std::size_t conns_per_worker,
           std::size_t ring_batch) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  net::Net net(kernel);
  ring::RingDev rdev(kernel, net);

  workload::WebServerConfig cfg;
  cfg.mode = mode;
  cfg.workers = workers;
  cfg.conns_per_worker = conns_per_worker;
  cfg.requests_per_conn = requests_per_conn;
  cfg.file_bytes = 16384;  // the N1 document size
  cfg.files = 4;
  cfg.ring = &rdev;
  cfg.ring_batch = ring_batch;

  uk::Proc setup(kernel, "setup");
  workload::populate_www(setup, cfg);
  RunOut out;
  out.rep = workload::run_webserver(kernel, net, cfg);
  out.ring = rdev.total_stats();
  return out;
}

double smp_req_per_sec(std::size_t workers,
                       const workload::WebServerReport& r) {
  return r.req_per_sec * static_cast<double>(workers);
}

void print_row(const char* config, std::size_t workers,
               const workload::WebServerReport& r) {
  std::printf("%-14s %6zu %8" PRIu64 " %10.0f %10.0f %12.2f %14.0f\n",
              config, workers, r.requests, r.req_per_sec,
              smp_req_per_sec(workers, r), r.crossings_per_req(),
              r.user_bytes_per_req());
}

struct StormOut {
  workload::WebServerReport rep;
  ring::RingStats ring;
  std::uint64_t quarantines = 0;
  std::uint64_t violations = 0;
  std::uint64_t fallback_runs = 0;
};

/// Ring mode under HARD kRingSqeCorrupt injection with the aggressive
/// breaker: failed chains cancel + roll back, the worker rescues each
/// failed slot classically, and once quarantined every subsequent enter
/// decomposes kernel-side -- completions never stop.
StormOut run_storm(double rate, bool quick) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  net::Net net(kernel);
  ring::RingDev rdev(kernel, net);

  sup::Supervisor s(kernel);
  sup::BreakerPolicy pol;
  pol.violation_threshold = 1;
  pol.window_invocations = 16;
  pol.probation_clean_runs = 2;
  pol.backoff_initial = 2;
  pol.backoff_multiplier = 2;
  pol.backoff_cap = 8;
  s.set_policy(pol);

  workload::WebServerConfig cfg;
  cfg.mode = workload::ServeMode::kRing;
  cfg.workers = 1;  // one breaker timeline
  cfg.conns_per_worker = quick ? 8 : 32;
  cfg.requests_per_conn = 8;
  cfg.file_bytes = 4096;
  cfg.files = 4;
  cfg.base_port = 8600;
  cfg.ring = &rdev;
  cfg.ring_batch = 8;
  cfg.supervisor = &s;

  uk::Proc setup(kernel, "setup");
  workload::populate_www(setup, cfg);

  char spec[96];
  if (rate > 0.0) {
    std::snprintf(spec, sizeof spec, "seed=23,ring.sqe_corrupt:p=%g", rate);
  } else {
    std::snprintf(spec, sizeof spec, "off");
  }
  if (!fault::kfail().apply_spec(spec).ok()) {
    std::fprintf(stderr, "bad spec: %s\n", spec);
    std::exit(1);
  }
  fault::kfail().reset_stats();

  StormOut out;
  out.rep = workload::run_webserver(kernel, net, cfg);
  out.ring = rdev.total_stats();
  for (std::size_t id = 0; id < s.extension_count(); ++id) {
    sup::ExtStats st = s.stats(static_cast<sup::ExtId>(id));
    out.quarantines += st.quarantines;
    out.violations += st.violations;
    out.fallback_runs += st.fallback_runs;
  }
  (void)fault::kfail().apply_spec("off");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_title("N2", "web server over batched syscall rings: one "
                           "ring_enter drains a window of request chains");
  bench::print_note("16 KiB documents; ring chains are "
                    "recv->open->read->send->close linked SQEs, batch = "
                    "chains per enter. Crossings/copies are server-side "
                    "only.");

  bench::JsonWriter json("bench_ring");

  // --- 1. four modes head-to-head -------------------------------------------
  const std::size_t cmp_workers = quick ? 2 : 4;
  const std::size_t cmp_conns = 16;
  std::printf("\n%-14s %6s %8s %10s %10s %12s %14s\n", "mode", "vcpus",
              "reqs", "req/s", "smp req/s", "cross/req", "copied B/req");
  workload::WebServerReport plain, consolidated, cosy, ring8;
  struct ModeRow {
    workload::ServeMode mode;
    workload::WebServerReport* out;
  } rows[] = {{workload::ServeMode::kPlain, &plain},
              {workload::ServeMode::kConsolidated, &consolidated},
              {workload::ServeMode::kCosy, &cosy},
              {workload::ServeMode::kRing, &ring8}};
  for (const ModeRow& m : rows) {
    RunOut r = run(m.mode, cmp_workers, 8, cmp_conns, 8);
    *m.out = r.rep;
    std::string name = workload::serve_mode_name(m.mode);
    if (m.mode == workload::ServeMode::kRing) name += "-b8";
    print_row(name.c_str(), cmp_workers, r.rep);
    json.record(name, static_cast<int>(cmp_workers),
                smp_req_per_sec(cmp_workers, r.rep), r.rep.elapsed_s);
    // Expose the crossing economics to threshold checks: ops_per_sec
    // carries crossings/req under a crossings-* config name.
    json.record("crossings-" + name, static_cast<int>(cmp_workers),
                r.rep.crossings_per_req(), r.rep.elapsed_s);
  }

  // --- 2. batch sweep --------------------------------------------------------
  std::printf("\nbatch sweep (ring, 1 vCPU, 32 req/conn):\n");
  std::printf("%-14s %6s %8s %10s %12s %14s\n", "batch", "vcpus", "reqs",
              "req/s", "cross/req", "copied B/req");
  const std::size_t batches[] = {1, 4, 8, 32};
  double sweep_cross[4] = {0, 0, 0, 0};
  int bi = 0;
  for (std::size_t b : batches) {
    RunOut r = run(workload::ServeMode::kRing, 1, 32,
                   quick ? std::size_t{8} : std::size_t{16}, b);
    char name[32];
    std::snprintf(name, sizeof name, "ring-sweep-b%zu", b);
    std::printf("%-14zu %6d %8" PRIu64 " %10.0f %12.2f %14.0f\n", b, 1,
                r.rep.requests, r.rep.req_per_sec,
                r.rep.crossings_per_req(), r.rep.user_bytes_per_req());
    sweep_cross[bi++] = r.rep.crossings_per_req();
    json.record(name, 1, r.rep.req_per_sec, r.rep.elapsed_s);
    json.record(std::string("crossings-") + name, 1,
                r.rep.crossings_per_req(), r.rep.elapsed_s);
  }

  // --- 3. MT scaling ---------------------------------------------------------
  std::printf("\nMT scaling (ring, batch 8, 8 req/conn):\n");
  std::printf("%-14s %6s %8s %10s %10s %12s\n", "config", "vcpus", "reqs",
              "req/s", "smp req/s", "cross/req");
  for (std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    if (quick && w > 2) continue;
    RunOut r = run(workload::ServeMode::kRing, w, 8, 16, 8);
    std::printf("%-14s %6zu %8" PRIu64 " %10.0f %10.0f %12.2f\n", "ring-b8",
                w, r.rep.requests, r.rep.req_per_sec,
                smp_req_per_sec(w, r.rep), r.rep.crossings_per_req());
    json.record("ring-scale", static_cast<int>(w),
                smp_req_per_sec(w, r.rep), r.rep.elapsed_s);
  }

  // --- 4. fault storm --------------------------------------------------------
  std::printf("\nSQE-corruption storm (ring-b8, 1 vCPU, aggressive "
              "breaker):\n");
  std::printf("%-14s %8s %9s %6s %9s %6s %10s\n", "config", "reqs", "req/s",
              "viol", "fallback", "quar", "complete");
  const double rates[] = {0.0, 0.05};
  bool storm_complete = true;
  std::uint64_t storm_quar = 0, storm_fallback_enters = 0;
  const std::uint64_t expect_reqs =
      static_cast<std::uint64_t>(quick ? 8 : 32) * 8;
  for (double rate : rates) {
    StormOut st = run_storm(rate, quick);
    char name[32];
    std::snprintf(name, sizeof name, "storm-p%.2f", rate);
    bool complete = st.rep.requests == expect_reqs;
    std::printf("%-14s %8" PRIu64 " %9.0f %6" PRIu64 " %9" PRIu64
                " %6" PRIu64 " %9s\n",
                name, st.rep.requests, st.rep.req_per_sec, st.violations,
                st.fallback_runs, st.quarantines,
                complete ? "100%" : "INCOMPLETE");
    json.record(name, 1, st.rep.req_per_sec, st.rep.elapsed_s);
    if (rate > 0.0) {
      if (!complete) storm_complete = false;
      storm_quar = st.quarantines;
      storm_fallback_enters = st.ring.enters_fallback;
    }
  }

  // --- acceptance ------------------------------------------------------------
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };
  const double ring_cross = ring8.crossings_per_req();
  const double plain_cross = plain.crossings_per_req();
  const double cons_cross = consolidated.crossings_per_req();
  std::printf("\nacceptance:\n");
  std::printf("  crossings/req: plain %.2f, consolidated %.2f, cosy %.2f, "
              "ring-b8 %.2f\n",
              plain_cross, cons_cross, cosy.crossings_per_req(), ring_cross);
  check(ring_cross <= 0.5, "ring @ batch 8 <= 0.5 crossings/req");
  check(ring_cross <= cons_cross,
        "ring @ batch 8 at or below consolidated crossings/req");
  check(plain_cross >= 4.0 * ring_cross,
        "ring @ batch 8 >= 4x fewer crossings than plain");
  check(sweep_cross[0] > sweep_cross[3],
        "batch sweep: crossings/req falls from batch 1 to batch 32");
  check(storm_complete, "p=0.05 SQE-corruption storm completed 100%");
  check(storm_quar >= 1, "storm reached quarantine");
  check(storm_fallback_enters >= 1,
        "quarantined ring decomposed via fallback enters");
  // The headline ratio, exported for threshold checks.
  json.record("crossing-ratio-plain-over-ring",
              static_cast<int>(cmp_workers),
              ring_cross > 0 ? plain_cross / ring_cross : 0.0, 0.0);
  return failures == 0 ? 0 : 1;
}
