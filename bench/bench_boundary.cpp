// Boundary calibration microbenchmarks (google-benchmark).
//
// Not a paper table: this is the substrate's datasheet. It measures the
// real CPU cost of the simulated primitives every experiment is built on
// -- one boundary crossing, copy_{to,from}_user at several sizes, a null
// syscall (getpid), a dcache-hit stat, and Cosy compound dispatch -- so
// the relative costs behind E1-E9 can be independently checked.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "cosy/compiler.hpp"
#include "cosy/exec.hpp"
#include "uk/userlib.hpp"

namespace {

using namespace usk;

struct Fix {
  Fix() : kernel(fs), proc(kernel, "cal") {
    fs.set_cost_hook(kernel.charge_hook());
    int fd = proc.open("/cal", fs::kOWrOnly | fs::kOCreat);
    std::vector<char> block(65536, 'c');
    proc.write(fd, block.data(), block.size());
    proc.close(fd);
  }
  fs::MemFs fs;
  uk::Kernel kernel;
  uk::Proc proc;
};

void BM_CrossingOnly(benchmark::State& state) {
  Fix f;
  for (auto _ : state) {
    f.kernel.boundary().enter_kernel(f.proc.task());
    f.kernel.boundary().exit_kernel(f.proc.task());
  }
}
BENCHMARK(BM_CrossingOnly);

void BM_CopyFromUser(benchmark::State& state) {
  Fix f;
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<char> src(n, 'x');
  std::vector<char> dst(n);
  f.proc.task().enter_kernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kernel.boundary().copy_from_user(
        f.proc.task(), dst.data(), src.data(), n));
  }
  f.proc.task().exit_kernel();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CopyFromUser)->Arg(64)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_NullSyscall(benchmark::State& state) {
  Fix f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.proc.getpid());
  }
}
BENCHMARK(BM_NullSyscall);

void BM_StatDcacheHit(benchmark::State& state) {
  Fix f;
  fs::StatBuf st;
  f.proc.stat("/cal", &st);  // warm the dcache
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.proc.stat("/cal", &st));
  }
}
BENCHMARK(BM_StatDcacheHit);

void BM_Read4k(benchmark::State& state) {
  Fix f;
  int fd = f.proc.open("/cal", fs::kORdOnly);
  char buf[4096];
  for (auto _ : state) {
    f.proc.lseek(fd, 0, fs::kSeekSet);
    benchmark::DoNotOptimize(f.proc.read(fd, buf, sizeof(buf)));
  }
  f.proc.close(fd);
}
BENCHMARK(BM_Read4k);

void BM_CosyDispatchEmpty(benchmark::State& state) {
  Fix f;
  cosy::CosyExtension ext(f.kernel);
  cosy::SharedBuffer shared(4096);
  cosy::CompileResult cr = cosy::compile("return 0;");
  for (auto _ : state) {
    cosy::CosyResult r = ext.execute(f.proc.process(), cr.compound, shared);
    benchmark::DoNotOptimize(r.ret);
  }
}
BENCHMARK(BM_CosyDispatchEmpty);

void BM_CosyReadLoop(benchmark::State& state) {
  Fix f;
  cosy::CosyExtension ext(f.kernel);
  cosy::SharedBuffer shared(8192);
  cosy::CompileResult cr = cosy::compile(
      "int fd = open(\"/cal\", O_RDONLY);"
      "int n = 1;"
      "while (n > 0) { n = read(fd, @0, 4096); }"
      "close(fd);"
      "return 0;");
  for (auto _ : state) {
    cosy::CosyResult r = ext.execute(f.proc.process(), cr.compound, shared);
    benchmark::DoNotOptimize(r.ret);
  }
}
BENCHMARK(BM_CosyReadLoop);

/// ConsoleReporter that additionally forwards every per-iteration run to
/// the shared USK_BENCH_JSON sink, so google-benchmark binaries emit the
/// same JSON-lines records as the hand-rolled table benches.
class JsonForwardReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonForwardReporter(bench::JsonWriter& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      const double elapsed = r.real_accumulated_time;
      const double ops =
          elapsed > 0 ? static_cast<double>(r.iterations) / elapsed : 0.0;
      json_.record(r.benchmark_name(), static_cast<int>(r.threads), ops,
                   elapsed);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::JsonWriter& json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::JsonWriter json("bench_boundary");
  JsonForwardReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
