// R2: supervised web server -- quarantine, degradation, re-admission.
//
// The N1 web server runs in Cosy mode (one compound per connection) with
// every worker's serving path registered under the extension supervisor.
// kfail injects HARD EDQUOT faults at the compound's fuel check
// (cosy_fuel, non-transient) at rates rising 0 -> 5%: each hit aborts the
// in-kernel invocation, the worker rescues the connection with the
// classic user-space loop, and the breaker walks the extension through
// probation -> quarantine -> backoff fallback -> probe -> re-admission.
// The acceptance claims measured here:
//
//   1. 100% of requests complete at every injection rate (graceful
//      degradation: quarantine re-routes, it never drops work).
//   2. The supervised server at p=0.05 still beats the pure-classic
//      (kPlain) baseline: degraded connections cost classic price, but
//      re-admitted ones keep the consolidation win.
//   3. The injection schedule and the breaker are deterministic: two
//      runs with the same seed produce byte-identical event ledgers.
//   4. The healthy-path cost every unsupervised syscall pays -- the
//      uk::sup_gateway_armed relaxed load in the Scope epilogue -- is
//      <= 0.5% of a 1668 ns null syscall.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.hpp"
#include "fault/kfail.hpp"
#include "net/net.hpp"
#include "sup/supervisor.hpp"
#include "uk/userlib.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace usk;

struct SupPoint {
  double rate = 0.0;
  workload::WebServerReport rep;
  sup::ExtStats ext;           ///< summed over registered extensions
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
  std::string ledger;          ///< serialized event stream (determinism)
};

workload::WebServerConfig storm_config(bool quick) {
  workload::WebServerConfig cfg;
  cfg.mode = workload::ServeMode::kCosy;
  cfg.workers = 1;  // single worker: the breaker story in one timeline
  cfg.conns_per_worker = quick ? 16 : 64;
  cfg.requests_per_conn = quick ? 4 : 8;
  cfg.file_bytes = 4096;
  cfg.files = 4;
  cfg.base_port = 8400;
  return cfg;
}

/// Aggressive breaker so the 0->5% sweep exercises every state: one
/// violation starts probation, a second quarantines, two fallback ticks
/// then a probe, two clean runs re-admit.
sup::BreakerPolicy storm_policy() {
  sup::BreakerPolicy p;
  p.violation_threshold = 1;
  p.window_invocations = 16;
  p.probation_clean_runs = 2;
  p.backoff_initial = 2;
  p.backoff_multiplier = 2;
  p.backoff_cap = 8;
  return p;
}

/// Serialize everything the breaker decided: if two same-seed runs agree
/// on this string, routing / quarantine / re-admission replayed exactly.
std::string event_ledger(const sup::Supervisor& s) {
  std::string out;
  char line[128];
  for (const sup::SupEvent& e : s.events()) {
    std::snprintf(line, sizeof line, "%" PRIu64 ":%d:%s:%s:%d@%" PRIu64 ";",
                  e.seq, e.ext, sup::event_name(e.kind),
                  sup::violation_name(e.vkind), static_cast<int>(e.err),
                  e.invocation);
    out += line;
  }
  return out;
}

SupPoint run_supervised(double rate, bool quick) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  net::Net net(kernel);

  sup::Supervisor s(kernel);
  s.set_policy(storm_policy());

  workload::WebServerConfig cfg = storm_config(quick);
  cfg.supervisor = &s;
  uk::Proc setup(kernel, "setup");
  workload::populate_www(setup, cfg);

  char spec[128];
  if (rate > 0.0) {
    // HARD faults (no :transient): the compound really aborts with
    // EDQUOT and the supervisor must route around it.
    std::snprintf(spec, sizeof spec, "seed=17,cosy_fuel:p=%g", rate);
  } else {
    std::snprintf(spec, sizeof spec, "off");
  }
  if (!fault::kfail().apply_spec(spec).ok()) {
    std::fprintf(stderr, "bad spec: %s\n", spec);
    std::exit(1);
  }
  fault::kfail().reset_stats();

  SupPoint pt;
  pt.rate = rate;
  pt.rep = workload::run_webserver(kernel, net, cfg);
  for (std::size_t id = 0; id < s.extension_count(); ++id) {
    sup::ExtStats st = s.stats(static_cast<sup::ExtId>(id));
    pt.ext.invocations += st.invocations;
    pt.ext.kernel_runs += st.kernel_runs;
    pt.ext.fallback_runs += st.fallback_runs;
    pt.ext.probes += st.probes;
    pt.ext.failed_probes += st.failed_probes;
    pt.ext.violations += st.violations;
    pt.quarantines += st.quarantines;
    pt.readmissions += st.readmissions;
  }
  pt.ledger = event_ledger(s);
  (void)fault::kfail().apply_spec("off");
  return pt;
}

/// Pure-classic baseline: the same request mix served by the kPlain
/// per-request syscall loop, no supervisor, no faults. This is what the
/// degraded path costs when it is ALL you have.
workload::WebServerReport run_classic(bool quick) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  net::Net net(kernel);

  workload::WebServerConfig cfg = storm_config(quick);
  cfg.mode = workload::ServeMode::kPlain;
  uk::Proc setup(kernel, "setup");
  workload::populate_www(setup, cfg);
  (void)fault::kfail().apply_spec("off");
  return workload::run_webserver(kernel, net, cfg);
}

/// The cost every syscall pays for having the supervisor compiled in:
/// one relaxed load in the Kernel::Scope epilogue. Measured like R1's
/// disarmed fault point and T1's disabled tracepoint.
double gateway_check_ns() {
  const int kChecks = 50'000'000;
  static volatile std::uint64_t sink;
  double secs = bench::time_best(3, [&] {
    std::uint64_t armed = 0;
    for (int i = 0; i < kChecks; ++i) {
      armed += uk::sup_gateway_armed() ? 1 : 0;
    }
    sink = armed;
  });
  (void)sink;
  return secs / kChecks * 1e9;
}

/// Null-syscall throughput with and without a healthy supervised guard
/// bound to the calling thread (armed gateway + per-syscall attribution):
/// the full healthy-path cost for SUPERVISED code, reported for context.
double getpid_ops_per_sec(sup::Supervisor* s, sup::ExtId id) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  uk::Proc proc(kernel, "nuller");
  const int kOps = 200000;
  double secs = bench::time_best(3, [&] {
    if (s != nullptr) {
      sup::InvocationGuard g(*s, id, nullptr, sup::Route::kKernel);
      for (int i = 0; i < kOps; ++i) (void)proc.getpid();
      g.set_result(0);
    } else {
      for (int i = 0; i < kOps; ++i) (void)proc.getpid();
    }
  });
  return static_cast<double>(kOps) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_title("R2", "supervised web server under a hard-fault storm "
                           "(quarantine -> fallback -> re-admission)");
  bench::print_note("cosy mode, 1 worker, hard EDQUOT at the compound fuel "
                    "check; seed=17: the breaker's event ledger reproduces "
                    "byte-for-byte.");

  bench::JsonWriter json("bench_supervisor");
  const double rates[] = {0.0, 0.01, 0.02, 0.05};
  const int reps = quick ? 1 : 3;
  workload::WebServerConfig shape = storm_config(quick);
  const std::uint64_t expect_reqs =
      static_cast<std::uint64_t>(shape.workers) * shape.conns_per_worker *
      shape.requests_per_conn;

  std::printf("\n%-12s %7s %9s %6s %9s %7s %6s %6s %7s\n", "config", "reqs",
              "req/s", "viol", "fallback", "probes", "quar", "readm",
              "vs clean");
  double clean_rps = 0.0;
  double storm5_rps = 0.0;
  bool all_complete = true;
  bool deterministic = true;
  std::uint64_t quarantines_at_5 = 0;
  std::uint64_t readmissions_at_5 = 0;
  for (double rate : rates) {
    SupPoint pt = run_supervised(rate, quick);
    // Same seed -> same injection schedule -> same breaker decisions;
    // repeats only strip host-scheduler noise from the wall clock.
    for (int r = 1; r < reps; ++r) {
      SupPoint again = run_supervised(rate, quick);
      if (again.ledger != pt.ledger) deterministic = false;
      if (again.rep.req_per_sec > pt.rep.req_per_sec) {
        again.ledger = pt.ledger;  // already compared equal unless flagged
        pt = again;
      }
    }
    if (rate == 0.0) clean_rps = pt.rep.req_per_sec;
    if (rate == 0.05) {
      storm5_rps = pt.rep.req_per_sec;
      quarantines_at_5 = pt.quarantines;
      readmissions_at_5 = pt.readmissions;
    }
    if (pt.rep.requests != expect_reqs) all_complete = false;
    double ratio =
        clean_rps > 0 ? pt.rep.req_per_sec / clean_rps * 100.0 : 100.0;
    char cfgname[32];
    std::snprintf(cfgname, sizeof cfgname, "storm-p%.3f", rate);
    std::printf("%-12s %7" PRIu64 " %9.0f %6" PRIu64 " %9" PRIu64
                " %7" PRIu64 " %6" PRIu64 " %6" PRIu64 " %6.1f%%\n",
                cfgname, pt.rep.requests, pt.rep.req_per_sec,
                pt.ext.violations, pt.ext.fallback_runs, pt.ext.probes,
                pt.quarantines, pt.readmissions, ratio);
    json.record(cfgname, 1, pt.rep.req_per_sec, pt.rep.elapsed_s);
  }

  workload::WebServerReport classic = run_classic(quick);
  for (int r = 1; r < reps; ++r) {
    workload::WebServerReport again = run_classic(quick);
    if (again.req_per_sec > classic.req_per_sec) classic = again;
  }
  std::printf("%-12s %7" PRIu64 " %9.0f %6s %9s %7s %6s %6s %6.1f%%\n",
              "classic", classic.requests, classic.req_per_sec, "-", "-",
              "-", "-", "-",
              clean_rps > 0 ? classic.req_per_sec / clean_rps * 100.0
                            : 100.0);
  json.record("classic", 1, classic.req_per_sec, classic.elapsed_s);

  double ns = gateway_check_ns();
  const double null_syscall_ns = 1668.0;  // measured by bench_trace_overhead
  std::printf("\nhealthy-path gateway check: %.3f ns/syscall (%.3f%% of a "
              "%.0f ns null syscall; budget 0.5%%)\n",
              ns, ns / null_syscall_ns * 100.0, null_syscall_ns);
  json.record("gateway-check", 1, 1e9 / ns, 0.0);

  // Context: the SUPERVISED healthy path (armed gateway, bound guard,
  // per-syscall unit attribution) against the unsupervised null syscall.
  {
    double plain = getpid_ops_per_sec(nullptr, 0);
    fs::MemFs memfs;
    uk::Kernel kernel(memfs);
    sup::Supervisor s(kernel);
    sup::ExtId id = s.register_extension("nuller", sup::Vehicle::kCosy);
    double guarded = getpid_ops_per_sec(&s, id);
    std::printf("guarded getpid: %.0f/s vs %.0f/s plain (attribution cost "
                "%.2f%%)\n",
                guarded, plain,
                plain > 0 ? (plain - guarded) / plain * 100.0 : 0.0);
    json.record("getpid-plain", 1, plain, 0.0);
    json.record("getpid-guarded", 1, guarded, 0.0);
  }

  // --- acceptance ----------------------------------------------------------
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };
  std::printf("\nacceptance:\n");
  check(all_complete, "every request completed at every injection rate");
  check(deterministic, "same seed -> identical breaker event ledger");
  check(storm5_rps >= classic.req_per_sec,
        "supervised @ p=0.05 >= pure-classic baseline");
  check(ns / null_syscall_ns <= 0.005,
        "gateway check <= 0.5% of a null syscall");
  if (!quick) {
    check(quarantines_at_5 >= 1, "p=0.05 storm reached quarantine");
    check(readmissions_at_5 >= 1, "quarantined worker was re-admitted");
  }
  return failures == 0 ? 0 : 1;
}
