// A5: Cosy vs the user-space alternative (stdio buffering).
//
// The standard 2005 objection to in-kernel execution: "just buffer in user
// space." This bench shows where that's right and where the paper's
// mechanisms remain necessary:
//   * sequential byte-wise reads  -- stdio wins (no kernel work at all);
//     Cosy matches raw-syscall block reads but cannot beat a user cache.
//   * random 128 B probes, no reuse -- buffering cannot amortize; Cosy's
//     crossing elimination still pays.
//   * open-stat-close metadata sweeps -- no data to buffer; only the
//     consolidated/compound calls help.
#include <cinttypes>

#include "bench/common.hpp"
#include "consolidation/newcalls.hpp"
#include "cosy/compiler.hpp"
#include "cosy/exec.hpp"
#include "uk/stdio.hpp"

namespace {

using namespace usk;

struct Fix {
  Fix() : kernel(fs), proc(kernel, "s"), ext(kernel), shared(1 << 16) {
    fs.set_cost_hook(kernel.charge_hook());
    int fd = proc.open("/data", fs::kOWrOnly | fs::kOCreat);
    std::vector<char> block(4096, 'q');
    for (int i = 0; i < 64; ++i) proc.write(fd, block.data(), block.size());
    proc.close(fd);
    for (int i = 0; i < 64; ++i) {
      std::string p = "/meta" + std::to_string(i);
      int mfd = proc.open(p.c_str(), fs::kOWrOnly | fs::kOCreat);
      proc.close(mfd);
    }
  }
  fs::MemFs fs;
  uk::Kernel kernel;
  uk::Proc proc;
  cosy::CosyExtension ext;
  cosy::SharedBuffer shared;

  std::uint64_t kernel_units(const std::function<void()>& fn) {
    std::uint64_t k0 = proc.task().times().kernel;
    fn();
    return proc.task().times().kernel - k0;
  }
};

void row(const char* pattern, std::uint64_t raw, std::uint64_t stdio,
         std::uint64_t cosy) {
  auto cell = [](std::uint64_t v) {
    return v == 0 ? std::string("--") : std::to_string(v);
  };
  std::printf("%-26s %12s %12s %12s\n", pattern, cell(raw).c_str(),
              cell(stdio).c_str(), cell(cosy).c_str());
}

}  // namespace

int main() {
  bench::print_title("A5", "Cosy vs user-space stdio buffering (kernel work "
                           "units; lower is better)");
  std::printf("%-26s %12s %12s %12s\n", "pattern", "raw", "stdio", "cosy");

  // --- sequential byte-wise read of 256 KiB -------------------------------------
  {
    Fix f;
    std::uint64_t raw = f.kernel_units([&] {
      int fd = f.proc.open("/data", fs::kORdOnly);
      char c;
      for (int i = 0; i < 64 * 4096; ++i) f.proc.read(fd, &c, 1);
      f.proc.close(fd);
    });
    std::uint64_t stdio_units = f.kernel_units([&] {
      uk::BufferedFile in(f.proc, "/data", fs::kORdOnly);
      while (in.getc() >= 0) {
      }
    });
    cosy::CompileResult cr = cosy::compile(
        "int fd = open(\"/data\", O_RDONLY);"
        "int n = 1;"
        "while (n > 0) { n = read(fd, @0, 4096); }"
        "close(fd);"
        "return 0;");
    if (!cr.ok) std::abort();
    std::uint64_t cosy_units = f.kernel_units([&] {
      // The app still consumes the bytes from the shared buffer in user
      // space (not kernel time).
      cosy::CosyResult r = f.ext.execute(f.proc.process(), cr.compound,
                                         f.shared);
      if (r.ret != 0) std::abort();
    });
    row("seq byte reads 256KiB", raw, stdio_units, cosy_units);
  }

  // --- random 128 B probes, no reuse ---------------------------------------------
  {
    Fix f;
    std::uint64_t raw = f.kernel_units([&] {
      int fd = f.proc.open("/data", fs::kORdOnly);
      char buf[128];
      std::uint64_t key = 3;
      for (int i = 0; i < 1024; ++i) {
        key = key * 6364136223846793005ull + 1;
        f.proc.lseek(fd, static_cast<std::int64_t>((key >> 40) % 2000) * 128,
                     fs::kSeekSet);
        f.proc.read(fd, buf, sizeof(buf));
      }
      f.proc.close(fd);
    });
    // stdio: a seek drops the buffer, so buffering buys nothing; every
    // probe still costs lseek+read (plus the buffer refill reads MORE
    // than 128 bytes).
    std::uint64_t stdio_units = f.kernel_units([&] {
      uk::BufferedFile in(f.proc, "/data", fs::kORdOnly);
      char buf[128];
      std::uint64_t key = 3;
      for (int i = 0; i < 1024; ++i) {
        key = key * 6364136223846793005ull + 1;
        in.seek(static_cast<std::int64_t>((key >> 40) % 2000) * 128);
        in.read(buf, sizeof(buf));
      }
    });
    cosy::CompileResult cr = cosy::compile(
        "int fd = open(\"/data\", O_RDONLY);"
        "int key = 3;"
        "for (int i = 0; i < 1024; i += 1) {"
        "  key = key * 25214903917 + 11;"
        "  if (key < 0) { key = 0 - key; }"
        "  lseek(fd, (key % 2000) * 128, SEEK_SET);"
        "  read(fd, @0, 128);"
        "}"
        "close(fd);"
        "return 0;");
    if (!cr.ok) std::abort();
    std::uint64_t cosy_units = f.kernel_units([&] {
      cosy::CosyResult r = f.ext.execute(f.proc.process(), cr.compound,
                                         f.shared);
      if (r.ret != 0) std::abort();
    });
    row("random 128B probes x1024", raw, stdio_units, cosy_units);
  }

  // --- metadata sweep: stat 64 files x 8 passes ----------------------------------
  {
    Fix f;
    std::uint64_t raw = f.kernel_units([&] {
      fs::StatBuf st;
      for (int pass = 0; pass < 8; ++pass) {
        for (int i = 0; i < 64; ++i) {
          std::string p = "/meta" + std::to_string(i);
          f.proc.stat(p.c_str(), &st);
        }
      }
    });
    // stdio has nothing to offer for metadata: identical to raw.
    cosy::CompoundBuilder b;
    for (int i = 0; i < 64; ++i) {
      std::string p = "/meta" + std::to_string(i);
      b.stat(b.str(p), cosy::shared(0));
    }
    cosy::Compound c = b.finish();
    std::uint64_t cosy_units = f.kernel_units([&] {
      for (int pass = 0; pass < 8; ++pass) {
        cosy::CosyResult r = f.ext.execute(f.proc.process(), c, f.shared);
        if (r.ret != 0) std::abort();
      }
    });
    row("stat sweep 64 files x8", raw, 0, cosy_units);
  }

  bench::print_note("stdio wins sequential byte access (user-side cache); "
                    "Cosy wins where buffering cannot amortize -- random "
                    "probes and metadata sequences");
  return 0;
}
