// R3: kdl under overload -- goodput, admitted latency, shed accuracy,
// cancellation leak oracle, and the disarmed tax.
//
// The open-loop overload workload (src/workload/overload) drives the
// serving pool at 2x its calibrated capacity. Without kdl every request
// is eventually served, far past its deadline, at full cost: goodput
// (in-deadline responses as a fraction of what the calibrated capacity
// could serve in the same wall time) collapses as the backlog grows.
// With kdl armed, requests carry their residual budget across the hop,
// infeasible ones are shed at ingress for the cost of a header, clients
// spend bounded retry budgets, and the pool's capacity goes to requests
// it can still serve in time.
//
// JSON acceptance metrics (checked by run_tier1.sh dl):
//   overload-goodput-pct            >= 70   (kdl run at 2x capacity)
//   overload-admitted-p99-ratio-x100 <= 500 (admitted p99 / uncontended p99)
//   overload-shed-accuracy-pct      >= 70   (admitted requests in deadline)
//   overload-baseline-degraded      >= 1    (baseline goodput collapsed)
//   overload-cancels                >= 1000 (seeded cancellation storm)
//   overload-cancel-leaks           <= 0    (fds + sockets after storm)
//   dl-disarmed-overhead-pct        <= 1.0  (disabled scope+gate site)
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/common.hpp"
#include "dl/dl.hpp"
#include "fs/memfs.hpp"
#include "net/net.hpp"
#include "uk/userlib.hpp"
#include "workload/overload.hpp"

namespace {

using namespace usk;

constexpr int kNullCalls = 200000;
constexpr int kSiteLoops = 2000000;

double null_syscall_ns(uk::Proc& proc, int calls) {
  double s = bench::time_best(3, [&] {
    for (int i = 0; i < calls; ++i) proc.getpid();
  });
  return s * 1e9 / calls;
}

workload::OverloadConfig base_cfg(bool quick) {
  workload::OverloadConfig cfg;
  (void)quick;
  cfg.workers = 2;
  cfg.client_threads = 24;  // re-derived from capacity after calibration
  cfg.tenants = 4;
  // Heavy documents (512 KiB = 128 chunk round trips) push per-request
  // service into the milliseconds. That keeps the end-to-end deadline
  // (a small multiple of the uncontended p99) far above thread-wakeup
  // jitter -- on a small host, dozens of executors contending for cores
  // add noise that would drown a sub-millisecond budget and make every
  // arrival dead before its first byte hit the wire.
  cfg.file_bytes = 524288;
  cfg.files = 4;
  cfg.seed = 42;
  return cfg;
}

/// Synchronous executors needed so the open loop can hold the offered
/// rate even though every attempt waits out the server queue (sheds are
/// decided at recv time, after queueing): demand ~= offered_rps x
/// per-arrival latency, and the latter rides the deadline rim under
/// overload. 2x headroom for retries and scheduler jitter.
std::size_t executors_for(double offered_rps, std::uint64_t deadline_ms) {
  const double demand =
      offered_rps * static_cast<double>(deadline_ms) / 1000.0 * 2.0;
  return std::clamp<std::size_t>(static_cast<std::size_t>(demand), 16, 64);
}

/// One overload episode on a fresh kernel. kdl arming is process-global,
/// so each episode sets it explicitly and disarms on the way out.
workload::OverloadReport run_episode(const workload::OverloadConfig& cfg,
                                     bool dl_on) {
  fs::MemFs memfs;
  uk::Kernel kernel(memfs);
  memfs.set_cost_hook(kernel.charge_hook());
  net::Net net(kernel);
  uk::Proc setup(kernel, "setup");
  workload::populate_overload_www(setup, cfg);
  dl::Kdl::instance().set_enabled(dl_on);
  dl::Kdl::instance().reset();
  workload::OverloadReport rep = workload::run_overload(kernel, net, cfg);
  dl::Kdl::instance().set_enabled(false);
  return rep;
}

void print_run(const char* name, const workload::OverloadReport& r) {
  std::printf("%-10s offered %6" PRIu64 "  good %5.1f%%  late %5" PRIu64
              "  shed %5" PRIu64 "  drop %4" PRIu64 "  p99 %7.2fms"
              "  adm-p99 %7.2fms\n",
              name, r.offered, r.goodput_pct(), r.ok_late, r.shed, r.dropped,
              static_cast<double>(r.p99_ns) / 1e6,
              static_cast<double>(r.admitted_p99_ns) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_title("R3", "kdl overload: goodput under 2x offered load, "
                           "admitted p99, shed accuracy, cancel leak oracle");
  bench::JsonWriter json("bench_overload");

  // --- 1. disarmed tax: disabled DeadlineScope+gate site vs null syscall ----
  // The null syscall already crosses the (disarmed) gateway check; the
  // site loop adds a full construct+destruct of a disabled scope.
  {
    fs::MemFs rootfs;
    uk::Kernel kernel(rootfs);
    rootfs.set_cost_hook(kernel.charge_hook());
    uk::Proc proc(kernel, "dl-bench");
    dl::Kdl::instance().set_enabled(false);
    const double null_ns = null_syscall_ns(proc, kNullCalls);
    const double site_s = bench::time_best(3, [] {
      for (int i = 0; i < kSiteLoops; ++i) {
        dl::DeadlineScope s(std::chrono::milliseconds(5));
      }
    });
    const double site_ns = site_s * 1e9 / kSiteLoops;
    const double fraction = site_ns / null_ns;
    std::printf("%-34s %12.1f ns\n", "null syscall (kdl off)", null_ns);
    std::printf("%-34s %12.3f ns\n", "disabled DeadlineScope site", site_ns);
    std::printf("%-34s %12.4f      %s (budget 0.01)\n",
                "disarmed overhead fraction", fraction,
                fraction <= 0.01 ? "PASS" : "FAIL");
    json.record("null_syscall_dl_off", 1, 1e9 / null_ns,
                null_ns * kNullCalls / 1e9);
    json.record("dl-disarmed-overhead-pct", 1, fraction * 100.0, site_s);
    if (fraction > 0.01) return 1;
  }

  // --- 2. calibrate: closed-loop single-stream service rate + p99 ----------
  workload::OverloadConfig cal = base_cfg(quick);
  cal.requests = quick ? 200 : 400;
  cal.deadline_ms = 1000;
  cal.deadlines = false;
  cal.shedding = false;
  double cal_rps = 0.0;
  std::uint64_t cal_p99 = 0;
  {
    fs::MemFs memfs;
    uk::Kernel kernel(memfs);
    memfs.set_cost_hook(kernel.charge_hook());
    net::Net net(kernel);
    uk::Proc setup(kernel, "setup");
    workload::populate_overload_www(setup, cal);
    dl::Kdl::instance().set_enabled(false);
    workload::calibrate_overload(kernel, net, cal, &cal_rps, &cal_p99);
  }
  // Pool capacity: workers only add throughput up to the core count --
  // on a single-CPU host everything serializes and the closed-loop
  // single-stream rate IS the total achievable rate.
  const double par = std::min<double>(
      static_cast<double>(cal.workers),
      std::max(1u, std::thread::hardware_concurrency()));
  const double capacity = cal_rps * par;
  std::printf("\n%-34s %12.0f req/s (x%.0f parallel -> %.0f)\n",
              "calibrated single-stream rate", cal_rps, par, capacity);
  std::printf("%-34s %12.3f ms\n", "uncontended p99",
              static_cast<double>(cal_p99) / 1e6);

  // --- 3. overload episodes: baseline (kdl off) vs kdl at 2x capacity ------
  workload::OverloadConfig cfg = base_cfg(quick);
  cfg.offered_rps = 2.0 * capacity;
  // The end-to-end budget: a few uncontended p99s. Tight enough that an
  // unprotected backlog blows through it, wide enough for a retry; the
  // shed rim it induces also caps admitted sojourn well inside the 5x
  // p99 ceiling, which is what keeps the admitted-p99 gate honest.
  cfg.deadline_ms =
      std::max<std::uint64_t>(3, (3 * cal_p99 + 999'999) / 1'000'000);
  cfg.client_threads = executors_for(cfg.offered_rps, cfg.deadline_ms);
  const double run_s = quick ? 1.0 : 2.0;
  cfg.requests = static_cast<std::size_t>(cfg.offered_rps * run_s);
  if (cfg.requests < 500) cfg.requests = 500;
  if (cfg.requests > 20000) cfg.requests = 20000;

  workload::OverloadConfig base = cfg;
  base.deadlines = false;
  base.shedding = false;
  workload::OverloadReport rb = run_episode(base, /*dl_on=*/false);
  workload::OverloadReport rd = run_episode(cfg, /*dl_on=*/true);

  std::printf("\n");
  print_run("baseline", rb);
  print_run("kdl", rd);

  // Goodput is measured against CAPACITY, not offered load: at 2x
  // overload served/offered tops out at 50% by arithmetic even for an
  // ideal system. The question overload control answers is how much of
  // the pool's achievable rate still lands as in-deadline responses.
  const auto cap_goodput = [&](const workload::OverloadReport& r) {
    const double ideal = capacity * r.elapsed_s;
    return ideal > 0.0
               ? std::min(100.0, 100.0 * static_cast<double>(r.ok_in_deadline) /
                                     ideal)
               : 0.0;
  };
  const double goodput = cap_goodput(rd);
  const double base_goodput = cap_goodput(rb);
  const double ratio =
      cal_p99 > 0 ? static_cast<double>(rd.admitted_p99_ns) /
                        static_cast<double>(cal_p99)
                  : 0.0;
  const std::uint64_t served = rd.ok_in_deadline + rd.ok_late;
  const double accuracy =
      served > 0 ? 100.0 * static_cast<double>(rd.ok_in_deadline) /
                       static_cast<double>(served)
                 : 0.0;
  const int degraded = base_goodput + 15.0 <= goodput ? 1 : 0;

  std::printf("\n%-34s %12.1f %%   %s (floor 70, of capacity)\n",
              "kdl goodput", goodput, goodput >= 70.0 ? "PASS" : "FAIL");
  std::printf("%-34s %12.2f x   %s (ceiling 5x)\n", "admitted p99 ratio",
              ratio, ratio <= 5.0 ? "PASS" : "FAIL");
  std::printf("%-34s %12.1f %%   %s (floor 70)\n", "shed accuracy", accuracy,
              accuracy >= 70.0 ? "PASS" : "FAIL");
  std::printf("%-34s %12.1f %%   %s (kdl - 15 above it)\n",
              "baseline goodput", base_goodput,
              degraded == 1 ? "PASS" : "FAIL");
  json.record("overload-goodput-pct", static_cast<int>(cfg.workers), goodput,
              rd.elapsed_s);
  json.record("overload-admitted-p99-ratio-x100", static_cast<int>(cfg.workers),
              ratio * 100.0, rd.elapsed_s);
  json.record("overload-shed-accuracy-pct", static_cast<int>(cfg.workers),
              accuracy, rd.elapsed_s);
  json.record("overload-baseline-degraded", static_cast<int>(cfg.workers),
              degraded, rb.elapsed_s);
  json.record("overload-baseline-goodput-pct", static_cast<int>(cfg.workers),
              base_goodput, rb.elapsed_s);
  json.record("overload-kdl-throughput-rps", static_cast<int>(cfg.workers),
              rd.throughput_rps, rd.elapsed_s);

  // --- 4. cancellation storm + leak oracle ---------------------------------
  // At ~1x capacity with a canceller firing every 100us, thousands of
  // cancels land at arbitrary points (parked in epoll_wait, mid-serve,
  // at the gateway). Every unwind must release its fds and sockets.
  workload::OverloadConfig storm = base_cfg(quick);
  storm.offered_rps = capacity;
  storm.deadline_ms = cfg.deadline_ms;
  storm.client_threads = executors_for(storm.offered_rps, storm.deadline_ms);
  storm.cancel_period_us = 100;
  storm.requests = static_cast<std::size_t>(storm.offered_rps *
                                            (quick ? 0.6 : 1.2));
  if (storm.requests < 400) storm.requests = 400;
  if (storm.requests > 20000) storm.requests = 20000;
  workload::OverloadReport rc = run_episode(storm, /*dl_on=*/true);
  const std::uint64_t leaks = rc.leaked_fds + rc.leaked_sockets;

  std::printf("\n%-34s %12" PRIu64 "      %s (floor 1000)\n",
              "cancellations issued", rc.cancels_issued,
              rc.cancels_issued >= 1000 ? "PASS" : "FAIL");
  std::printf("%-34s %12" PRIu64 "      %s (fds %" PRIu64 " sockets %" PRIu64
              " kmalloc %+" PRId64 "B)\n",
              "leaks after storm", leaks, leaks == 0 ? "PASS" : "FAIL",
              rc.leaked_fds, rc.leaked_sockets, rc.kmalloc_delta);
  json.record("overload-cancels", static_cast<int>(storm.workers),
              static_cast<double>(rc.cancels_issued), rc.elapsed_s);
  json.record("overload-cancel-leaks", static_cast<int>(storm.workers),
              static_cast<double>(leaks), rc.elapsed_s);

  bench::print_note("goodput = in-deadline responses / what the calibrated "
                    "capacity could serve in the same wall time; admitted p99 "
                    "= successful attempt latency; accuracy = served requests "
                    "that met their deadline");
  const bool pass = goodput >= 70.0 && ratio <= 5.0 && accuracy >= 70.0 &&
                    degraded == 1 && rc.cancels_issued >= 1000 && leaks == 0;
  return pass ? 0 : 1;
}
