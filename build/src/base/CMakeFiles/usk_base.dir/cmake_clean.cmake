file(REMOVE_RECURSE
  "CMakeFiles/usk_base.dir/errno.cpp.o"
  "CMakeFiles/usk_base.dir/errno.cpp.o.d"
  "CMakeFiles/usk_base.dir/klog.cpp.o"
  "CMakeFiles/usk_base.dir/klog.cpp.o.d"
  "libusk_base.a"
  "libusk_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
