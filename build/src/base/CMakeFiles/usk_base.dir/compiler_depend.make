# Empty compiler generated dependencies file for usk_base.
# This may be replaced when dependencies are built.
