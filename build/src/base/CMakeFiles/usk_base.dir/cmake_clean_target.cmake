file(REMOVE_RECURSE
  "libusk_base.a"
)
