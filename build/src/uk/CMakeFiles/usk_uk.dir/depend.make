# Empty dependencies file for usk_uk.
# This may be replaced when dependencies are built.
