file(REMOVE_RECURSE
  "CMakeFiles/usk_uk.dir/audit.cpp.o"
  "CMakeFiles/usk_uk.dir/audit.cpp.o.d"
  "CMakeFiles/usk_uk.dir/kernel.cpp.o"
  "CMakeFiles/usk_uk.dir/kernel.cpp.o.d"
  "CMakeFiles/usk_uk.dir/userlib.cpp.o"
  "CMakeFiles/usk_uk.dir/userlib.cpp.o.d"
  "libusk_uk.a"
  "libusk_uk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_uk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
