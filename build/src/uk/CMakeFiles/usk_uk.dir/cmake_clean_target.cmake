file(REMOVE_RECURSE
  "libusk_uk.a"
)
