file(REMOVE_RECURSE
  "CMakeFiles/usk_evmon.dir/chardev.cpp.o"
  "CMakeFiles/usk_evmon.dir/chardev.cpp.o.d"
  "CMakeFiles/usk_evmon.dir/dispatcher.cpp.o"
  "CMakeFiles/usk_evmon.dir/dispatcher.cpp.o.d"
  "CMakeFiles/usk_evmon.dir/eventlog.cpp.o"
  "CMakeFiles/usk_evmon.dir/eventlog.cpp.o.d"
  "CMakeFiles/usk_evmon.dir/monitors.cpp.o"
  "CMakeFiles/usk_evmon.dir/monitors.cpp.o.d"
  "CMakeFiles/usk_evmon.dir/profiler.cpp.o"
  "CMakeFiles/usk_evmon.dir/profiler.cpp.o.d"
  "CMakeFiles/usk_evmon.dir/rules.cpp.o"
  "CMakeFiles/usk_evmon.dir/rules.cpp.o.d"
  "libusk_evmon.a"
  "libusk_evmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_evmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
