# Empty compiler generated dependencies file for usk_evmon.
# This may be replaced when dependencies are built.
