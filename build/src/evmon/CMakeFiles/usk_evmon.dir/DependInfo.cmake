
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evmon/chardev.cpp" "src/evmon/CMakeFiles/usk_evmon.dir/chardev.cpp.o" "gcc" "src/evmon/CMakeFiles/usk_evmon.dir/chardev.cpp.o.d"
  "/root/repo/src/evmon/dispatcher.cpp" "src/evmon/CMakeFiles/usk_evmon.dir/dispatcher.cpp.o" "gcc" "src/evmon/CMakeFiles/usk_evmon.dir/dispatcher.cpp.o.d"
  "/root/repo/src/evmon/eventlog.cpp" "src/evmon/CMakeFiles/usk_evmon.dir/eventlog.cpp.o" "gcc" "src/evmon/CMakeFiles/usk_evmon.dir/eventlog.cpp.o.d"
  "/root/repo/src/evmon/monitors.cpp" "src/evmon/CMakeFiles/usk_evmon.dir/monitors.cpp.o" "gcc" "src/evmon/CMakeFiles/usk_evmon.dir/monitors.cpp.o.d"
  "/root/repo/src/evmon/profiler.cpp" "src/evmon/CMakeFiles/usk_evmon.dir/profiler.cpp.o" "gcc" "src/evmon/CMakeFiles/usk_evmon.dir/profiler.cpp.o.d"
  "/root/repo/src/evmon/rules.cpp" "src/evmon/CMakeFiles/usk_evmon.dir/rules.cpp.o" "gcc" "src/evmon/CMakeFiles/usk_evmon.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/usk_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
