file(REMOVE_RECURSE
  "libusk_evmon.a"
)
