file(REMOVE_RECURSE
  "libusk_bcc.a"
)
