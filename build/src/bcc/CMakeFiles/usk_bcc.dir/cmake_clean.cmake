file(REMOVE_RECURSE
  "CMakeFiles/usk_bcc.dir/runtime.cpp.o"
  "CMakeFiles/usk_bcc.dir/runtime.cpp.o.d"
  "libusk_bcc.a"
  "libusk_bcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_bcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
