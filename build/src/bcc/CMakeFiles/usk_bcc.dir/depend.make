# Empty dependencies file for usk_bcc.
# This may be replaced when dependencies are built.
