file(REMOVE_RECURSE
  "libusk_seg.a"
)
