file(REMOVE_RECURSE
  "CMakeFiles/usk_seg.dir/segment.cpp.o"
  "CMakeFiles/usk_seg.dir/segment.cpp.o.d"
  "libusk_seg.a"
  "libusk_seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
