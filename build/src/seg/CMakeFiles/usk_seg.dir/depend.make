# Empty dependencies file for usk_seg.
# This may be replaced when dependencies are built.
