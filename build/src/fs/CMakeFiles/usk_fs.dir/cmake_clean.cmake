file(REMOVE_RECURSE
  "CMakeFiles/usk_fs.dir/cryptfs.cpp.o"
  "CMakeFiles/usk_fs.dir/cryptfs.cpp.o.d"
  "CMakeFiles/usk_fs.dir/dcache.cpp.o"
  "CMakeFiles/usk_fs.dir/dcache.cpp.o.d"
  "CMakeFiles/usk_fs.dir/memfs.cpp.o"
  "CMakeFiles/usk_fs.dir/memfs.cpp.o.d"
  "CMakeFiles/usk_fs.dir/vfs.cpp.o"
  "CMakeFiles/usk_fs.dir/vfs.cpp.o.d"
  "CMakeFiles/usk_fs.dir/wrapfs.cpp.o"
  "CMakeFiles/usk_fs.dir/wrapfs.cpp.o.d"
  "libusk_fs.a"
  "libusk_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
