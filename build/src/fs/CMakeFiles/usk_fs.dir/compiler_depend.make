# Empty compiler generated dependencies file for usk_fs.
# This may be replaced when dependencies are built.
