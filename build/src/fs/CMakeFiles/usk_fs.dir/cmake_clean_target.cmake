file(REMOVE_RECURSE
  "libusk_fs.a"
)
