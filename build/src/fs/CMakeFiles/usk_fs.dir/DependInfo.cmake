
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/cryptfs.cpp" "src/fs/CMakeFiles/usk_fs.dir/cryptfs.cpp.o" "gcc" "src/fs/CMakeFiles/usk_fs.dir/cryptfs.cpp.o.d"
  "/root/repo/src/fs/dcache.cpp" "src/fs/CMakeFiles/usk_fs.dir/dcache.cpp.o" "gcc" "src/fs/CMakeFiles/usk_fs.dir/dcache.cpp.o.d"
  "/root/repo/src/fs/memfs.cpp" "src/fs/CMakeFiles/usk_fs.dir/memfs.cpp.o" "gcc" "src/fs/CMakeFiles/usk_fs.dir/memfs.cpp.o.d"
  "/root/repo/src/fs/vfs.cpp" "src/fs/CMakeFiles/usk_fs.dir/vfs.cpp.o" "gcc" "src/fs/CMakeFiles/usk_fs.dir/vfs.cpp.o.d"
  "/root/repo/src/fs/wrapfs.cpp" "src/fs/CMakeFiles/usk_fs.dir/wrapfs.cpp.o" "gcc" "src/fs/CMakeFiles/usk_fs.dir/wrapfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/usk_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/usk_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/usk_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
