
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mm/kmalloc.cpp" "src/mm/CMakeFiles/usk_mm.dir/kmalloc.cpp.o" "gcc" "src/mm/CMakeFiles/usk_mm.dir/kmalloc.cpp.o.d"
  "/root/repo/src/mm/vmalloc.cpp" "src/mm/CMakeFiles/usk_mm.dir/vmalloc.cpp.o" "gcc" "src/mm/CMakeFiles/usk_mm.dir/vmalloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/usk_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/usk_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
