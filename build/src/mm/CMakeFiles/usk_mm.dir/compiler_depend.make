# Empty compiler generated dependencies file for usk_mm.
# This may be replaced when dependencies are built.
