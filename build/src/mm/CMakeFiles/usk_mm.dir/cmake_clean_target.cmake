file(REMOVE_RECURSE
  "libusk_mm.a"
)
