file(REMOVE_RECURSE
  "CMakeFiles/usk_mm.dir/kmalloc.cpp.o"
  "CMakeFiles/usk_mm.dir/kmalloc.cpp.o.d"
  "CMakeFiles/usk_mm.dir/vmalloc.cpp.o"
  "CMakeFiles/usk_mm.dir/vmalloc.cpp.o.d"
  "libusk_mm.a"
  "libusk_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
