# Empty compiler generated dependencies file for usk_vm.
# This may be replaced when dependencies are built.
