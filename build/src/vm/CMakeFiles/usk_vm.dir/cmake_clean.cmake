file(REMOVE_RECURSE
  "CMakeFiles/usk_vm.dir/address_space.cpp.o"
  "CMakeFiles/usk_vm.dir/address_space.cpp.o.d"
  "CMakeFiles/usk_vm.dir/phys.cpp.o"
  "CMakeFiles/usk_vm.dir/phys.cpp.o.d"
  "libusk_vm.a"
  "libusk_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
