file(REMOVE_RECURSE
  "libusk_vm.a"
)
