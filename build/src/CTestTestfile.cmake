# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("vm")
subdirs("mm")
subdirs("blockdev")
subdirs("seg")
subdirs("sched")
subdirs("evmon")
subdirs("fs")
subdirs("uk")
subdirs("workload")
subdirs("consolidation")
subdirs("cosy")
subdirs("kefence")
subdirs("bcc")
