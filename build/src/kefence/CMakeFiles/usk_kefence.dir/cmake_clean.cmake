file(REMOVE_RECURSE
  "CMakeFiles/usk_kefence.dir/kefence.cpp.o"
  "CMakeFiles/usk_kefence.dir/kefence.cpp.o.d"
  "libusk_kefence.a"
  "libusk_kefence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_kefence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
