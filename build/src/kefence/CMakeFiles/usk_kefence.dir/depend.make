# Empty dependencies file for usk_kefence.
# This may be replaced when dependencies are built.
