file(REMOVE_RECURSE
  "libusk_kefence.a"
)
