file(REMOVE_RECURSE
  "CMakeFiles/usk_workload.dir/amutils.cpp.o"
  "CMakeFiles/usk_workload.dir/amutils.cpp.o.d"
  "CMakeFiles/usk_workload.dir/postmark.cpp.o"
  "CMakeFiles/usk_workload.dir/postmark.cpp.o.d"
  "CMakeFiles/usk_workload.dir/tracegen.cpp.o"
  "CMakeFiles/usk_workload.dir/tracegen.cpp.o.d"
  "libusk_workload.a"
  "libusk_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
