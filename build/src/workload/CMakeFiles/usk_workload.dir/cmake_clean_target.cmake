file(REMOVE_RECURSE
  "libusk_workload.a"
)
