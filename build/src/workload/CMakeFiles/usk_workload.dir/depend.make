# Empty dependencies file for usk_workload.
# This may be replaced when dependencies are built.
