# Empty compiler generated dependencies file for usk_consolidation.
# This may be replaced when dependencies are built.
