file(REMOVE_RECURSE
  "CMakeFiles/usk_consolidation.dir/graph.cpp.o"
  "CMakeFiles/usk_consolidation.dir/graph.cpp.o.d"
  "CMakeFiles/usk_consolidation.dir/newcalls.cpp.o"
  "CMakeFiles/usk_consolidation.dir/newcalls.cpp.o.d"
  "libusk_consolidation.a"
  "libusk_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
