file(REMOVE_RECURSE
  "libusk_consolidation.a"
)
