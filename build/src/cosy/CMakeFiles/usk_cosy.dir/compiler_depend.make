# Empty compiler generated dependencies file for usk_cosy.
# This may be replaced when dependencies are built.
