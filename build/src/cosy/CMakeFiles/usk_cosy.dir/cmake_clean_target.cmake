file(REMOVE_RECURSE
  "libusk_cosy.a"
)
