file(REMOVE_RECURSE
  "CMakeFiles/usk_cosy.dir/compiler.cpp.o"
  "CMakeFiles/usk_cosy.dir/compiler.cpp.o.d"
  "CMakeFiles/usk_cosy.dir/compound.cpp.o"
  "CMakeFiles/usk_cosy.dir/compound.cpp.o.d"
  "CMakeFiles/usk_cosy.dir/exec.cpp.o"
  "CMakeFiles/usk_cosy.dir/exec.cpp.o.d"
  "CMakeFiles/usk_cosy.dir/vm.cpp.o"
  "CMakeFiles/usk_cosy.dir/vm.cpp.o.d"
  "libusk_cosy.a"
  "libusk_cosy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usk_cosy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
