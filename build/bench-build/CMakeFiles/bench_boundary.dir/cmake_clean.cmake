file(REMOVE_RECURSE
  "../bench/bench_boundary"
  "../bench/bench_boundary.pdb"
  "CMakeFiles/bench_boundary.dir/bench_boundary.cpp.o"
  "CMakeFiles/bench_boundary.dir/bench_boundary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
