# Empty compiler generated dependencies file for bench_evmon.
# This may be replaced when dependencies are built.
