file(REMOVE_RECURSE
  "../bench/bench_evmon"
  "../bench/bench_evmon.pdb"
  "CMakeFiles/bench_evmon.dir/bench_evmon.cpp.o"
  "CMakeFiles/bench_evmon.dir/bench_evmon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
