# Empty dependencies file for bench_cosy_micro.
# This may be replaced when dependencies are built.
