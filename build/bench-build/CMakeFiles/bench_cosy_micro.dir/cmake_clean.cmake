file(REMOVE_RECURSE
  "../bench/bench_cosy_micro"
  "../bench/bench_cosy_micro.pdb"
  "CMakeFiles/bench_cosy_micro.dir/bench_cosy_micro.cpp.o"
  "CMakeFiles/bench_cosy_micro.dir/bench_cosy_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cosy_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
