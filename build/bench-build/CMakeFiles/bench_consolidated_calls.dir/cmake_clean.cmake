file(REMOVE_RECURSE
  "../bench/bench_consolidated_calls"
  "../bench/bench_consolidated_calls.pdb"
  "CMakeFiles/bench_consolidated_calls.dir/bench_consolidated_calls.cpp.o"
  "CMakeFiles/bench_consolidated_calls.dir/bench_consolidated_calls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consolidated_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
