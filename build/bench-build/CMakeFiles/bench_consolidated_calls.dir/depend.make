# Empty dependencies file for bench_consolidated_calls.
# This may be replaced when dependencies are built.
