file(REMOVE_RECURSE
  "../bench/bench_kefence"
  "../bench/bench_kefence.pdb"
  "CMakeFiles/bench_kefence.dir/bench_kefence.cpp.o"
  "CMakeFiles/bench_kefence.dir/bench_kefence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kefence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
