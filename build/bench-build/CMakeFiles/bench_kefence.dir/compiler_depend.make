# Empty compiler generated dependencies file for bench_kefence.
# This may be replaced when dependencies are built.
