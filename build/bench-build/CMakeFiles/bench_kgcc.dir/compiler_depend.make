# Empty compiler generated dependencies file for bench_kgcc.
# This may be replaced when dependencies are built.
