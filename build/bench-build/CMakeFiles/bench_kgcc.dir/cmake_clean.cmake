file(REMOVE_RECURSE
  "../bench/bench_kgcc"
  "../bench/bench_kgcc.pdb"
  "CMakeFiles/bench_kgcc.dir/bench_kgcc.cpp.o"
  "CMakeFiles/bench_kgcc.dir/bench_kgcc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kgcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
