file(REMOVE_RECURSE
  "../bench/bench_cosy_io"
  "../bench/bench_cosy_io.pdb"
  "CMakeFiles/bench_cosy_io.dir/bench_cosy_io.cpp.o"
  "CMakeFiles/bench_cosy_io.dir/bench_cosy_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cosy_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
