# Empty compiler generated dependencies file for bench_cosy_io.
# This may be replaced when dependencies are built.
