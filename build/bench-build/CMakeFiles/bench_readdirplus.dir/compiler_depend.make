# Empty compiler generated dependencies file for bench_readdirplus.
# This may be replaced when dependencies are built.
