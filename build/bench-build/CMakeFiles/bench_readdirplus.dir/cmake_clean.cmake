file(REMOVE_RECURSE
  "../bench/bench_readdirplus"
  "../bench/bench_readdirplus.pdb"
  "CMakeFiles/bench_readdirplus.dir/bench_readdirplus.cpp.o"
  "CMakeFiles/bench_readdirplus.dir/bench_readdirplus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_readdirplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
