file(REMOVE_RECURSE
  "../bench/bench_bcc_ablation"
  "../bench/bench_bcc_ablation.pdb"
  "CMakeFiles/bench_bcc_ablation.dir/bench_bcc_ablation.cpp.o"
  "CMakeFiles/bench_bcc_ablation.dir/bench_bcc_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bcc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
