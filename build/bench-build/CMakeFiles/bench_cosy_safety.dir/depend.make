# Empty dependencies file for bench_cosy_safety.
# This may be replaced when dependencies are built.
