file(REMOVE_RECURSE
  "../bench/bench_cosy_safety"
  "../bench/bench_cosy_safety.pdb"
  "CMakeFiles/bench_cosy_safety.dir/bench_cosy_safety.cpp.o"
  "CMakeFiles/bench_cosy_safety.dir/bench_cosy_safety.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cosy_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
