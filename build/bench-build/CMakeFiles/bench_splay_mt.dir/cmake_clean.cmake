file(REMOVE_RECURSE
  "../bench/bench_splay_mt"
  "../bench/bench_splay_mt.pdb"
  "CMakeFiles/bench_splay_mt.dir/bench_splay_mt.cpp.o"
  "CMakeFiles/bench_splay_mt.dir/bench_splay_mt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_splay_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
