# Empty dependencies file for bench_splay_mt.
# This may be replaced when dependencies are built.
