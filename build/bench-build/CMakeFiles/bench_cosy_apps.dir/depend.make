# Empty dependencies file for bench_cosy_apps.
# This may be replaced when dependencies are built.
