file(REMOVE_RECURSE
  "../bench/bench_cosy_apps"
  "../bench/bench_cosy_apps.pdb"
  "CMakeFiles/bench_cosy_apps.dir/bench_cosy_apps.cpp.o"
  "CMakeFiles/bench_cosy_apps.dir/bench_cosy_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cosy_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
