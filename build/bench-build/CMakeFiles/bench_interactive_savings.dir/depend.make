# Empty dependencies file for bench_interactive_savings.
# This may be replaced when dependencies are built.
