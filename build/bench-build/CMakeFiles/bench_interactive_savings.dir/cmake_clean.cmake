file(REMOVE_RECURSE
  "../bench/bench_interactive_savings"
  "../bench/bench_interactive_savings.pdb"
  "CMakeFiles/bench_interactive_savings.dir/bench_interactive_savings.cpp.o"
  "CMakeFiles/bench_interactive_savings.dir/bench_interactive_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interactive_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
