file(REMOVE_RECURSE
  "../bench/bench_syscall_graph"
  "../bench/bench_syscall_graph.pdb"
  "CMakeFiles/bench_syscall_graph.dir/bench_syscall_graph.cpp.o"
  "CMakeFiles/bench_syscall_graph.dir/bench_syscall_graph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_syscall_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
