# Empty dependencies file for bench_syscall_graph.
# This may be replaced when dependencies are built.
