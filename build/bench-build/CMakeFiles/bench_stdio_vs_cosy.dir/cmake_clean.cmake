file(REMOVE_RECURSE
  "../bench/bench_stdio_vs_cosy"
  "../bench/bench_stdio_vs_cosy.pdb"
  "CMakeFiles/bench_stdio_vs_cosy.dir/bench_stdio_vs_cosy.cpp.o"
  "CMakeFiles/bench_stdio_vs_cosy.dir/bench_stdio_vs_cosy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stdio_vs_cosy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
