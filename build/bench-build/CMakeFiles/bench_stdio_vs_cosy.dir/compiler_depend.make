# Empty compiler generated dependencies file for bench_stdio_vs_cosy.
# This may be replaced when dependencies are built.
