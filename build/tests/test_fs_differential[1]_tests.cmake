add_test([=[DifferentialTest.RandomOperationStreamAgrees]=]  /root/repo/build/tests/test_fs_differential [==[--gtest_filter=DifferentialTest.RandomOperationStreamAgrees]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[DifferentialTest.RandomOperationStreamAgrees]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_fs_differential_TESTS DifferentialTest.RandomOperationStreamAgrees)
