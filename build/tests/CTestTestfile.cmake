# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_mm[1]_include.cmake")
include("/root/repo/build/tests/test_seg[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_evmon[1]_include.cmake")
include("/root/repo/build/tests/test_fs[1]_include.cmake")
include("/root/repo/build/tests/test_journalfs[1]_include.cmake")
include("/root/repo/build/tests/test_uk[1]_include.cmake")
include("/root/repo/build/tests/test_consolidation[1]_include.cmake")
include("/root/repo/build/tests/test_cosy[1]_include.cmake")
include("/root/repo/build/tests/test_cosy_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_kefence[1]_include.cmake")
include("/root/repo/build/tests/test_bcc[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_rules[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_fs_differential[1]_include.cmake")
include("/root/repo/build/tests/test_params[1]_include.cmake")
include("/root/repo/build/tests/test_eventlog[1]_include.cmake")
include("/root/repo/build/tests/test_blockdev[1]_include.cmake")
include("/root/repo/build/tests/test_cryptfs[1]_include.cmake")
include("/root/repo/build/tests/test_stdio[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_mounts[1]_include.cmake")
