# Empty dependencies file for test_cosy.
# This may be replaced when dependencies are built.
