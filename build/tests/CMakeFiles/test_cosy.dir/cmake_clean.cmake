file(REMOVE_RECURSE
  "CMakeFiles/test_cosy.dir/test_cosy.cpp.o"
  "CMakeFiles/test_cosy.dir/test_cosy.cpp.o.d"
  "test_cosy"
  "test_cosy.pdb"
  "test_cosy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
