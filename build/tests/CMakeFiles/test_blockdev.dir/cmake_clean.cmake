file(REMOVE_RECURSE
  "CMakeFiles/test_blockdev.dir/test_blockdev.cpp.o"
  "CMakeFiles/test_blockdev.dir/test_blockdev.cpp.o.d"
  "test_blockdev"
  "test_blockdev.pdb"
  "test_blockdev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
