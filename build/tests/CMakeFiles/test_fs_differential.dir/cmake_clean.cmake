file(REMOVE_RECURSE
  "CMakeFiles/test_fs_differential.dir/test_fs_differential.cpp.o"
  "CMakeFiles/test_fs_differential.dir/test_fs_differential.cpp.o.d"
  "test_fs_differential"
  "test_fs_differential.pdb"
  "test_fs_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
