# Empty compiler generated dependencies file for test_fs_differential.
# This may be replaced when dependencies are built.
