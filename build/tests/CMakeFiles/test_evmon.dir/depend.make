# Empty dependencies file for test_evmon.
# This may be replaced when dependencies are built.
