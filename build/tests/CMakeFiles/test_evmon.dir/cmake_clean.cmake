file(REMOVE_RECURSE
  "CMakeFiles/test_evmon.dir/test_evmon.cpp.o"
  "CMakeFiles/test_evmon.dir/test_evmon.cpp.o.d"
  "test_evmon"
  "test_evmon.pdb"
  "test_evmon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
