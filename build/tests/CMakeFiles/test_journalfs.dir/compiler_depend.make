# Empty compiler generated dependencies file for test_journalfs.
# This may be replaced when dependencies are built.
