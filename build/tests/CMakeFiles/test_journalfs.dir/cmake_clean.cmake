file(REMOVE_RECURSE
  "CMakeFiles/test_journalfs.dir/test_journalfs.cpp.o"
  "CMakeFiles/test_journalfs.dir/test_journalfs.cpp.o.d"
  "test_journalfs"
  "test_journalfs.pdb"
  "test_journalfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_journalfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
