file(REMOVE_RECURSE
  "CMakeFiles/test_cosy_compiler.dir/test_cosy_compiler.cpp.o"
  "CMakeFiles/test_cosy_compiler.dir/test_cosy_compiler.cpp.o.d"
  "test_cosy_compiler"
  "test_cosy_compiler.pdb"
  "test_cosy_compiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosy_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
