# Empty dependencies file for test_cosy_compiler.
# This may be replaced when dependencies are built.
