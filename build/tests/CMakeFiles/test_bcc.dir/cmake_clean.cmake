file(REMOVE_RECURSE
  "CMakeFiles/test_bcc.dir/test_bcc.cpp.o"
  "CMakeFiles/test_bcc.dir/test_bcc.cpp.o.d"
  "test_bcc"
  "test_bcc.pdb"
  "test_bcc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
