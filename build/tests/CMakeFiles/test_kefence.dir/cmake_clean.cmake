file(REMOVE_RECURSE
  "CMakeFiles/test_kefence.dir/test_kefence.cpp.o"
  "CMakeFiles/test_kefence.dir/test_kefence.cpp.o.d"
  "test_kefence"
  "test_kefence.pdb"
  "test_kefence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kefence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
