# Empty compiler generated dependencies file for test_kefence.
# This may be replaced when dependencies are built.
