# Empty compiler generated dependencies file for test_mounts.
# This may be replaced when dependencies are built.
