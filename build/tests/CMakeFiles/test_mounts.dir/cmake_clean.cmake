file(REMOVE_RECURSE
  "CMakeFiles/test_mounts.dir/test_mounts.cpp.o"
  "CMakeFiles/test_mounts.dir/test_mounts.cpp.o.d"
  "test_mounts"
  "test_mounts.pdb"
  "test_mounts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
