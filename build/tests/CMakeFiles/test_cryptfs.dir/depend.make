# Empty dependencies file for test_cryptfs.
# This may be replaced when dependencies are built.
