file(REMOVE_RECURSE
  "CMakeFiles/test_cryptfs.dir/test_cryptfs.cpp.o"
  "CMakeFiles/test_cryptfs.dir/test_cryptfs.cpp.o.d"
  "test_cryptfs"
  "test_cryptfs.pdb"
  "test_cryptfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cryptfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
