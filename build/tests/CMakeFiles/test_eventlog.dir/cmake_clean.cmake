file(REMOVE_RECURSE
  "CMakeFiles/test_eventlog.dir/test_eventlog.cpp.o"
  "CMakeFiles/test_eventlog.dir/test_eventlog.cpp.o.d"
  "test_eventlog"
  "test_eventlog.pdb"
  "test_eventlog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eventlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
