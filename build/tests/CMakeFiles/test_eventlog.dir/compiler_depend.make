# Empty compiler generated dependencies file for test_eventlog.
# This may be replaced when dependencies are built.
