# Empty dependencies file for test_stdio.
# This may be replaced when dependencies are built.
