file(REMOVE_RECURSE
  "../examples/dbserver"
  "../examples/dbserver.pdb"
  "CMakeFiles/dbserver.dir/dbserver.cpp.o"
  "CMakeFiles/dbserver.dir/dbserver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
