# Empty dependencies file for dbserver.
# This may be replaced when dependencies are built.
