# Empty dependencies file for safe_module.
# This may be replaced when dependencies are built.
