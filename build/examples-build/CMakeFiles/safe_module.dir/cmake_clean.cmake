file(REMOVE_RECURSE
  "../examples/safe_module"
  "../examples/safe_module.pdb"
  "CMakeFiles/safe_module.dir/safe_module.cpp.o"
  "CMakeFiles/safe_module.dir/safe_module.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
