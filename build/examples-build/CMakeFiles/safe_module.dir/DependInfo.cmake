
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/safe_module.cpp" "examples-build/CMakeFiles/safe_module.dir/safe_module.cpp.o" "gcc" "examples-build/CMakeFiles/safe_module.dir/safe_module.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kefence/CMakeFiles/usk_kefence.dir/DependInfo.cmake"
  "/root/repo/build/src/bcc/CMakeFiles/usk_bcc.dir/DependInfo.cmake"
  "/root/repo/build/src/evmon/CMakeFiles/usk_evmon.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/usk_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/usk_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/usk_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
