file(REMOVE_RECURSE
  "../examples/adaptive_offload"
  "../examples/adaptive_offload.pdb"
  "CMakeFiles/adaptive_offload.dir/adaptive_offload.cpp.o"
  "CMakeFiles/adaptive_offload.dir/adaptive_offload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
