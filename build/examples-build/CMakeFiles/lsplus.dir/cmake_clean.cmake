file(REMOVE_RECURSE
  "../examples/lsplus"
  "../examples/lsplus.pdb"
  "CMakeFiles/lsplus.dir/lsplus.cpp.o"
  "CMakeFiles/lsplus.dir/lsplus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
