# Empty dependencies file for lsplus.
# This may be replaced when dependencies are built.
